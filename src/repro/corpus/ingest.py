"""Ingest parser for raw OCR'd author-index text.

Input is text shaped like the artifact itself: a stream of index rows
interrupted by page furniture (running headers, repository boilerplate,
bare page numbers), where each row starts with an inverted author name,
continues with the title, ends with a ``volume:page (year)`` citation, and
may wrap its title onto following lines::

    Abramovsky, Deborah Confidentiality: The Future Crime- 85:929 (1983)
    Contraband Dilemmas

The parser:

1. drops furniture lines by pattern;
2. groups lines into entries — a line bearing a citation starts an entry,
   citation-free lines continue the previous title (hyphen wraps repaired);
3. splits author from title with a name-shape heuristic and parses both.

Scanned text is ambiguous by nature (``Sharpe, Calvin William A Study…``
cannot be split with certainty); unsure splits are recorded in
:attr:`IngestReport.warnings` rather than silently guessed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.citation.model import Citation
from repro.citation.parser import find_citations
from repro.core.entry import PublicationRecord
from repro.names.model import canonical_honorific
from repro.names.parser import try_parse_name
from repro.textproc.hyphenation import join_hyphen_wraps

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.store import RecordStore

_FURNITURE_PATTERNS = [
    re.compile(r"^\d{1,4}$"),  # bare page / sequence numbers
    re.compile(r"^\d{4}\]"),  # recto header: "1993] ..."
    re.compile(r"^\d{4}1\s"),  # OCR'd recto header: "19931 1369"
    re.compile(r"\[\s*Vol\b", re.IGNORECASE),
    re.compile(r"\bAUTHOR\s+INDEX\b", re.IGNORECASE),
    re.compile(r"^A\s?UTHOR\s+INDEX", re.IGNORECASE),
    re.compile(r"WEST\s+VIRGINIA\s+LAW?\s*W?\s*REVIEW", re.IGNORECASE),
    re.compile(r"Published by", re.IGNORECASE),
    re.compile(r"et al\.?:", re.IGNORECASE),
    re.compile(r"https?://|researchrepository", re.IGNORECASE),
    re.compile(r"Recommended Citation|Available at:|Follow this", re.IGNORECASE),
    re.compile(r"^Volume \d+|^Issue \d+|Cumulative Index", re.IGNORECASE),
    re.compile(r"^\[?AUTHOR\b.*ARTICLE", re.IGNORECASE),  # column heads
    re.compile(r"W\.?\s*VA\.?\s*L\.?\s*R[EV]+\.?\s*\]?$", re.IGNORECASE),
    re.compile(r"^\d+\s+West Virginia Law Review", re.IGNORECASE),
    re.compile(r"Student material is indicated", re.IGNORECASE),
]

_INITIALS = re.compile(r"^(?:[A-Z]\.)+,?\*?$")  # F.  W.T.,  F.*
_PLAIN_NAME = re.compile(r"^[A-Z][A-Za-z'\-]+,?\*?$")
_SUFFIX_TOKEN = re.compile(r"^(?:Jr\.?|Sr\.?|I{2,3}|IV|V|l{2}|1I|Il|lI|ll1?)[,.]?\*?$")


@dataclass(slots=True)
class IngestReport:
    """Result of parsing raw index text."""

    records: list[PublicationRecord] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    furniture_lines: int = 0
    entry_lines: int = 0

    @property
    def record_count(self) -> int:
        return len(self.records)

    def load_into(self, store: "RecordStore") -> int:
        """Load the parsed records into ``store`` via the batched path.

        One group-committed WAL batch and one sorted bulk update per
        index (see :meth:`RecordStore.put_many`); returns how many
        records were written.
        """
        return store.put_many(record.to_store_dict() for record in self.records)


#: Does a line open with an inverted name ("Surname, …")?
_NAME_START = re.compile(r"^[A-Z][A-Za-z'’.\-]*(?: [A-Z][A-Za-z'’.\-]*)?,\s")


def parse_index_text(
    text: str, *, first_record_id: int = 1, layout: str = "auto"
) -> IngestReport:
    """Parse raw index text into publication records.

    ``layout`` selects where each entry's citation sits:

    * ``"citation-first"`` — the artifact's tabular layout: the citation
      shares the entry's first line, wrapped title lines follow;
    * ``"citation-last"`` — narrow-column layout: the entry wraps over
      several lines and the citation ends it;
    * ``"auto"`` (default) — detected from whether the lines *after*
      citation-bearing lines look like new entries (start with an
      inverted name).

    >>> report = parse_index_text('''
    ... AUTHOR ARTICLE W. VA. L. REV.
    ... Abramovsky, Deborah Confidentiality: The Future Crime- 85:929 (1983)
    ... Contraband Dilemmas
    ... 1366
    ... Areen, Judith Regulating Human Gene Therapy 88:153 (1985)
    ... ''')
    >>> report.record_count
    2
    >>> report.records[0].title
    'Confidentiality: The Future Crime-Contraband Dilemmas'
    >>> report.records[1].authors[0].surname
    'Areen'

    >>> narrow = parse_index_text('''
    ... Adams, Nora Q. Coalbed Methane
    ... After the Fire 96:101 (1993)
    ... Brennan, Luis F. The UCC in the
    ... Nineties 96:1 (1993)
    ... ''')
    >>> [r.authors[0].surname for r in narrow.records]
    ['Adams', 'Brennan']
    """
    if layout not in ("auto", "citation-first", "citation-last"):
        raise ValueError(f"unknown layout {layout!r}")
    report = IngestReport()
    content = [
        line.strip() for line in text.splitlines() if not _is_furniture(line.strip())
    ]
    report.furniture_lines = sum(
        1 for line in text.splitlines() if line.strip() and _is_furniture(line.strip())
    )
    report.entry_lines = len([l for l in content if l])
    if layout == "auto":
        layout = _detect_layout(content)
    if layout == "citation-first":
        blocks = _blocks_citation_first(content, report)
    else:
        blocks = _blocks_citation_last(content, report)
    next_id = first_record_id
    for first_line, continuations, citation in blocks:
        entry = _parse_entry(first_line, continuations, citation, next_id, report)
        if entry is not None:
            report.records.append(entry)
            next_id += 1
    return report


def _detect_layout(content: list[str]) -> str:
    """Infer the citation position from line shapes.

    In citation-first text, citation-bearing lines start entries, so they
    begin with inverted names; in citation-last text the *following* line
    does.  Majority vote, defaulting to citation-first (the artifact).
    """
    first_votes = 0
    last_votes = 0
    for i, line in enumerate(content):
        if not find_citations(line):
            continue
        if _NAME_START.match(line):
            first_votes += 1
        follower = next((l for l in content[i + 1 :] if l), None)
        if follower is not None and _NAME_START.match(follower) and not _NAME_START.match(line):
            last_votes += 1
    return "citation-last" if last_votes > first_votes else "citation-first"


def _is_furniture(line: str) -> bool:
    stripped = line.strip()
    if not stripped:
        return True
    return any(p.search(stripped) for p in _FURNITURE_PATTERNS)


def _blocks_citation_first(
    content: list[str], report: IngestReport
) -> list[tuple[str, list[str], Citation]]:
    """Group lines into entries for the artifact's tabular layout: a
    citation-bearing line starts an entry, citation-free lines continue
    the previous title."""
    blocks: list[tuple[str, list[str], Citation]] = []
    current: tuple[str, list[str], Citation] | None = None
    for line in content:
        if not line:
            continue
        citations = find_citations(line)
        if citations:
            if current is not None:
                blocks.append(current)
            citation, span = citations[-1]
            body = (line[: span[0]] + line[span[1] :]).strip()
            current = (body, [], citation)
        elif current is not None:
            current[1].append(line)
        else:
            report.warnings.append(f"orphan continuation line: {line!r}")
    if current is not None:
        blocks.append(current)
    return blocks


def _blocks_citation_last(
    content: list[str], report: IngestReport
) -> list[tuple[str, list[str], Citation]]:
    """Group lines for the narrow-column layout: lines accumulate until a
    citation-bearing line closes the entry."""
    blocks: list[tuple[str, list[str], Citation]] = []
    pending: list[str] = []
    for line in content:
        if not line:
            continue
        citations = find_citations(line)
        if not citations:
            pending.append(line)
            continue
        citation, span = citations[-1]
        body = (line[: span[0]] + line[span[1] :]).strip()
        lines = pending + ([body] if body else [])
        pending = []
        if not lines:
            report.warnings.append(f"citation with no entry text: {line!r}")
            continue
        blocks.append((lines[0], lines[1:], citation))
    if pending:
        report.warnings.append(
            f"trailing lines without a citation: {' '.join(pending)!r}"
        )
    return blocks


def _parse_entry(
    first_line: str,
    continuations: list[str],
    citation: Citation,
    record_id: int,
    report: IngestReport,
) -> PublicationRecord | None:
    author_text, title_start, confident = _split_author(first_line)
    if author_text is None:
        report.warnings.append(f"cannot find an author in: {first_line!r}")
        return None
    if not confident:
        report.warnings.append(
            f"uncertain author/title split in: {first_line!r} "
            f"(took author = {author_text!r})"
        )
    author = try_parse_name(author_text)
    if author is None:
        report.warnings.append(f"unparseable author {author_text!r}")
        return None

    title = title_start
    for continuation in continuations:
        title, _ = join_hyphen_wraps(title, continuation)
    title = title.strip()
    if not title:
        report.warnings.append(f"entry for {author_text!r} has an empty title")
        return None
    return PublicationRecord(
        record_id=record_id,
        title=title,
        authors=(author.with_student(False),),
        citation=citation,
        is_student_work=author.is_student,
    )


def _split_author(line: str) -> tuple[str | None, str, bool]:
    """Split ``line`` into (author_text, title_text, confident).

    The author is an inverted name: a surname segment ending with the first
    comma, then given tokens consumed by name shape — honorifics, then
    either initials (``F.``/``W.T.``) or one plain given name, optionally a
    plain name *after* an initial (``L. Thomas``), then a generational
    suffix.  Splits that end on a bare plain word followed by another
    capitalized word are flagged unconfident.
    """
    tokens = line.split()
    if not tokens:
        return None, "", False
    # surname segment: tokens up to and including the first comma-bearing one
    try:
        comma_at = next(i for i, t in enumerate(tokens) if t.endswith(","))
    except StopIteration:
        return None, "", False
    consumed = comma_at + 1
    # optional honorific
    if consumed < len(tokens) and canonical_honorific(tokens[consumed].rstrip(",")):
        consumed += 1

    saw_initial = False
    saw_plain = False
    confident = True
    while consumed < len(tokens):
        token = tokens[consumed]
        if _SUFFIX_TOKEN.match(token):
            consumed += 1
            break
        if _INITIALS.match(token):
            saw_initial = True
            consumed += 1
            if token.endswith((",", "*")) and not token.endswith(",*"):
                # an initial ending the name outright ("F.*") — maybe a
                # suffix follows, loop once more
                if consumed < len(tokens) and _SUFFIX_TOKEN.match(tokens[consumed]):
                    consumed += 1
                break
            continue
        if _PLAIN_NAME.match(token) and not saw_plain:
            # first plain given name; a second plain word is title unless it
            # follows an initial ("L. Thomas")
            saw_plain = True
            consumed += 1
            if token.endswith(","):
                continue
            if saw_initial:
                break
            # lone plain given name: a middle initial or suffix may follow
            if consumed < len(tokens) and (
                _INITIALS.match(tokens[consumed]) or _SUFFIX_TOKEN.match(tokens[consumed])
            ):
                continue
            # a following plain word ("…, Judith Regulating…") is assumed to
            # start the title, but the split is inherently ambiguous
            if consumed < len(tokens) and _PLAIN_NAME.match(tokens[consumed]):
                confident = False
            break
        break

    if consumed == comma_at + 1:
        # nothing after the comma looked like a name
        return None, "", False
    author_text = " ".join(tokens[:consumed]).rstrip(",")
    title_text = " ".join(tokens[consumed:])
    return author_text, title_text, confident

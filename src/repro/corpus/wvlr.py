"""The WVLR reference corpus and the publication store schema.

``data/wvlr_reference.json`` is a curated, machine-readable subset of the
artifact (271 records, every behaviour class the printed index exhibits:
generational suffixes, honorifics, student asterisks, hyphenated and
particled surnames, co-authored pieces, and verbatim OCR damage).
"""

from __future__ import annotations

import json
from importlib import resources
from pathlib import Path
from typing import TYPE_CHECKING

from repro.citation.model import Reporter
from repro.core.entry import PublicationRecord
from repro.errors import CorpusError
from repro.storage.schema import Field, FieldType, Schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.store import RecordStore

#: Store schema for publication records (matches
#: :meth:`repro.core.entry.PublicationRecord.to_store_dict`).
PUBLICATION_SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("title", FieldType.STRING),
        Field("authors", FieldType.STRING_LIST),
        Field("surnames", FieldType.STRING_LIST),
        Field("volume", FieldType.INT),
        Field("page", FieldType.INT),
        Field("year", FieldType.INT),
        Field("student", FieldType.BOOL),
    ],
    primary_key="id",
)

_DATA_PACKAGE = "repro.corpus"
_DATA_NAME = "data/wvlr_reference.json"


def _load_raw() -> dict:
    try:
        text = (
            resources.files(_DATA_PACKAGE).joinpath(_DATA_NAME).read_text("utf-8")
        )
    except (FileNotFoundError, ModuleNotFoundError) as exc:
        raise CorpusError(f"reference corpus data missing: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorpusError(f"reference corpus is not valid JSON: {exc}") from exc


def load_reference_records() -> list[PublicationRecord]:
    """The curated WVLR records, parsed into :class:`PublicationRecord`.

    >>> records = load_reference_records()
    >>> len(records) > 250
    True
    >>> any(len(r.authors) > 1 for r in records)
    True
    """
    raw = _load_raw()
    records = []
    for item in raw["records"]:
        records.append(
            PublicationRecord.create(
                item["id"], item["title"], item["authors"], item["citation"]
            )
        )
    return records


def load_reference_reporter() -> Reporter:
    """The reporter the reference corpus cites."""
    raw = _load_raw()["reporter"]
    return Reporter(name=raw["name"], abbreviation=raw["abbreviation"])


def load_reference_metadata() -> dict:
    """Volume/year/first-page metadata of the artifact."""
    raw = _load_raw()["reporter"]
    return {
        "volume": raw["volume"],
        "year": raw["year"],
        "first_page": raw["first_page"],
    }


def populate_store(
    store: "RecordStore", records: list[PublicationRecord] | None = None
) -> int:
    """Load records into ``store`` (defaults to the reference corpus).

    Returns the number of records inserted.  The store must use
    :data:`PUBLICATION_SCHEMA` (or a superset).
    """
    if records is None:
        records = load_reference_records()
    return store.put_many(record.to_store_dict() for record in records)


def corpus_data_path() -> Path:
    """Filesystem path of the bundled JSON (for tooling and docs)."""
    return Path(str(resources.files(_DATA_PACKAGE).joinpath(_DATA_NAME)))

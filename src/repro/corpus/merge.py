"""Merging corpora: folding a new volume into the cumulative record set.

Every year the cumulative index absorbs one more volume of records.  The
merge must notice collisions — the same record id arriving with different
content — and resolve them by explicit policy rather than silently keeping
whichever came last.

Two records with the same id and the same content are one record (an
idempotent re-import); same id with different content is a conflict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.entry import PublicationRecord
from repro.errors import ValidationError


class ConflictPolicy(enum.Enum):
    """What to do when an incoming id collides with different content."""

    ERROR = "error"  #: raise on the first conflict
    KEEP_EXISTING = "keep-existing"  #: the base corpus wins
    REPLACE = "replace"  #: the incoming record wins


@dataclass(frozen=True, slots=True)
class MergeConflict:
    """One id that arrived with content differing from the base corpus."""

    record_id: int
    existing: PublicationRecord
    incoming: PublicationRecord
    resolution: str  #: "kept-existing" | "replaced"


@dataclass(slots=True)
class MergeResult:
    """Outcome of a merge."""

    records: list[PublicationRecord]
    added: int = 0
    unchanged: int = 0
    conflicts: list[MergeConflict] = field(default_factory=list)

    @property
    def conflict_count(self) -> int:
        return len(self.conflicts)

    def summary(self) -> str:
        return (
            f"merged: {len(self.records)} total, {self.added} added, "
            f"{self.unchanged} duplicates ignored, "
            f"{self.conflict_count} conflicts"
        )


def _same_content(a: PublicationRecord, b: PublicationRecord) -> bool:
    return (
        a.title == b.title
        and a.citation == b.citation
        and a.is_student_work == b.is_student_work
        and [x.identity_key() for x in a.authors] == [x.identity_key() for x in b.authors]
    )


def merge_corpora(
    base: Sequence[PublicationRecord],
    incoming: Iterable[PublicationRecord],
    *,
    on_conflict: ConflictPolicy = ConflictPolicy.ERROR,
) -> MergeResult:
    """Merge ``incoming`` records into ``base``.

    Returns a :class:`MergeResult` whose ``records`` preserve base order
    with additions appended in incoming order.  Under
    :attr:`ConflictPolicy.ERROR` the first conflict raises
    :class:`~repro.errors.ValidationError`.

    >>> old = [PublicationRecord.create(1, "T1", ["A, B."], "69:1 (1966)")]
    >>> new = [PublicationRecord.create(2, "T2", ["C, D."], "96:1 (1993)")]
    >>> result = merge_corpora(old, new)
    >>> [r.record_id for r in result.records]
    [1, 2]
    >>> result.added
    1
    """
    by_id: dict[int, int] = {r.record_id: i for i, r in enumerate(base)}
    merged = list(base)
    result = MergeResult(records=merged)

    for record in incoming:
        at = by_id.get(record.record_id)
        if at is None:
            by_id[record.record_id] = len(merged)
            merged.append(record)
            result.added += 1
            continue
        existing = merged[at]
        if _same_content(existing, record):
            result.unchanged += 1
            continue
        if on_conflict is ConflictPolicy.ERROR:
            raise ValidationError(
                f"record id {record.record_id} arrives with different content "
                f"({existing.title!r} vs {record.title!r})",
                field="record_id",
            )
        if on_conflict is ConflictPolicy.REPLACE:
            merged[at] = record
            resolution = "replaced"
        else:
            resolution = "kept-existing"
        result.conflicts.append(
            MergeConflict(
                record_id=record.record_id,
                existing=existing,
                incoming=record,
                resolution=resolution,
            )
        )
    return result


def renumber(
    records: Iterable[PublicationRecord], *, start: int = 1
) -> list[PublicationRecord]:
    """Reassign sequential record ids (used before merging corpora whose
    id spaces overlap by construction, e.g. two independent ingests)."""
    out = []
    for i, record in enumerate(records, start=start):
        out.append(
            PublicationRecord(
                record_id=i,
                title=record.title,
                authors=record.authors,
                citation=record.citation,
                is_student_work=record.is_student_work,
            )
        )
    return out

"""Corpora: the WVLR reference data, raw-text ingest, synthetic generation.

* :mod:`wvlr` — the curated machine-readable subset of the paper's own
  index (the E1 ground truth), plus the store schema for publications.
* :mod:`ingest` — parser for raw OCR'd index text shaped like the artifact.
* :mod:`synthetic` — seeded generator of arbitrarily large corpora with a
  configurable OCR-noise rate (E2–E8 workloads).
"""

from repro.corpus.wvlr import (
    PUBLICATION_SCHEMA,
    load_reference_records,
    load_reference_reporter,
    populate_store,
)
from repro.corpus.ingest import IngestReport, parse_index_text
from repro.corpus.merge import (
    ConflictPolicy,
    MergeConflict,
    MergeResult,
    merge_corpora,
    renumber,
)
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig

__all__ = [
    "PUBLICATION_SCHEMA",
    "load_reference_records",
    "load_reference_reporter",
    "populate_store",
    "IngestReport",
    "parse_index_text",
    "ConflictPolicy",
    "MergeConflict",
    "MergeResult",
    "merge_corpora",
    "renumber",
    "SyntheticCorpus",
    "SyntheticCorpusConfig",
]

"""PAGED — millisecond reopen and working-set-bounded memory.

Two experiments, written to ``BENCH_paged.json``:

* **reopen** — checkpoint the same corpus in both data formats, then
  measure cold open time.  Memory format must parse the full inline
  snapshot (O(dataset)); paged format reads one 4 KiB meta page and
  serves everything else read-through (O(1)).  Target: the paged store
  reopens ≥ 10x faster at 100k records, and a full sorted scan of both
  reopened stores is byte-identical (same records CRC).
* **pool sweep** — a skewed point-read workload (90% of reads on a 10%
  hot set) against the paged store at pool sizes 8 / 32 / 128 / 512
  pages.  Reports the ``storage.bufferpool.*`` hit rate, throughput,
  and resident bytes versus the on-disk pages file — the table behind
  the tuning guidance in ``docs/performance.md``: memory is bounded by
  the *pool*, not the dataset, and the knee sits where the pool covers
  the working set.

Standalone-runnable (pytest not required)::

    PYTHONPATH=src python benchmarks/bench_paged.py             # print JSON
    PYTHONPATH=src python benchmarks/bench_paged.py --quick     # CI smoke
    PYTHONPATH=src python benchmarks/bench_paged.py --output BENCH_paged.json

``--quick`` shrinks the corpus and repeat counts so CI can smoke-test the
harness in seconds; the checked-in baseline comes from a full run.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro import obs
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.wvlr import PUBLICATION_SCHEMA
from repro.storage import RecordStore, records_checksum
from repro.storage.pages import PAGE_SIZE

FULL_SIZE = 100_000
QUICK_SIZE = 5_000
POOL_SIZES = (8, 32, 128, 512)
REOPEN_SPEEDUP_TARGET = 10.0
HOT_FRACTION = 0.10  # the working set: 10% of keys ...
HOT_PROBABILITY = 0.90  # ... take 90% of the reads

_RECORD_CACHE: dict[int, list[dict]] = {}


def _records(size: int) -> list[dict]:
    if size not in _RECORD_CACHE:
        config = SyntheticCorpusConfig(
            size=size, seed=1729, author_pool=min(size // 2, 2_000)
        )
        corpus = SyntheticCorpus(config)
        _RECORD_CACHE[size] = [record.to_store_dict() for record in corpus.records()]
    return _RECORD_CACHE[size]


def _scan_checksum(store: RecordStore) -> str:
    return records_checksum(sorted(store.scan(), key=lambda r: r["id"]))


def _counter(name: str) -> int:
    return int(obs.metrics.snapshot()["counters"].get(name, 0))


def bench_reopen(size: int, repeats: int, scratch: Path) -> dict:
    """Cold-open latency of the same corpus in both data formats."""
    rows = _records(size)
    results: dict[str, dict] = {}
    checksums: dict[str, str] = {}
    for fmt in ("memory", "paged"):
        directory = scratch / fmt
        with RecordStore(PUBLICATION_SCHEMA, directory, data_format=fmt) as store:
            store.put_many(rows)
            store.checkpoint()
        opens = []
        for _ in range(repeats):
            start = perf_counter()
            store = RecordStore(PUBLICATION_SCHEMA, directory, data_format=fmt)
            opens.append(perf_counter() - start)
            store.close()
        with RecordStore(PUBLICATION_SCHEMA, directory, data_format=fmt) as store:
            assert len(store) == size
            checksums[fmt] = _scan_checksum(store)
        open_ms = sorted(opens)[len(opens) // 2] * 1e3
        disk_bytes = sum(p.stat().st_size for p in directory.iterdir())
        results[fmt] = {
            "open_p50_ms": round(open_ms, 3),
            "disk_bytes": disk_bytes,
        }
        print(
            f"  reopen {size} records [{fmt}]: p50 {open_ms:.1f}ms "
            f"({disk_bytes / 1e6:.1f} MB on disk)",
            file=sys.stderr,
        )
    speedup = results["memory"]["open_p50_ms"] / results["paged"]["open_p50_ms"]
    identical = checksums["memory"] == checksums["paged"]
    results["speedup_paged_vs_memory"] = round(speedup, 1)
    results["scan_checksum_identical"] = identical
    print(
        f"  paged reopens {speedup:.1f}x faster; scans "
        f"{'byte-identical' if identical else 'DIVERGED'}",
        file=sys.stderr,
    )
    assert identical, "paged and memory scans diverged"
    return results


def bench_pool_sweep(size: int, reads: int, scratch: Path) -> dict:
    """Hit rate and resident memory across buffer-pool capacities."""
    rows = _records(size)
    directory = scratch / "sweep"
    with RecordStore(PUBLICATION_SCHEMA, directory, data_format="paged") as store:
        store.put_many(rows)
        store.checkpoint()
    pages_bytes = next(directory.glob("store.pages.*")).stat().st_size

    keys = [row["id"] for row in rows]
    rng = random.Random(42)
    hot = keys[: max(1, int(len(keys) * HOT_FRACTION))]
    workload = [
        rng.choice(hot) if rng.random() < HOT_PROBABILITY else rng.choice(keys)
        for _ in range(reads)
    ]

    results: dict[str, dict] = {"pages_file_bytes": pages_bytes}
    for pool_pages in POOL_SIZES:
        hits0, misses0 = _counter("storage.bufferpool.hits"), _counter(
            "storage.bufferpool.misses"
        )
        with RecordStore(
            PUBLICATION_SCHEMA, directory, data_format="paged",
            pool_pages=pool_pages,
        ) as store:
            start = perf_counter()
            for key in workload:
                store.get(key)
            elapsed = perf_counter() - start
            # the pool, not the dataset, bounds resident record memory
            resident = len(store._records.tree.pool) * PAGE_SIZE
        hits = _counter("storage.bufferpool.hits") - hits0
        misses = _counter("storage.bufferpool.misses") - misses0
        hit_rate = hits / max(1, hits + misses)
        assert resident <= pool_pages * PAGE_SIZE
        results[str(pool_pages)] = {
            "hit_rate": round(hit_rate, 4),
            "reads_per_s": round(reads / elapsed),
            "resident_bytes": resident,
            "pool_bound_bytes": pool_pages * PAGE_SIZE,
        }
        print(
            f"  pool {pool_pages:4d} pages: hit rate {hit_rate:6.2%}, "
            f"{reads / elapsed:9,.0f} reads/s, resident "
            f"{resident / 1024:.0f} KiB of {pages_bytes / 1e6:.1f} MB file",
            file=sys.stderr,
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", help="write JSON here instead of stdout")
    parser.add_argument(
        "--quick", action="store_true", help="small corpus / few repeats (CI smoke)"
    )
    args = parser.parse_args(argv)

    size = QUICK_SIZE if args.quick else FULL_SIZE
    open_repeats = 3 if args.quick else 9
    reads = 5_000 if args.quick else 50_000
    obs.reset()
    with tempfile.TemporaryDirectory(prefix="bench-paged-") as tmp:
        reopen = bench_reopen(size, open_repeats, Path(tmp))
        sweep = bench_pool_sweep(size, reads, Path(tmp))

    speedup = reopen["speedup_paged_vs_memory"]
    if not args.quick and speedup < REOPEN_SPEEDUP_TARGET:
        print(
            f"  WARNING: reopen speedup {speedup}x below the "
            f"{REOPEN_SPEEDUP_TARGET}x target",
            file=sys.stderr,
        )
    doc = {
        "benchmark": "bench_paged",
        "python": sys.version.split()[0],
        "quick": args.quick,
        "targets": {"reopen_speedup": REOPEN_SPEEDUP_TARGET},
        "config": {
            "records": size,
            "open_repeats": open_repeats,
            "sweep_reads": reads,
            "hot_fraction": HOT_FRACTION,
            "hot_probability": HOT_PROBABILITY,
            "page_size": PAGE_SIZE,
        },
        "reopen": reopen,
        "pool_sweep": sweep,
    }
    text = json.dumps(doc, indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

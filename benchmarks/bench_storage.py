"""E7 — durability cost: WAL append modes, snapshots, recovery replay.

Regenerates the durability table.  Expected shape: fsync-per-append is
orders of magnitude slower than buffered appends; batching amortizes the
fsync to near-buffered cost; recovery replay is linear in log length and a
snapshot collapses it to near-constant."""

import pytest

from repro.corpus.wvlr import PUBLICATION_SCHEMA
from repro.storage.store import RecordStore
from repro.storage.wal import WriteAheadLog

N_APPENDS = 200


def _payloads(n=N_APPENDS):
    return [{"op": "put", "record": {"id": i, "v": "x" * 40}} for i in range(n)]


def test_wal_append_buffered(benchmark, tmp_path_factory):
    payloads = _payloads()

    def run():
        path = tmp_path_factory.mktemp("wal") / "w.wal"
        with WriteAheadLog(path, sync=False) as wal:
            for p in payloads:
                wal.append(p)

    benchmark(run)


def test_wal_append_fsync_each(benchmark, tmp_path_factory):
    payloads = _payloads()

    def run():
        path = tmp_path_factory.mktemp("wal") / "w.wal"
        with WriteAheadLog(path, sync=True) as wal:
            for p in payloads:
                wal.append(p)

    benchmark(run)


def test_wal_append_fsync_batched(benchmark, tmp_path_factory):
    payloads = _payloads()

    def run():
        path = tmp_path_factory.mktemp("wal") / "w.wal"
        with WriteAheadLog(path) as wal:
            wal.append_many(payloads, sync=True)

    benchmark(run)


@pytest.fixture(scope="module")
def populated_dir(tmp_path_factory, corpus_1k):
    directory = tmp_path_factory.mktemp("store") / "db"
    with RecordStore(PUBLICATION_SCHEMA, directory) as store:
        with store.transaction() as txn:
            for record in corpus_1k:
                txn.insert(record.to_store_dict())
    return directory


def test_recovery_replay_from_wal(benchmark, populated_dir):
    def reopen():
        with RecordStore(PUBLICATION_SCHEMA, populated_dir) as store:
            return len(store)

    assert benchmark(reopen) == 1_000


def test_recovery_from_snapshot(benchmark, tmp_path_factory, corpus_1k):
    directory = tmp_path_factory.mktemp("store") / "db"
    with RecordStore(PUBLICATION_SCHEMA, directory) as store:
        with store.transaction() as txn:
            for record in corpus_1k:
                txn.insert(record.to_store_dict())
        store.snapshot()

    def reopen():
        with RecordStore(PUBLICATION_SCHEMA, directory) as store:
            return len(store)

    assert benchmark(reopen) == 1_000


def test_index_build_bulk_load(benchmark, corpus_1k):
    """B-tree creation over existing data: sorted bulk load (the default)."""
    store = RecordStore(PUBLICATION_SCHEMA)
    with store.transaction() as txn:
        for record in corpus_1k:
            txn.insert(record.to_store_dict())

    def build():
        store.create_index("page")
        stats = store.index_statistics("page")
        store.drop_index("page")
        return stats

    stats = benchmark(build)
    assert stats["entries"] == 1_000


def test_index_build_insert_loop(benchmark, corpus_1k):
    """The alternative the bulk load replaces: n individual inserts."""
    from repro.storage.btree import BTree

    store = RecordStore(PUBLICATION_SCHEMA)
    with store.transaction() as txn:
        for record in corpus_1k:
            txn.insert(record.to_store_dict())
    rows = list(store.scan())

    def build():
        tree = BTree(order=32)
        for row in rows:
            tree.insert(row["page"], row["id"])
        return tree

    tree = benchmark(build)
    assert len(tree) == 1_000


def test_snapshot_write(benchmark, tmp_path_factory, corpus_1k):
    directory = tmp_path_factory.mktemp("store") / "db"
    with RecordStore(PUBLICATION_SCHEMA, directory) as store:
        with store.transaction() as txn:
            for record in corpus_1k:
                txn.insert(record.to_store_dict())
        benchmark(store.snapshot)

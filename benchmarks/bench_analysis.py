"""E13 — bibliometric analysis throughput at 10k records.

Not a comparison (there is no baseline to beat) but a scaling check: the
analysis toolkit must stay interactive at corpus sizes well beyond the
artifact's, since it is the "ad-hoc question" path editors hit repeatedly.
"""

import pytest

from repro.analysis.coauthors import collaboration_graph, collaboration_stats
from repro.analysis.productivity import gini_coefficient, productivity
from repro.analysis.trends import emerging_keywords, top_keywords
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig


@pytest.fixture(scope="module")
def records():
    return SyntheticCorpus(SyntheticCorpusConfig(size=10_000, seed=808)).records()


def test_productivity_table(benchmark, records):
    table = benchmark(productivity, records)
    assert table[0].total >= table[-1].total


def test_gini(benchmark, records):
    counts = [p.total for p in productivity(records)]
    value = benchmark(gini_coefficient, counts)
    assert 0.0 <= value <= 1.0


def test_collaboration_graph_build(benchmark, records):
    graph = benchmark(collaboration_graph, records)
    assert graph.number_of_nodes() > 1_000


def test_collaboration_stats(benchmark, records):
    stats = benchmark(collaboration_stats, records)
    assert stats.authors > 1_000


def test_top_keywords(benchmark, records):
    top = benchmark(top_keywords, records, k=10)
    assert len(top) == 10


def test_emerging_keywords(benchmark, records):
    rows = benchmark(
        lambda: emerging_keywords(records, split_year=1980, k=10)
    )
    assert rows

"""E2 — index build throughput vs. corpus size, builder vs. naive baseline.

Regenerates the build-throughput table: rows are corpus sizes (1k/5k/20k
records), columns are the full builder and the naive baseline.  Expected
shape: the naive baseline wins on raw speed by a small constant factor
(it skips normalization, dedup, and convention-aware keys) while producing
a measurably mis-ordered index (scored in E1/E8)."""

import pytest

from repro.baselines.naive import naive_build
from repro.core.builder import build_index


@pytest.mark.parametrize("size", ["1k", "5k", "20k"])
def test_full_builder(benchmark, size, corpus_1k, corpus_5k, corpus_20k):
    records = {"1k": corpus_1k, "5k": corpus_5k, "20k": corpus_20k}[size]
    index = benchmark(build_index, records)
    assert len(index) >= len(records)


@pytest.mark.parametrize("size", ["1k", "5k", "20k"])
def test_naive_baseline(benchmark, size, corpus_1k, corpus_5k, corpus_20k):
    records = {"1k": corpus_1k, "5k": corpus_5k, "20k": corpus_20k}[size]
    index = benchmark(naive_build, records)
    assert len(index) >= len(records)


def test_builder_with_resolution(benchmark, corpus_1k):
    """Entity resolution enabled: the extra cost of variant clustering."""
    from repro.core.builder import AuthorIndexBuilder

    def build():
        return AuthorIndexBuilder(resolve_variants=True).add_records(corpus_1k).build()

    index = benchmark(build)
    assert len(index) > 0


def test_incremental_add_100(benchmark, corpus_5k):
    """Adding 100 records to a 4.9k-record index incrementally — the
    per-volume update path.  Compare against ``test_incremental_rebuild``:
    the incremental indexer should win by a wide margin."""
    from repro.core.incremental import IncrementalIndexer

    base, delta = corpus_5k[:-100], corpus_5k[-100:]
    indexer = IncrementalIndexer()
    indexer.add_all(base)

    def add_then_undo():
        for record in delta:
            indexer.add(record)
        for record in delta:
            indexer.remove(record.record_id)

    benchmark(add_then_undo)
    assert indexer.record_count == len(base)


def test_incremental_rebuild_baseline(benchmark, corpus_5k):
    """The rebuild alternative: one full build of all 5k records (what the
    incremental path avoids paying per update batch)."""
    index = benchmark(build_index, corpus_5k)
    assert len(index) >= len(corpus_5k)

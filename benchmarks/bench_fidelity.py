"""E1 — artifact fidelity: rebuild the reference index, score it, time it.

The paper's sole content *is* the index, so the "headline result" is exact
regeneration: the benchmark times the full rebuild and asserts the fidelity
metrics EXPERIMENTS.md records (row universe, ordering spot checks, zero
self-diff)."""

from repro.baselines.naive import naive_build
from repro.core.builder import build_index
from repro.core.diffing import diff_indexes


def test_rebuild_reference_index(benchmark, reference_records):
    """Time a full pipeline rebuild of the artifact's index."""
    index = benchmark(build_index, reference_records)
    assert len(index) == 343
    assert len(index.groups()) == 257


def test_rebuild_is_self_consistent(benchmark, reference_records):
    """Diff two independent rebuilds: must be identical (fidelity 1.0)."""
    reference = build_index(reference_records)

    def rebuild_and_diff():
        return diff_indexes(build_index(reference_records), reference)

    diff = benchmark(rebuild_and_diff)
    assert diff.is_identical
    assert diff.order_fidelity == 1.0


def test_naive_baseline_fidelity_gap(benchmark, reference_records):
    """The naive baseline's ordering disagreement with the artifact
    (who wins: the real builder, with order fidelity 1.0 vs < 1.0)."""
    reference = build_index(reference_records)

    def naive_and_diff():
        return diff_indexes(naive_build(reference_records), reference)

    diff = benchmark(naive_and_diff)
    assert diff.order_fidelity < 1.0  # the baseline gets the artifact wrong
    assert diff.common_count > 300

"""E11 — composite indexes vs. single-field index + filter vs. scan.

Regenerates the composite-index table: the workload is the index editor's
bread-and-butter "this volume, these pages" selection over 10k records.
Expected shape: composite lookup ≈ hash-probe fast; composite prefix+range
beats single-field-index-plus-residual (which touches every row of the
volume) which beats the scan; the margin grows as the residual gets more
selective."""

import pytest

from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.wvlr import PUBLICATION_SCHEMA
from repro.query.executor import QueryEngine
from repro.storage.store import IndexKind, RecordStore


def _populated(store: RecordStore) -> RecordStore:
    records = SyntheticCorpus(SyntheticCorpusConfig(size=10_000, seed=606)).records()
    with store.transaction() as txn:
        for record in records:
            txn.insert(record.to_store_dict())
    return store


@pytest.fixture(scope="module")
def composite_engine():
    store = _populated(RecordStore(PUBLICATION_SCHEMA))
    store.create_composite_index(("volume", "page"))
    return QueryEngine(store)


@pytest.fixture(scope="module")
def single_engine():
    store = _populated(RecordStore(PUBLICATION_SCHEMA))
    store.create_index("volume", IndexKind.HASH)
    return QueryEngine(store)


@pytest.fixture(scope="module")
def scan_engine():
    return QueryEngine(_populated(RecordStore(PUBLICATION_SCHEMA)))


POINT = "volume = 80 AND page = 100"
RANGE = "volume = 80 AND page >= 100 AND page < 400"


def test_point_composite(benchmark, composite_engine):
    assert composite_engine.explain(POINT).startswith("COMPOSITE LOOKUP")
    benchmark(composite_engine.execute, POINT)


def test_point_single_index_residual(benchmark, single_engine):
    assert single_engine.explain(POINT).startswith("INDEX LOOKUP")
    benchmark(single_engine.execute, POINT)


def test_point_scan(benchmark, scan_engine):
    benchmark(scan_engine.execute_without_indexes, POINT)


def test_range_composite(benchmark, composite_engine):
    assert composite_engine.explain(RANGE).startswith("COMPOSITE RANGE")
    rows = benchmark(composite_engine.execute, RANGE)
    assert rows


def test_range_single_index_residual(benchmark, single_engine):
    rows = benchmark(single_engine.execute, RANGE)
    assert rows


def test_range_scan(benchmark, scan_engine):
    rows = benchmark(scan_engine.execute_without_indexes, RANGE)
    assert rows


def test_results_agree(benchmark, composite_engine, single_engine, scan_engine):
    """All three access paths must return identical rows (timed as the
    cost of the full three-way verification)."""

    def verify():
        for query in (POINT, RANGE):
            a = sorted(r["id"] for r in composite_engine.execute(query))
            b = sorted(r["id"] for r in single_engine.execute(query))
            c = sorted(r["id"] for r in scan_engine.execute_without_indexes(query))
            assert a == b == c
        return True

    assert benchmark(verify)

"""Shared fixtures for the benchmark suites (E1–E8).

Corpora are generated once per session from fixed seeds so every benchmark
run measures the same workload.
"""

from __future__ import annotations

import pytest

from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.wvlr import load_reference_records


@pytest.fixture(scope="session")
def reference_records():
    return load_reference_records()


@pytest.fixture(scope="session")
def corpus_1k():
    return list(SyntheticCorpus(SyntheticCorpusConfig(size=1_000, seed=101)).records())


@pytest.fixture(scope="session")
def corpus_5k():
    return list(SyntheticCorpus(SyntheticCorpusConfig(size=5_000, seed=102)).records())


@pytest.fixture(scope="session")
def corpus_20k():
    return list(SyntheticCorpus(SyntheticCorpusConfig(size=20_000, seed=103)).records())

"""RESILIENCE — cost of the guard on hot scans, latency of load shedding.

Two contracts from ``docs/resilience.md`` are measured:

* **Cancellation-check overhead** — an unconstrained full-scan query
  through the executor with a :class:`~repro.resilience.Guard` (deadline
  + cancel token armed, never tripping) versus the same query unguarded
  (the seed executor's code path), interleaved per round so clock drift
  hits both arms equally.  The acceptance bound is < 2 %.  The raw
  storage scan is reported alongside for the per-row tick cost.
* **Shed-response latency** — with every execution slot occupied and a
  zero-depth queue, the admission gate must answer "come back later" in
  microseconds.  Reported as p50/p99 over a synthetic overload: worker
  threads hammering the saturated gate.
* **Scrub overhead on foreground queries** — scatter-gather query
  latency over a 4-shard paged store with the background CRC scrubber
  idle versus sweeping continuously at its default rate limit.  The
  token bucket is supposed to make the scrubber invisible to foreground
  reads; the p50/p99 deltas put a number on "invisible".

Standalone-runnable (pytest not required)::

    PYTHONPATH=src python benchmarks/bench_resilience.py            # print JSON
    PYTHONPATH=src python benchmarks/bench_resilience.py --quick
    PYTHONPATH=src python benchmarks/bench_resilience.py --output BENCH_resilience.json

The checked-in ``BENCH_resilience.json`` at the repo root is the
recorded baseline; regenerate it with the third form when the guard or
the gate changes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
from pathlib import Path
from time import perf_counter

from repro.errors import AdmissionRejected
from repro.query.executor import QueryEngine, ShardedQueryEngine
from repro.resilience import AdmissionController, CancelToken, Deadline, Guard
from repro.storage import ShardedStore
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.scrub import DEFAULT_BYTES_PER_S, Scrubber
from repro.storage.store import RecordStore

#: The unconstrained full scan: matches every record, no index, no limit.
SCAN_QUERY = "year >= 1900"

REPEATS = 15
WARMUP = 2
STORE_SIZE = 100_000
SHED_WORKERS = 8
SHEDS_PER_WORKER = 2_000
SCRUB_SHARDS = 4
SCRUB_STORE_SIZE = 40_000
SCRUB_QUERY_REPEATS = 400

TARGET_OVERHEAD_PCT = 2.0

SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("name", FieldType.STRING),
        Field("year", FieldType.INT),
    ],
    primary_key="id",
)


def _build_store(size: int) -> RecordStore:
    store = RecordStore(SCHEMA)
    store.put_many(
        [{"id": i, "name": f"rec-{i}", "year": 1900 + (i % 120)} for i in range(size)]
    )
    return store


def _fresh_guard() -> Guard:
    # Deadline and token armed but never tripping: the scan pays the full
    # per-row tick (increment + compare + amortized clock) without ever
    # unwinding, which is exactly the hot-path cost being bounded.
    return Guard(deadline=Deadline.after(3600.0), cancel=CancelToken())


def _overhead(guarded_fn, unguarded_fn, rows: int, repeats: int) -> dict:
    samples: dict[str, list[float]] = {"guarded": [], "unguarded": []}
    for round_no in range(WARMUP + repeats):
        # Alternate arm order per round so neither arm systematically
        # absorbs post-switch cold-cache cost.
        arms = (
            (("guarded", guarded_fn), ("unguarded", unguarded_fn))
            if round_no % 2 == 0
            else (("unguarded", unguarded_fn), ("guarded", guarded_fn))
        )
        timings = {}
        for name, fn in arms:
            start = perf_counter()
            fn()
            timings[name] = perf_counter() - start
        if round_no >= WARMUP:
            samples["guarded"].append(timings["guarded"])
            samples["unguarded"].append(timings["unguarded"])

    # Same two noise-robust estimates as bench_obs: best-of per arm and
    # the median of per-round paired ratios; overhead is real only when
    # it shows up in both.
    best_guarded = min(samples["guarded"])
    best_unguarded = min(samples["unguarded"])
    ratios = sorted(
        g / u for g, u in zip(samples["guarded"], samples["unguarded"]) if u
    )
    paired = ratios[len(ratios) // 2] if ratios else 1.0
    overhead = (min(best_guarded / best_unguarded, paired) - 1.0) * 100
    per_row_ns = (best_guarded - best_unguarded) / rows * 1e9
    return {
        "rows": rows,
        "unguarded_s": round(best_unguarded, 6),
        "guarded_s": round(best_guarded, 6),
        "tick_cost_ns_per_row": round(per_row_ns, 2),
        "overhead_pct": round(overhead, 2),
    }


def _scan_overhead(store: RecordStore, repeats: int) -> dict:
    engine = QueryEngine(store)
    engine.execute(SCAN_QUERY)  # prime parser/planner caches, untimed
    executor = _overhead(
        lambda: engine.execute(SCAN_QUERY, guard=_fresh_guard()),
        lambda: engine.execute(SCAN_QUERY),
        len(store),
        repeats,
    )
    raw = _overhead(
        lambda: sum(1 for _ in store.scan(guard=_fresh_guard())),
        lambda: sum(1 for _ in store.scan()),
        len(store),
        repeats,
    )
    return {"executor_full_scan": executor, "storage_scan": raw}


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _shed_latency(workers: int, sheds_per_worker: int) -> dict:
    gate = AdmissionController(max_concurrent=1, max_queue=0, queue_timeout_s=0.0)
    gate.acquire()  # saturate: every subsequent acquire sheds at the door
    latencies: list[list[float]] = [[] for _ in range(workers)]

    def hammer(slot: list[float]) -> None:
        for _ in range(sheds_per_worker):
            start = perf_counter()
            try:
                gate.acquire()
            except AdmissionRejected:
                pass
            slot.append(perf_counter() - start)

    try:
        threads = [
            threading.Thread(target=hammer, args=(slot,)) for slot in latencies
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        gate.release()

    merged = sorted(v for slot in latencies for v in slot)
    return {
        "workers": workers,
        "sheds": len(merged),
        "p50_us": round(_percentile(merged, 0.50) * 1e6, 1),
        "p99_us": round(_percentile(merged, 0.99) * 1e6, 1),
        "max_us": round(merged[-1] * 1e6, 1) if merged else 0.0,
    }


def _query_latencies(engine: ShardedQueryEngine, query: str, repeats: int) -> list[float]:
    latencies = []
    for _ in range(repeats):
        start = perf_counter()
        engine.execute(query)
        latencies.append(perf_counter() - start)
    return sorted(latencies)


def _scrub_overhead(size: int, repeats: int, root: Path) -> dict:
    store = ShardedStore(SCHEMA, root, shards=SCRUB_SHARDS, data_format="paged")
    try:
        store.put_many(
            [
                {"id": i, "name": f"rec-{i}", "year": 1900 + (i % 120)}
                for i in range(size)
            ]
        )
        store.checkpoint()
        engine = ShardedQueryEngine(store)
        query = "year >= 2010"  # touches every shard, returns a thin slice
        engine.execute(query)  # prime parser/planner caches, untimed

        idle = _query_latencies(engine, query, repeats)

        # Keep a sweep in flight for the whole measurement window: loop
        # run_once() in a thread rather than start(), whose interval gap
        # would let the foreground arm race ahead of the scrubber.
        scrubber = Scrubber(store)
        stop = threading.Event()

        def sweep() -> None:
            while not stop.is_set():
                scrubber.run_once()

        sweeper = threading.Thread(target=sweep, daemon=True)
        sweeper.start()
        try:
            busy = _query_latencies(engine, query, repeats)
        finally:
            stop.set()
            sweeper.join()
    finally:
        store.close()

    idle_p99 = _percentile(idle, 0.99)
    busy_p99 = _percentile(busy, 0.99)
    return {
        "shards": SCRUB_SHARDS,
        "records": size,
        "queries": repeats,
        "scrub_rate_mb_s": round(DEFAULT_BYTES_PER_S / (1024 * 1024), 1),
        "idle_p50_us": round(_percentile(idle, 0.50) * 1e6, 1),
        "idle_p99_us": round(idle_p99 * 1e6, 1),
        "scrubbing_p50_us": round(_percentile(busy, 0.50) * 1e6, 1),
        "scrubbing_p99_us": round(busy_p99 * 1e6, 1),
        "p99_overhead_pct": round((busy_p99 / idle_p99 - 1.0) * 100, 2)
        if idle_p99
        else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", help="write JSON here instead of stdout")
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink sizes for CI smoke (10k rows, fewer repeats)",
    )
    args = parser.parse_args(argv)

    size = 10_000 if args.quick else STORE_SIZE
    repeats = 5 if args.quick else REPEATS
    sheds = 200 if args.quick else SHEDS_PER_WORKER
    scrub_size = 4_000 if args.quick else SCRUB_STORE_SIZE
    scrub_queries = 50 if args.quick else SCRUB_QUERY_REPEATS

    store = _build_store(size)
    scan = _scan_overhead(store, repeats)
    shed = _shed_latency(SHED_WORKERS, sheds)
    with tempfile.TemporaryDirectory(prefix="bench-scrub-") as tmp:
        scrub = _scrub_overhead(scrub_size, scrub_queries, Path(tmp))

    doc = {
        "benchmark": "bench_resilience",
        "python": sys.version.split()[0],
        # Scrub overhead is an I/O-contention measurement: the sweeper
        # competes with foreground reads for cores and page cache, so a
        # result is only comparable to runs on similar hardware.
        "host": {"cpu_count": os.cpu_count()},
        "quick": args.quick,
        "repeats": repeats,
        "target_overhead_pct": TARGET_OVERHEAD_PCT,
        "guarded_scan": scan,
        "shed_latency": shed,
        "scrub_overhead": scrub,
    }
    text = json.dumps(doc, indent=2)
    overhead = scan["executor_full_scan"]["overhead_pct"]
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(
            f"wrote {args.output} (guard overhead {overhead:+.2f}%, "
            f"shed p99 {shed['p99_us']}us)",
            file=sys.stderr,
        )
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""INGEST — throughput of the batched write path and the plan cache.

Three experiments, written to ``BENCH_ingest.json``:

* **ingest** — per-record ``insert()`` vs ``put_many()`` on a durable
  (WAL-backed, ``sync=True``) store carrying the repository's four
  default indexes, at 1k / 10k / 100k records.  Durable per-record
  writes pay one fsync per record; ``put_many`` group-commits the whole
  batch behind one fsync and maintains each index with one sorted bulk
  update, so the speedup target is ≥ 5x at 100k.
* **plan_cache** — cold ``plan_query`` cost vs a warm
  ``PlanCache.get_or_plan`` hit (target: a hit costs < 10% of a cold
  plan), plus the hit rate over a mixed 200-query workload.
* **obs_overhead** — ``put_many`` with the metrics registry enabled vs
  disabled (same < 5% bar as ``BENCH_obs.json``).

Standalone-runnable (pytest not required)::

    PYTHONPATH=src python benchmarks/bench_ingest.py             # print JSON
    PYTHONPATH=src python benchmarks/bench_ingest.py --quick     # CI smoke
    PYTHONPATH=src python benchmarks/bench_ingest.py --output BENCH_ingest.json

``--quick`` shrinks the sizes (1k/5k, fewer repeats) so CI can smoke-test
the harness in seconds; the checked-in baseline comes from a full run.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro import obs
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.wvlr import PUBLICATION_SCHEMA
from repro.query.executor import QueryEngine
from repro.query.parser import parse_query
from repro.query.planner import PlanCache, plan_query
from repro.storage.store import IndexKind, RecordStore

FULL_SIZES = (1_000, 10_000, 100_000)
QUICK_SIZES = (1_000, 5_000)

PLAN_QUERIES = [
    'surnames:"McAteer" AND year >= 1978',
    "year >= 1985 ORDER BY page LIMIT 10",
    "volume = 80 AND page >= 100",
    'surnames IN ("Fox", "Webb") AND year < 1990',
    "year >= 1960 AND year < 1970",
]


_RECORD_CACHE: dict[int, list[dict]] = {}


def _records(size: int) -> list[dict]:
    # The generator's default author pool is size // 2, and its
    # rejection-sampling distinctness check is quadratic in the pool —
    # fine at the 5k the other benchmarks use, minutes at 100k.  Cap the
    # pool: 2k heavy-tailed authors is plenty of key skew for the
    # storage arms, which only care about record volume.
    if size not in _RECORD_CACHE:
        config = SyntheticCorpusConfig(
            size=size, seed=1729, author_pool=min(size // 2, 2_000)
        )
        corpus = SyntheticCorpus(config)
        _RECORD_CACHE[size] = [record.to_store_dict() for record in corpus.records()]
    return _RECORD_CACHE[size]


def _new_store(directory: Path) -> RecordStore:
    """A durable store with the repository's default index set."""
    store = RecordStore(PUBLICATION_SCHEMA, directory, sync=True)
    store.create_index("surnames", IndexKind.HASH)
    store.create_index("year", IndexKind.BTREE)
    store.create_index("volume", IndexKind.BTREE)
    store.create_composite_index(("volume", "page"))
    return store


def bench_ingest(sizes, scratch: Path) -> dict:
    results = {}
    for size in sizes:
        rows = _records(size)
        with _new_store(scratch / f"serial-{size}") as store:
            start = perf_counter()
            for row in rows:
                store.insert(row)
            per_record_s = perf_counter() - start
            assert len(store) == size
        with _new_store(scratch / f"batched-{size}") as store:
            start = perf_counter()
            store.put_many(rows)
            put_many_s = perf_counter() - start
            assert len(store) == size
        results[str(size)] = {
            "per_record_s": round(per_record_s, 4),
            "put_many_s": round(put_many_s, 4),
            "per_record_rps": round(size / per_record_s),
            "put_many_rps": round(size / put_many_s),
            "speedup": round(per_record_s / put_many_s, 2),
        }
        print(
            f"  ingest {size:>7}: insert {per_record_s:.3f}s, "
            f"put_many {put_many_s:.3f}s "
            f"({results[str(size)]['speedup']}x)",
            file=sys.stderr,
        )
    return results


def bench_plan_cache(scratch: Path, repeats: int) -> dict:
    with RecordStore(PUBLICATION_SCHEMA, scratch / "plans") as store:
        store.put_many(_records(5_000))
        store.create_index("surnames", IndexKind.HASH)
        store.create_index("year", IndexKind.BTREE)
        store.create_index("volume", IndexKind.BTREE)
        store.create_composite_index(("volume", "page"))
        parsed = [parse_query(q) for q in PLAN_QUERIES]

        # Cold: a fresh rule search per call.  Warm: pure cache hits.
        n = 200
        cold_s = warm_s = float("inf")
        for _ in range(repeats):
            start = perf_counter()
            for _ in range(n):
                for query in parsed:
                    plan_query(query, store)
            cold_s = min(cold_s, (perf_counter() - start) / (n * len(parsed)))
            cache = PlanCache()
            for query in parsed:  # prime
                cache.get_or_plan(query, store)
            start = perf_counter()
            for _ in range(n):
                for query in parsed:
                    cache.get_or_plan(query, store)
            warm_s = min(warm_s, (perf_counter() - start) / (n * len(parsed)))

        # Hit rate over a mixed workload on a fresh engine: 200 queries
        # drawn round-robin from the five templates — everything after
        # the first pass hits.
        obs.reset()
        engine = QueryEngine(store)
        for i in range(200):
            engine.execute(PLAN_QUERIES[i % len(PLAN_QUERIES)])
        counters = obs.metrics.snapshot()["counters"]
        hits = counters["query.planner.cache.hit"]
        misses = counters["query.planner.cache.miss"]
    ratio_pct = warm_s / cold_s * 100
    print(
        f"  plan cache: cold {cold_s * 1e6:.1f}us, warm {warm_s * 1e6:.1f}us "
        f"({ratio_pct:.1f}% of cold), hit rate {hits / (hits + misses):.2%}",
        file=sys.stderr,
    )
    return {
        "cold_plan_s": round(cold_s, 9),
        "warm_hit_s": round(warm_s, 9),
        "warm_pct_of_cold": round(ratio_pct, 2),
        "workload_hits": hits,
        "workload_misses": misses,
        "workload_hit_rate": round(hits / (hits + misses), 4),
    }


def bench_obs_overhead(scratch: Path, size: int, repeats: int) -> dict:
    """put_many with metrics enabled vs disabled (same store shape)."""
    rows = _records(size)
    samples: dict[bool, list[float]] = {True: [], False: []}
    seq = 0
    for round_no in range(repeats + 1):  # +1 warmup round
        arms = (True, False) if round_no % 2 == 0 else (False, True)
        for arm in arms:
            seq += 1
            with _new_store(scratch / f"obs-{seq}") as store:
                obs.set_enabled(arm)
                try:
                    start = perf_counter()
                    store.put_many(rows)
                    elapsed = perf_counter() - start
                finally:
                    obs.set_enabled(True)
            if round_no > 0:
                samples[arm].append(elapsed)
    enabled = min(samples[True])
    disabled = min(samples[False])
    ratios = sorted(e / d for e, d in zip(samples[True], samples[False]))
    paired = ratios[len(ratios) // 2]
    overhead = (min(enabled / disabled, paired) - 1.0) * 100
    print(
        f"  obs overhead on put_many({size}): {overhead:+.2f}%", file=sys.stderr
    )
    return {
        "records": size,
        "enabled_s": round(enabled, 4),
        "disabled_s": round(disabled, 4),
        "overhead_pct": round(overhead, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", help="write JSON here instead of stdout")
    parser.add_argument(
        "--quick", action="store_true", help="small sizes / few repeats (CI smoke)"
    )
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    repeats = 3 if args.quick else 7
    obs.reset()
    with tempfile.TemporaryDirectory(prefix="bench-ingest-") as tmp:
        scratch = Path(tmp)
        ingest = bench_ingest(sizes, scratch)
        plan_cache = bench_plan_cache(scratch, repeats)
        overhead = bench_obs_overhead(scratch, sizes[-1], repeats)
    doc = {
        "benchmark": "bench_ingest",
        "python": sys.version.split()[0],
        "quick": args.quick,
        "targets": {
            "ingest_speedup_at_largest": 5.0,
            "plan_cache_warm_pct_of_cold": 10.0,
            "obs_overhead_pct": 5.0,
        },
        "notes": {
            "put_many_100k_regression": (
                "put_many at 100k used to dip below its own 10k-record "
                "rate (31.9k rec/s vs 46.5k at 10k): cyclic-GC pressure "
                "from millions of batch-held dicts, per-record schema "
                "dispatch, and one giant WAL write. Fixed by pausing GC "
                "across the batch apply, prebinding field validators "
                "(Schema.validate_many), and chunking the group commit "
                "into 1 MiB writes — 57.7k rec/s after, scaling past the "
                "10k rate again."
            ),
        },
        "ingest": ingest,
        "plan_cache": plan_cache,
        "obs_overhead": overhead,
    }
    text = json.dumps(doc, indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E3 — query latency: indexed execution vs. forced full scan at 10k records.

Regenerates the query-latency table: point lookups, range scans, and
conjunctive queries, each executed through the planner (which picks the
index) and through the scan-only path.  Expected shape: indexed point
lookups beat scans by orders of magnitude; ranges win proportionally to
selectivity; the gap closes as the residual filter dominates."""

import pytest

from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.wvlr import PUBLICATION_SCHEMA
from repro.query.executor import QueryEngine
from repro.storage.store import IndexKind, RecordStore

QUERIES = {
    "point-surname": 'surnames:"McAteer"',
    "point-volume": "volume = 80",
    "range-year-narrow": "year >= 1990 AND year <= 1991",
    "range-year-wide": "year >= 1975",
    "conjunctive": 'surnames:"Johnson" AND year >= 1980 AND student = false',
    "order-limit": "year >= 1985 ORDER BY page LIMIT 10",
}


@pytest.fixture(scope="module")
def engine():
    records = SyntheticCorpus(SyntheticCorpusConfig(size=10_000, seed=303)).records()
    store = RecordStore(PUBLICATION_SCHEMA)
    with store.transaction() as txn:
        for record in records:
            txn.insert(record.to_store_dict())
    store.create_index("surnames", IndexKind.HASH)
    store.create_index("year", IndexKind.BTREE)
    store.create_index("volume", IndexKind.BTREE)
    return QueryEngine(store)


@pytest.mark.parametrize("name", list(QUERIES))
def test_indexed(benchmark, engine, name):
    query = QUERIES[name]
    rows = benchmark(engine.execute, query)
    assert rows == engine.execute_without_indexes(query) or len(rows) == len(
        engine.execute_without_indexes(query)
    )


@pytest.mark.parametrize("name", list(QUERIES))
def test_forced_scan(benchmark, engine, name):
    query = QUERIES[name]
    benchmark(engine.execute_without_indexes, query)


AGGREGATES = {
    "group-volume": "* GROUP BY volume",
    "group-filtered": "year >= 1985 GROUP BY volume ORDER BY count DESC",
    "group-list-field": "* GROUP BY surnames ORDER BY count DESC LIMIT 20",
}


@pytest.mark.parametrize("name", list(AGGREGATES))
def test_aggregate(benchmark, engine, name):
    rows = benchmark(engine.execute, AGGREGATES[name])
    assert rows


def test_count(benchmark, engine):
    assert benchmark(engine.count, "year >= 1985") > 0

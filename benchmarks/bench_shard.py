"""SHARD — durable ingest and scatter-gather query scaling across shards.

Two experiments, written to ``BENCH_shard.json``:

* **ingest** — streaming durable ingest (``sync=True``, 5k-record
  batches, WAL-bounded auto-checkpoints at ~2 MiB per shard) into a
  :class:`ShardedStore` at 1 / 2 / 4 / 8 shards.  A checkpoint costs
  O(store size), so a WAL-bounded ingest loop pays a quadratic total
  checkpoint bill; hash-partitioning into N shards divides both the
  per-checkpoint size and the per-shard checkpoint cadence, cutting
  that term ~N×.  Target: ≥ 2.5x records/s at 4 shards vs 1 on the
  full 100k-record run.
* **query** — p50/p99 latency of a sorted scan and a numeric aggregate
  through :class:`ShardedQueryEngine` scatter-gather at each shard
  count, plus a byte-identity check of every result against the
  1-shard baseline.  (Single-core box: this measures merge overhead,
  not parallel speedup — the ingest arm is where sharding pays here.)

Standalone-runnable (pytest not required)::

    PYTHONPATH=src python benchmarks/bench_shard.py             # print JSON
    PYTHONPATH=src python benchmarks/bench_shard.py --quick     # CI smoke
    PYTHONPATH=src python benchmarks/bench_shard.py --output BENCH_shard.json

``--quick`` shrinks the corpus and repeat counts so CI can smoke-test the
harness in seconds; the checked-in baseline comes from a full run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro import obs
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.wvlr import PUBLICATION_SCHEMA
from repro.query.executor import ShardedQueryEngine
from repro.storage.sharded import ShardedStore
from repro.storage.store import IndexKind

SHARD_COUNTS = (1, 2, 4, 8)
FULL_SIZE = 100_000
QUICK_SIZE = 5_000
BATCH_RECORDS = 5_000
CHECKPOINT_WAL_BYTES = 2 << 20  # ~2 MiB per shard
INGEST_SPEEDUP_TARGET = 2.5

QUERY_SORTED = "year >= 1960 ORDER BY year DESC LIMIT 100"
QUERY_AGG_FILTER = "volume >= 10"
QUERY_AGG_FIELD = "page"

_RECORD_CACHE: dict[int, list[dict]] = {}


def _records(size: int) -> list[dict]:
    # Cap the author pool (its distinctness check is quadratic in pool
    # size); the storage arms only care about record volume and skew.
    if size not in _RECORD_CACHE:
        config = SyntheticCorpusConfig(
            size=size, seed=1729, author_pool=min(size // 2, 2_000)
        )
        corpus = SyntheticCorpus(config)
        _RECORD_CACHE[size] = [record.to_store_dict() for record in corpus.records()]
    return _RECORD_CACHE[size]


def _add_indexes(store: ShardedStore) -> None:
    store.create_index("surnames", IndexKind.HASH)
    store.create_index("year", IndexKind.BTREE)
    store.create_index("volume", IndexKind.BTREE)
    store.create_composite_index(("volume", "page"))


def _checkpoint_total() -> int:
    counters = obs.metrics.snapshot()["counters"]
    return sum(
        value
        for name, value in counters.items()
        if name.startswith("storage.sharded.checkpoint.count")
    )


def bench_shard_ingest(size: int, scratch: Path) -> dict:
    """Streaming durable ingest at each shard count; same records, same
    per-shard WAL bound, so only the partitioning varies."""
    rows = _records(size)
    results: dict[str, dict] = {}
    base_rps = None
    for shards in SHARD_COUNTS:
        before = _checkpoint_total()
        with ShardedStore(
            PUBLICATION_SCHEMA,
            scratch / f"ingest-{shards}",
            shards=shards,
            sync=True,
            checkpoint_wal_bytes=CHECKPOINT_WAL_BYTES,
        ) as store:
            _add_indexes(store)
            start = perf_counter()
            for lo in range(0, size, BATCH_RECORDS):
                store.put_many(rows[lo : lo + BATCH_RECORDS])
            elapsed = perf_counter() - start
            assert len(store) == size
        checkpoints = _checkpoint_total() - before
        rps = size / elapsed
        if base_rps is None:
            base_rps = rps
        results[str(shards)] = {
            "seconds": round(elapsed, 3),
            "records_per_s": round(rps),
            "checkpoints": checkpoints,
            "speedup_vs_1": round(rps / base_rps, 2),
        }
        print(
            f"  ingest {size} @ {shards} shard(s): {elapsed:.2f}s "
            f"({rps:,.0f} rec/s, {checkpoints} checkpoints, "
            f"{rps / base_rps:.2f}x vs 1)",
            file=sys.stderr,
        )
    return results


def _percentiles(samples: list[float]) -> tuple[float, float]:
    ordered = sorted(samples)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, round(0.99 * (len(ordered) - 1)))]
    return p50, p99


def bench_shard_query(size: int, repeats: int) -> dict:
    """Sorted-scan and aggregate latency through scatter-gather, with a
    byte-identity check of every shard count against 1 shard."""
    rows = _records(min(size, 20_000))
    results: dict[str, dict] = {}
    baseline_sorted = baseline_agg = None
    for shards in SHARD_COUNTS:
        store = ShardedStore(PUBLICATION_SCHEMA, shards=shards)
        store.put_many(rows)
        _add_indexes(store)
        engine = ShardedQueryEngine(store)
        try:
            sorted_out = engine.execute(QUERY_SORTED)
            agg_out = engine.aggregate(QUERY_AGG_FILTER, QUERY_AGG_FIELD)
            if baseline_sorted is None:
                baseline_sorted, baseline_agg = sorted_out, agg_out
            else:
                assert sorted_out == baseline_sorted, (
                    f"sorted scan diverged at {shards} shards"
                )
                assert agg_out == baseline_agg, (
                    f"aggregate diverged at {shards} shards"
                )
            sorted_samples, agg_samples = [], []
            for _ in range(repeats):
                start = perf_counter()
                engine.execute(QUERY_SORTED)
                sorted_samples.append(perf_counter() - start)
                start = perf_counter()
                engine.aggregate(QUERY_AGG_FILTER, QUERY_AGG_FIELD)
                agg_samples.append(perf_counter() - start)
        finally:
            engine.close()
            store.close()
        s50, s99 = _percentiles(sorted_samples)
        a50, a99 = _percentiles(agg_samples)
        results[str(shards)] = {
            "sorted_p50_ms": round(s50 * 1e3, 3),
            "sorted_p99_ms": round(s99 * 1e3, 3),
            "aggregate_p50_ms": round(a50 * 1e3, 3),
            "aggregate_p99_ms": round(a99 * 1e3, 3),
            "identical_to_1_shard": True,
        }
        print(
            f"  query @ {shards} shard(s): sorted p50 {s50 * 1e3:.2f}ms "
            f"p99 {s99 * 1e3:.2f}ms, aggregate p50 {a50 * 1e3:.2f}ms "
            f"p99 {a99 * 1e3:.2f}ms",
            file=sys.stderr,
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", help="write JSON here instead of stdout")
    parser.add_argument(
        "--quick", action="store_true", help="small corpus / few repeats (CI smoke)"
    )
    args = parser.parse_args(argv)

    size = QUICK_SIZE if args.quick else FULL_SIZE
    repeats = 5 if args.quick else 30
    obs.reset()
    with tempfile.TemporaryDirectory(prefix="bench-shard-") as tmp:
        ingest = bench_shard_ingest(size, Path(tmp))
        query = bench_shard_query(size, repeats)
    doc = {
        "benchmark": "bench_shard",
        "python": sys.version.split()[0],
        # The ingest speedup is checkpoint-bound on one core; the
        # thread-pool commit headroom only shows with cores to spare,
        # so a result is only comparable to runs on similar hardware.
        "host": {"cpu_count": os.cpu_count()},
        "quick": args.quick,
        "targets": {"ingest_speedup_4_shards_vs_1": INGEST_SPEEDUP_TARGET},
        "config": {
            "records": size,
            "batch_records": BATCH_RECORDS,
            "checkpoint_wal_bytes": CHECKPOINT_WAL_BYTES,
            "sync": True,
        },
        "ingest": ingest,
        "query": query,
    }
    text = json.dumps(doc, indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

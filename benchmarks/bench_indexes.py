"""E4 — index-structure crossover: B-tree vs. hash vs. scan by selectivity.

Regenerates the crossover figure: x-axis is result selectivity (fraction of
the 10k-record table matched), series are hash probe (point only), B-tree
range scan, and full scan.  Expected shape: hash wins point lookups;
B-tree wins ranges at low selectivity; the scan overtakes the B-tree once
selectivity approaches tens of percent (each indexed hit pays pointer
chasing + record copy that the sequential scan amortizes)."""

import pytest

from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.wvlr import PUBLICATION_SCHEMA
from repro.storage.store import IndexKind, RecordStore

#: selectivity targets as (label, year-range width out of 27 volumes)
SELECTIVITIES = [("2pct", 1), ("7pct", 2), ("15pct", 4), ("30pct", 8), ("60pct", 16)]


@pytest.fixture(scope="module")
def stores():
    records = SyntheticCorpus(SyntheticCorpusConfig(size=10_000, seed=404)).records()
    btree = RecordStore(PUBLICATION_SCHEMA)
    hash_store = RecordStore(PUBLICATION_SCHEMA)
    plain = RecordStore(PUBLICATION_SCHEMA)
    for store in (btree, hash_store, plain):
        with store.transaction() as txn:
            for record in records:
                txn.insert(record.to_store_dict())
    btree.create_index("year", IndexKind.BTREE)
    hash_store.create_index("year", IndexKind.HASH)
    return btree, hash_store, plain


def test_point_lookup_hash(benchmark, stores):
    _, hash_store, _ = stores
    rows = benchmark(hash_store.find_by, "year", 1980)
    assert rows


def test_point_lookup_btree(benchmark, stores):
    btree, _, _ = stores
    rows = benchmark(btree.find_by, "year", 1980)
    assert rows


def test_point_lookup_scan(benchmark, stores):
    _, _, plain = stores
    rows = benchmark(plain.find_by, "year", 1980)
    assert rows


@pytest.mark.parametrize("label,width", SELECTIVITIES)
def test_range_btree(benchmark, stores, label, width):
    btree, _, _ = stores
    rows = benchmark(btree.range_by, "year", 1970, 1970 + width)
    assert rows


@pytest.mark.parametrize("label,width", SELECTIVITIES)
def test_range_scan(benchmark, stores, label, width):
    _, _, plain = stores
    rows = benchmark(plain.range_by, "year", 1970, 1970 + width)
    assert rows

"""E12 — full-text title search vs. LIKE-pattern scanning.

The workload: find titles mentioning given words in a 10k-record corpus.
Expected shape: inverted-index retrieval wins by orders of magnitude over
`LIKE "%word%"` scans (which must regex every title), and the one-time
index build amortizes after a handful of queries."""

import pytest

from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.wvlr import PUBLICATION_SCHEMA
from repro.query.executor import QueryEngine
from repro.search.engine import TitleSearchEngine
from repro.storage.store import RecordStore


@pytest.fixture(scope="module")
def records():
    return SyntheticCorpus(SyntheticCorpusConfig(size=10_000, seed=707)).records()


@pytest.fixture(scope="module")
def search_engine(records):
    return TitleSearchEngine(records)


@pytest.fixture(scope="module")
def like_engine(records):
    store = RecordStore(PUBLICATION_SCHEMA)
    with store.transaction() as txn:
        for record in records:
            txn.insert(record.to_store_dict())
    return QueryEngine(store)


def test_build_search_index(benchmark, records):
    engine = benchmark(TitleSearchEngine, records)
    assert len(engine) == 10_000


def test_single_term_inverted(benchmark, search_engine):
    hits = benchmark(search_engine.search, "mining")
    assert hits


def test_single_term_like_scan(benchmark, like_engine):
    rows = benchmark(like_engine.execute, 'title LIKE "%Mining%"')
    assert rows


def test_two_term_and_inverted(benchmark, search_engine):
    hits = benchmark(search_engine.search, "coal arbitration")
    assert isinstance(hits, list)


def test_two_term_and_like_scan(benchmark, like_engine):
    rows = benchmark(
        like_engine.execute, 'title LIKE "%Coal%" AND title LIKE "%Arbitration%"'
    )
    assert isinstance(rows, list)


def test_phrase_inverted(benchmark, search_engine):
    hits = benchmark(search_engine.search, '"surface mining"')
    assert isinstance(hits, list)


def test_ranked_top10(benchmark, search_engine):
    hits = benchmark(lambda: search_engine.search("coal mining reclamation", k=10))
    assert len(hits) <= 10

"""E6 — render throughput per format over a 5k-record index.

Regenerates the renderer table: one row per output format.  Expected shape:
JSON fastest (no layout work), markdown/HTML close behind (string escaping),
LaTeX similar, paginated text slowest (per-row wrapping + page furniture)."""

import pytest

from repro.core.builder import build_index
from repro.core.pagination import PageLayout, paginate


@pytest.fixture(scope="module")
def index(corpus_5k):
    return build_index(corpus_5k)


@pytest.mark.parametrize("fmt", ["json", "markdown", "html", "latex"])
def test_render_format(benchmark, index, fmt):
    output = benchmark(index.render, fmt)
    assert len(output) > 10_000


def test_render_text_paginated(benchmark, index):
    output = benchmark(index.render, "text")
    assert "AUTHOR INDEX" in output


def test_render_text_continuous(benchmark, index):
    output = benchmark(lambda: index.render("text", paginated=False))
    assert len(output) > 10_000


def test_paginate_only(benchmark, index):
    pages = benchmark(paginate, index, PageLayout())
    assert len(pages) > 100


def test_build_title_index(benchmark, corpus_5k):
    from repro.core.titleindex import build_title_index

    title_index = benchmark(build_title_index, corpus_5k)
    assert len(title_index) > 4_000


def test_build_kwic_index(benchmark, corpus_5k):
    from repro.core.kwic import build_kwic_index

    kwic = benchmark(build_kwic_index, corpus_5k, min_group_size=2)
    assert len(kwic.keywords()) > 20


def test_build_toc(benchmark, corpus_5k):
    from repro.core.toc import build_toc

    toc = benchmark(build_toc, corpus_5k)
    assert len(toc) == 27

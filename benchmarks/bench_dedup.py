"""E5 — entity-resolution scaling and quality vs. planted noise.

Regenerates the resolution table: rows are noise rates (corruptions per 100
characters), measuring runtime at fixed input size plus pairwise
precision/recall against planted ground truth (printed via benchmark
extra_info).  Expected shape: runtime is flat in noise (blocking dominates),
precision stays ~1.0, recall falls as damage exceeds the conservative
merge threshold."""

import pytest

from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.names.resolution import NameResolver

NOISE_RATES = [0.5, 2.0, 4.0, 8.0]


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(SyntheticCorpusConfig(size=2_000, seed=505, author_pool=400))


@pytest.mark.parametrize("noise", NOISE_RATES)
def test_resolution_quality_vs_noise(benchmark, corpus, noise):
    names, truth = corpus.noisy_variants(noise_rate=noise)
    resolver = NameResolver()

    report = benchmark(resolver.resolve, names)

    precision, recall = report.score_against(truth)
    benchmark.extra_info["precision"] = round(precision, 4)
    benchmark.extra_info["recall"] = round(recall, 4)
    benchmark.extra_info["variants"] = len(names)
    benchmark.extra_info["clusters"] = len(report.clusters)
    assert precision >= 0.95


@pytest.mark.parametrize("pool", [100, 400, 1600])
def test_resolution_scaling_with_pool_size(benchmark, pool):
    """Runtime scaling in the number of distinct authors (blocking should
    keep it near-linear rather than quadratic)."""
    corpus = SyntheticCorpus(SyntheticCorpusConfig(size=10, seed=506, author_pool=pool))
    names, _ = corpus.noisy_variants(noise_rate=2.0)
    resolver = NameResolver()
    report = benchmark(resolver.resolve, names)
    benchmark.extra_info["pairs_scored"] = report.pairs_scored
    assert report.input_count == len(names)

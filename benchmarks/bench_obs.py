"""OBS — overhead of the observability layer on query and storage hot paths.

Re-runs the hot paths of ``bench_query.py`` and ``bench_storage.py`` with
the default registry + tracer enabled and disabled, interleaving repeats
so clock drift hits both arms equally.  The contract being verified (see
``docs/observability.md``):

* enabled instrumentation costs < 5% on the bench hot paths (which
  now carry the structured-logging call sites at the default ``info``
  level),
* a disabled registry reduces every hook to a near-no-op (reported as
  nanoseconds per disabled ``Counter.inc``),
* one structured-log call is cheap in every regime — emitted,
  level-filtered, rate-limited, disabled — reported as nanoseconds
  per call under ``log_event_ns``, and
* workload attribution (query fingerprinting + per-fingerprint
  recording, ``docs/profiling.md``) stays under the same 5% bound on
  the hottest query path, isolated from the rest of the layer under
  ``attribution`` (sampling profiler off — its cost is opt-in).

Standalone-runnable (pytest not required)::

    PYTHONPATH=src python benchmarks/bench_obs.py            # print JSON
    PYTHONPATH=src python benchmarks/bench_obs.py --output BENCH_obs.json

The checked-in ``BENCH_obs.json`` at the repo root is the recorded
baseline; regenerate it with the second form when the instrumentation
changes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro import obs
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.wvlr import PUBLICATION_SCHEMA
from repro.query.executor import QueryEngine
from repro.storage.store import IndexKind, RecordStore
from repro.storage.wal import WriteAheadLog

REPEATS = 25
WARMUP = 2
INNER = {  # iterations per timed sample, sized so each sample is ~1ms+
    "query.point_lookup": 200,
    "query.range_order_limit": 1,
    "query.forced_scan": 1,
    "storage.scan_full": 1,
    "storage.wal_append_200": 1,
    "storage.recovery_replay_1k": 1,
}
CORPUS_SIZE = 10_000

# Hot paths lifted from bench_query.QUERIES (raw strings: the benches
# parse per execution, and so do we).
QUERY_POINT = 'surnames:"McAteer"'
QUERY_RANGE_SORT = "year >= 1985 ORDER BY page LIMIT 10"
QUERY_SCAN = "year >= 1975"


def _build_engine() -> tuple[RecordStore, QueryEngine]:
    records = SyntheticCorpus(
        SyntheticCorpusConfig(size=CORPUS_SIZE, seed=303)
    ).records()
    store = RecordStore(PUBLICATION_SCHEMA)
    with store.transaction() as txn:
        for record in records:
            txn.insert(record.to_store_dict())
    store.create_index("surnames", IndexKind.HASH)
    store.create_index("year", IndexKind.BTREE)
    return store, QueryEngine(store)


def _build_replay_dir(root: Path) -> Path:
    records = SyntheticCorpus(SyntheticCorpusConfig(size=1_000, seed=404)).records()
    directory = root / "replay-db"
    with RecordStore(PUBLICATION_SCHEMA, directory) as store:
        with store.transaction() as txn:
            for record in records:
                txn.insert(record.to_store_dict())
    return directory


def _workloads(store, engine, scratch: Path):
    payloads = [
        {"op": "put", "record": {"id": i, "v": "x" * 40}} for i in range(200)
    ]
    wal_seq = [0]
    replay_dir = _build_replay_dir(scratch)

    def wal_append():
        wal_seq[0] += 1
        path = scratch / f"w{wal_seq[0]}.wal"
        with WriteAheadLog(path, sync=False) as wal:
            for p in payloads:
                wal.append(p)
        path.unlink()

    def recovery_replay():
        with RecordStore(PUBLICATION_SCHEMA, replay_dir) as reopened:
            return len(reopened)

    return {
        "query.point_lookup": lambda: engine.execute(QUERY_POINT),
        "query.range_order_limit": lambda: engine.execute(QUERY_RANGE_SORT),
        "query.forced_scan": lambda: engine.execute_without_indexes(QUERY_SCAN),
        "storage.scan_full": lambda: sum(1 for _ in store.scan()),
        "storage.wal_append_200": wal_append,
        "storage.recovery_replay_1k": recovery_replay,
    }


def _drain_workload() -> None:
    """Stand in for the telemetry scraper, untimed, between rounds.

    Workload folding is read-driven (``docs/profiling.md``): on a scraped
    server the aggregation cost rides the ``/topz`` / ``/metrics``
    reader, not the query path.  This bench never scrapes, so without
    this the pending buffers grow for the whole run — tens of thousands
    of surviving tuples that every GC pass re-scans, until the inline
    backstop fold finally fires inside somebody's timed sample.  Neither
    happens on a scraped server, so neither belongs in the measurement.
    """
    from repro.obs import workload

    len(workload.get_default_table())
    workload.get_default_key_usage().fields()


def _time_once(fn, inner: int) -> float:
    start = perf_counter()
    for _ in range(inner):
        fn()
    return (perf_counter() - start) / inner


def _bench(workloads) -> dict:
    samples = {name: {"enabled": [], "disabled": []} for name in workloads}
    for round_no in range(WARMUP + REPEATS):
        for name, fn in workloads.items():
            inner = INNER[name]
            fn()  # prime caches after the workload switch, untimed
            # Alternate arm order per round so neither arm systematically
            # absorbs post-switch cold-cache cost.
            arms = (True, False) if round_no % 2 == 0 else (False, True)
            timings = {}
            for arm in arms:
                obs.set_enabled(arm)
                fn()  # re-prime after the flip: neither arm starts cold
                timings[arm] = _time_once(fn, inner)
            if round_no >= WARMUP:
                samples[name]["enabled"].append(timings[True])
                samples[name]["disabled"].append(timings[False])
        _drain_workload()
    obs.set_enabled(True)

    results = {}
    for name, arms in samples.items():
        # Two noise-robust estimates, reported as their minimum: best-of
        # per arm (the true cost of a deterministic loop is its fastest
        # run) and the median of per-round paired ratios (both arms of a
        # round run back to back, so machine drift cancels).  Each filters
        # a different noise shape — sustained load inflates best-of, a
        # single loaded round inflates the odd ratio — and overhead is
        # real only when it shows up in both.
        enabled = min(arms["enabled"])
        disabled = min(arms["disabled"])
        ratios = sorted(
            e / d for e, d in zip(arms["enabled"], arms["disabled"]) if d
        )
        paired = ratios[len(ratios) // 2] if ratios else 1.0
        overhead = (min(enabled / disabled, paired) - 1.0) * 100 if disabled else 0.0
        results[name] = {
            "enabled_s": round(enabled, 7),
            "disabled_s": round(disabled, 7),
            "overhead_pct": round(overhead, 2),
        }
    return results


def _attribution_overhead(engine) -> dict:
    """Cost of fingerprinting + workload recording on the hottest path.

    The main arms above flip the whole obs layer, so their enabled
    numbers already include attribution.  This micro isolates it: the
    registry/tracer/logger stay enabled in both arms and only workload
    recording flips, on the point-lookup path where per-execution cost
    is most visible.  Same interleaved-repeats pattern as ``_bench`` so
    clock drift hits both arms equally.
    """
    from repro.obs import workload

    inner = INNER["query.point_lookup"]
    samples = {"on": [], "off": []}
    obs.set_enabled(True)
    try:
        for round_no in range(WARMUP + REPEATS):
            engine.execute(QUERY_POINT)  # prime, untimed
            arms = (True, False) if round_no % 2 == 0 else (False, True)
            timings = {}
            for arm in arms:
                workload.set_enabled(arm)
                engine.execute(QUERY_POINT)  # re-prime after the flip
                timings[arm] = _time_once(
                    lambda: engine.execute(QUERY_POINT), inner
                )
            if round_no >= WARMUP:
                samples["on"].append(timings[True])
                samples["off"].append(timings[False])
            _drain_workload()
    finally:
        workload.set_enabled(True)
    on, off = min(samples["on"]), min(samples["off"])
    ratios = sorted(a / b for a, b in zip(samples["on"], samples["off"]) if b)
    paired = ratios[len(ratios) // 2] if ratios else 1.0
    overhead = (min(on / off, paired) - 1.0) * 100 if off else 0.0
    return {
        "workload": "query.point_lookup",
        "enabled_s": round(on, 7),
        "disabled_s": round(off, 7),
        "overhead_pct": round(overhead, 2),
    }


def _log_event_ns() -> dict:
    """Per-event cost of the structured logger's four fast paths.

    The hot-path workloads above already carry the instrumentation's
    ``debug(...)`` call sites at the default ``info`` level, so their
    overhead numbers cover logging in its default configuration.  This
    micro isolates what one log call costs in each regime an operator
    can configure: fully emitted (ring append), filtered by level,
    dropped by the rate limiter, and globally disabled.
    """
    logger = obs.logging.get_default_logger()
    n = 100_000
    saved_limit = logger.rate_limit_per_s
    saved_level = logger.level

    def _time(fn) -> float:
        start = perf_counter()
        for i in range(n):
            fn(i)
        return (perf_counter() - start) / n * 1e9

    try:
        logger.set_level("info")
        logger.rate_limit_per_s = 0.0
        emitted = _time(lambda i: obs.logging.info("bench.obs.log", i=i))
        filtered = _time(lambda i: obs.logging.debug("bench.obs.log", i=i))
        logger.rate_limit_per_s = 1.0  # budget exhausted after one event
        dropped = _time(lambda i: obs.logging.info("bench.obs.log", i=i))
        obs.set_enabled(False)
        disabled = _time(lambda i: obs.logging.info("bench.obs.log", i=i))
    finally:
        obs.set_enabled(True)
        logger.rate_limit_per_s = saved_limit
        logger.set_level(saved_level)
    return {
        "emitted": round(emitted, 1),
        "filtered_by_level": round(filtered, 1),
        "dropped_by_rate_limit": round(dropped, 1),
        "disabled": round(disabled, 1),
    }


def _counter_inc_ns(enabled: bool) -> float:
    """Cost of one Counter.inc() with the registry enabled/disabled."""
    counter = obs.metrics.counter("bench.obs.inc.micro")
    n = 1_000_000
    obs.set_enabled(enabled)
    try:
        start = perf_counter()
        for _ in range(n):
            counter.inc()
        elapsed = perf_counter() - start
    finally:
        obs.set_enabled(True)
    return elapsed / n * 1e9


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", help="write JSON here instead of stdout")
    args = parser.parse_args(argv)

    obs.reset()
    store, engine = _build_engine()
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as scratch:
        results = _bench(_workloads(store, engine, Path(scratch)))
    attribution = _attribution_overhead(engine)
    worst = max(
        [r["overhead_pct"] for r in results.values()]
        + [attribution["overhead_pct"]]
    )
    doc = {
        "benchmark": "bench_obs",
        "python": sys.version.split()[0],
        "corpus_size": CORPUS_SIZE,
        "repeats": REPEATS,
        # The ~36us point lookup is the one workload short enough that
        # scheduler jitter on a busy or single-core host shows up as
        # percent-scale noise in its ratio; a result is only comparable
        # to runs on similar hardware, so record what this box was.
        "host": {"cpu_count": os.cpu_count()},
        "target_overhead_pct": 5.0,
        "worst_overhead_pct": worst,
        "counter_inc_ns": {
            "enabled": round(_counter_inc_ns(True), 1),
            "disabled": round(_counter_inc_ns(False), 1),
        },
        "log_event_ns": _log_event_ns(),
        "attribution": attribution,
        "workloads": results,
    }
    text = json.dumps(doc, indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output} (worst overhead {worst:+.2f}%)", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

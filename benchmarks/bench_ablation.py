"""E8 — ablations over the design choices DESIGN.md calls out.

1. Collation key construction: full convention-aware key vs. the options
   that strip each convention (cost **and** correctness impact, the latter
   as order-fidelity against the full key's ordering).
2. OCR repair before resolution: repair-then-cluster vs. cluster-raw
   (recall impact at fixed noise).

Expected shape: each dropped convention saves little time but costs
fidelity; Mc-as-Mac actively disagrees with the artifact; lexicon repair
before clustering recovers recall the conservative resolver leaves behind."""

import pytest

from repro.core.builder import build_index
from repro.core.collation import CollationOptions
from repro.core.diffing import diff_indexes
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.names.model import PersonName
from repro.names.resolution import NameResolver
from repro.textproc.ocr import OCRRepairer

OPTION_SETS = {
    "full": CollationOptions(),
    "mc-as-mac": CollationOptions(mc_as_mac=True),
    "no-suffix-rank": CollationOptions(ignore_suffix=True),
    "no-student-rule": CollationOptions(ignore_student_flag=True),
}


@pytest.mark.parametrize("name", list(OPTION_SETS))
def test_collation_option_cost_and_fidelity(benchmark, reference_records, name):
    options = OPTION_SETS[name]
    reference = build_index(reference_records)  # full conventions

    index = benchmark(build_index, reference_records, options=options)

    diff = diff_indexes(index, reference)
    benchmark.extra_info["order_fidelity"] = round(diff.order_fidelity, 6)
    if name == "full":
        assert diff.is_identical
    # every ablation must still preserve the row universe
    assert not diff.missing and not diff.extra


@pytest.fixture(scope="module")
def noisy_resolution_input():
    corpus = SyntheticCorpus(SyntheticCorpusConfig(size=10, seed=808, author_pool=300))
    names, truth = corpus.noisy_variants(noise_rate=6.0)
    lexicon = {a.surname for a in corpus._authors}
    return names, truth, lexicon


def test_resolution_without_repair(benchmark, noisy_resolution_input):
    names, truth, _ = noisy_resolution_input
    resolver = NameResolver()
    report = benchmark(resolver.resolve, names)
    precision, recall = report.score_against(truth)
    benchmark.extra_info["precision"] = round(precision, 4)
    benchmark.extra_info["recall"] = round(recall, 4)


def test_resolution_with_ocr_repair(benchmark, noisy_resolution_input):
    names, truth, lexicon = noisy_resolution_input
    repairer = OCRRepairer(lexicon)
    resolver = NameResolver()

    def repair_then_resolve():
        repaired = [
            PersonName(
                surname=repairer.repair(n.surname),
                given=n.given,
                suffix=n.suffix,
                honorific=n.honorific,
            )
            for n in names
        ]
        return resolver.resolve(repaired)

    report = benchmark(repair_then_resolve)
    precision, recall = report.score_against(truth)
    benchmark.extra_info["precision"] = round(precision, 4)
    benchmark.extra_info["recall"] = round(recall, 4)
    assert recall >= 0.9  # repair recovers what raw clustering misses

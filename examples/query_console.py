"""A small query console over the reference corpus.

Demonstrates the embedded store + query engine on the paper's own data:
loads the corpus, declares indexes, then either runs the queries given on
the command line or drops into an interactive loop.

Run with::

    python examples/query_console.py 'surnames:"McAteer"' 'year >= 1990 LIMIT 5'
    python examples/query_console.py            # interactive
"""

import sys

from repro.corpus import PUBLICATION_SCHEMA, populate_store
from repro.errors import ReproError
from repro.query import QueryEngine
from repro.storage import IndexKind, RecordStore


def make_engine() -> QueryEngine:
    store = RecordStore(PUBLICATION_SCHEMA)
    count = populate_store(store)
    store.create_index("surnames", IndexKind.HASH)
    store.create_index("year", IndexKind.BTREE)
    store.create_index("volume", IndexKind.BTREE)
    store.create_index("student", IndexKind.HASH)
    print(f"{count} records loaded; indexes on surnames/year/volume/student")
    return QueryEngine(store)


def run(engine: QueryEngine, query: str) -> None:
    try:
        plan = engine.explain(query)
        rows = engine.execute(query)
    except ReproError as exc:
        print(f"  error: {exc}")
        return
    print("  plan: " + " | ".join(plan.splitlines()))
    for row in rows[:20]:
        authors = "; ".join(row["authors"])
        print(f"  {authors:45.45s} {row['title']:60.60s} "
              f"{row['volume']}:{row['page']} ({row['year']})")
    if len(rows) > 20:
        print(f"  ... and {len(rows) - 20} more")
    print(f"  ({len(rows)} rows)")


def main() -> None:
    engine = make_engine()
    queries = sys.argv[1:]
    if queries:
        for query in queries:
            print(f"\n> {query}")
            run(engine, query)
        return
    print("enter queries (blank line to quit), e.g. student = true AND year >= 1990")
    while True:
        try:
            line = input("> ").strip()
        except EOFError:
            break
        if not line:
            break
        run(engine, line)


if __name__ == "__main__":
    main()

"""E1 as a script: regenerate the paper's artifact from the reference corpus.

Loads the curated WVLR records bundled with the library, pushes them through
the full pipeline (store → query → build → paginate → render), and prints
the first and last page of the facsimile plus the fidelity statistics that
EXPERIMENTS.md records.

Run with::

    python examples/rebuild_wvlr_index.py
"""

from repro.core.builder import AuthorIndexBuilder
from repro.core.pagination import PageLayout, paginate
from repro.corpus import (
    PUBLICATION_SCHEMA,
    load_reference_records,
    populate_store,
)
from repro.corpus.wvlr import load_reference_metadata
from repro.core.entry import PublicationRecord
from repro.query import QueryEngine
from repro.storage import IndexKind, RecordStore


def main() -> None:
    # 1. Load the reference corpus into the embedded store, the way a
    #    publisher's pipeline would hold it.
    store = RecordStore(PUBLICATION_SCHEMA)
    count = populate_store(store)
    store.create_index("surnames", IndexKind.HASH)
    store.create_index("volume", IndexKind.BTREE)
    print(f"loaded {count} publication records into the store")

    # 2. Select this volume's index universe.  The artifact is cumulative
    #    (volumes 69-95), so the query selects everything; a single-volume
    #    index would filter, e.g. "volume = 95".
    engine = QueryEngine(store)
    rows = engine.execute("* ORDER BY id")
    records = [PublicationRecord.from_store_dict(r) for r in rows]

    # 3. Build and paginate exactly like the artifact: first page 1365.
    meta = load_reference_metadata()
    index = AuthorIndexBuilder().add_records(records).build()
    layout = PageLayout(
        first_page=meta["first_page"], volume=meta["volume"], year=meta["year"]
    )
    pages = paginate(index, layout)

    # 4. Show the facsimile's first and last page.
    text = index.render("text", layout=layout)
    blocks = text.split("\n\n")
    print()
    print(blocks[0])
    print("\n[...]\n")
    print(blocks[-1])

    # 5. Fidelity statistics (compare with EXPERIMENTS.md E1).
    stats = index.statistics()
    print()
    print("== statistics ==")
    print(stats.summary())
    print(f"pages: {pages[0].number}-{pages[-1].number} "
          f"(artifact: 1365-1443 for the full cumulative index)")

    # Ground-truth ordering spot checks from the printed artifact: the
    # index files "Mc" literally (McMahon before Mehalic, not under Mac).
    headings = [g.heading for g in index.groups()]

    def pos(name: str) -> int:
        return next(i for i, h in enumerate(headings) if h.startswith(name))

    assert pos("McAteer") < pos("McCauley") < pos("McMahon") < pos("Mehalic")
    assert pos("O'Hanlon") < pos("Olson")
    print("ordering spot-checks passed (literal Mc filing, apostrophe folding)")


if __name__ == "__main__":
    main()

"""Produce the complete front-matter bundle of a cumulative-index issue.

The artifact is one of several indexes its issue carries; this example
regenerates the whole bundle from the reference corpus:

1. the per-volume table of contents,
2. the author index (the paper itself),
3. the title index,
4. a KWIC subject index,

plus a BibTeX export of the underlying records — everything a law-review
editor ships to the printer, from one database.

Run with::

    python examples/front_matter_bundle.py [output-dir]
"""

import sys
from pathlib import Path

from repro.core import build_index, build_kwic_index, build_title_index, build_toc
from repro.core.pagination import PageLayout
from repro.corpus import load_reference_records
from repro.corpus.wvlr import load_reference_metadata, load_reference_reporter
from repro.export import format_bibtex


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("front_matter")
    out_dir.mkdir(parents=True, exist_ok=True)

    records = load_reference_records()
    meta = load_reference_metadata()
    reporter = load_reference_reporter()
    print(f"{len(records)} records from {reporter.name}")

    # 1. Table of contents (volume by volume, page order).
    toc = build_toc(records)
    (out_dir / "contents.txt").write_text(toc.render_text(), encoding="utf-8")
    print(f"contents.txt       {len(toc)} volumes")

    # 2. Author index — the artifact, with its page furniture.
    author_index = build_index(records)
    layout = PageLayout(
        first_page=meta["first_page"], volume=meta["volume"], year=meta["year"]
    )
    (out_dir / "author_index.txt").write_text(
        author_index.render("text", layout=layout), encoding="utf-8"
    )
    (out_dir / "author_index.html").write_text(
        author_index.render("html", title="Author Index"), encoding="utf-8"
    )
    print(f"author_index.*     {len(author_index)} rows, "
          f"{len(author_index.groups())} headings")

    # 3. Title index (leading articles skipped in filing).
    title_index = build_title_index(records)
    (out_dir / "title_index.txt").write_text(
        title_index.render_text(), encoding="utf-8"
    )
    print(f"title_index.txt    {len(title_index)} titles, "
          f"letters {''.join(title_index.letters())}")

    # 4. KWIC subject index; suppress this corpus's boilerplate words.
    kwic = build_kwic_index(
        records,
        min_group_size=2,
        extra_stopwords={"west", "virginia", "law", "act", "review"},
    )
    (out_dir / "subject_index.txt").write_text(kwic.render_text(), encoding="utf-8")
    top = sorted(kwic.groups, key=lambda g: -len(g.entries))[:5]
    print(f"subject_index.txt  {len(kwic.keywords())} headings; busiest: "
          + ", ".join(f"{g.heading}({len(g.entries)})" for g in top))

    # 5. BibTeX export of the records themselves.
    (out_dir / "corpus.bib").write_text(
        format_bibtex(records, journal=reporter.abbreviation), encoding="utf-8"
    )
    print("corpus.bib         BibTeX export")

    print(f"\nbundle written to {out_dir}/")


if __name__ == "__main__":
    main()

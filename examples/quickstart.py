"""Quickstart: build and render an author index in ~40 lines.

Run with::

    python examples/quickstart.py
"""

from repro import PublicationRecord, build_index

# 1. Describe publications.  Author strings use the inverted index form;
#    a trailing "*" marks student material, suffixes and honorifics are
#    understood (including common OCR damage like "1I" for "II").
records = [
    PublicationRecord.create(
        1,
        "Habeas Corpus in West Virginia",
        ["Fox, Fred L., 1I*"],
        "69:293 (1967)",
    ),
    PublicationRecord.create(
        2,
        "A Miner's Bill of Rights",
        ["Galloway, L. Thomas", "McAteer, J. Davitt", "Webb, Richard L."],
        "80:397 (1978)",
    ),
    PublicationRecord.create(
        3,
        "The Delicate Balance of Freedom",
        ["Maxwell, Robert E."],
        "70:155 (1968)",
    ),
    PublicationRecord.create(
        4,
        "Accidents: Causation and Responsibility in Law, a Focus on Coal Mining",
        ["McAteer, J. Davitt"],
        "83:921 (1981)",
    ),
]

# 2. Build: explodes co-authored records (one row per author), fixes OCR'd
#    suffixes, and collates under the printed artifact's rules — note that
#    McAteer files *after* Maxwell, and the student row keeps its asterisk.
index = build_index(records)

# 3. Render.  Formats: text (paginated facsimile), markdown, html, latex, json.
print(index.render("text", paginated=False))

# 4. Inspect.
stats = index.statistics()
print(f"{stats.entry_count} entries under {stats.author_count} headings; "
      f"{stats.student_share:.0%} student material")
for group in index.groups():
    if len(group.entries) > 1:
        print(f"multi-article author: {group.heading} ({len(group.entries)} pieces)")

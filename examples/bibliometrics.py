"""Bibliometrics over the artifact's corpus: who wrote, with whom, about what.

Runs the :mod:`repro.analysis` toolkit over the reference corpus and prints
the journal's shape: productivity concentration, the collaboration graph,
and topic trends across the 1966–1993 span the index covers.

Run with::

    python examples/bibliometrics.py
"""

from repro.analysis import (
    collaboration_stats,
    emerging_keywords,
    gini_coefficient,
    head_share,
    keyword_trend,
    productivity,
    top_keywords,
)
from repro.corpus import load_reference_records

BOILERPLATE = {"west", "virginia", "law", "review", "act", "new"}


def main() -> None:
    records = load_reference_records()
    years = [r.citation.year for r in records]
    print(f"{len(records)} records, {min(years)}-{max(years)}\n")

    # 1. Productivity: the heavy tail.
    table = productivity(records)
    counts = [p.total for p in table]
    print("== productivity ==")
    for p in table[:8]:
        print(f"  {p.total:2d} pieces  {p.author.inverted():28s} "
              f"({p.first_year}-{p.last_year})")
    print(f"  authors: {len(table)}; Gini: {gini_coefficient(counts):.3f}; "
          f"top-10 share: {head_share(counts, 10):.1%}\n")

    # 2. Collaboration.
    stats = collaboration_stats(records)
    print("== collaboration ==")
    print(f"  {stats.authors} authors, {stats.collaborations} collaborating pairs, "
          f"{stats.solo_authors} solo")
    print(f"  {stats.components} collaboration clusters, "
          f"largest has {stats.largest_component} authors")
    if stats.most_collaborative:
        label, degree = stats.most_collaborative
        print(f"  most collaborative: {label} ({degree} distinct co-authors)")
    if stats.strongest_pair:
        a, b, weight = stats.strongest_pair
        print(f"  strongest pair: {a} + {b} ({weight} joint pieces)\n")

    # 3. Topics.
    print("== topics ==")
    print("  all-time top keywords:",
          ", ".join(f"{w}({c})" for w, c in top_keywords(records, k=8, stopwords=BOILERPLATE)))
    coal = keyword_trend(records, "coal")
    eighties = coal.in_span(1980, 1989)
    print(f"  'coal' appears in {coal.total} titles "
          f"({eighties} of them in the 1980s)")
    print("  emerging after 1985:")
    for word, early, late in emerging_keywords(
        records, split_year=1985, k=6, stopwords=BOILERPLATE
    ):
        print(f"    {word:16s} {early:2d} -> {late:2d}")


if __name__ == "__main__":
    main()

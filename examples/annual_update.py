"""The annual editorial workflow: fold a new volume into the cumulative index.

Each year the cumulative index absorbs one more volume.  This example walks
the whole editorial loop using the high-level API:

1. open the repository with the existing cumulative corpus;
2. ingest the new volume's raw (OCR'd, two-column) index text;
3. merge it in (conflict-checked) and update the index incrementally;
4. lint the result and show what the new volume changed.

Run with::

    python examples/annual_update.py
"""

from repro.core import build_index, lint_index
from repro.core.incremental import IncrementalIndexer
from repro.corpus import (
    load_reference_records,
    merge_corpora,
    parse_index_text,
    renumber,
)
from repro.repository import PublicationRepository
from repro.textproc.columns import split_columns

# The new volume arrives as a scanned two-column page.
NEW_VOLUME_SCAN = """
Adams, Nora Q. Coalbed Methane After     Quick, Ruth E.* Takings and the New
Unlocking the Fire 96:101 (1993)         Regulatory Compact 96:201 (1993)
Brennan, Luis F. The UCC in the          Reyes, Omar T. Black Lung Review
Nineties: Article 2 Revisited            Boards: A Practitioner's View
96:1 (1993)                              96:245 (1993)
Chen, Grace H.* Water Quality            Sutton, Vera L. Mine Subsidence and
Standards in the Coal Fields             the Insurance Gap 96:310 (1993)
96:155 (1993)
"""


def main() -> None:
    # 1. The cumulative corpus, loaded into a repository.
    repo = PublicationRepository()
    repo.add_all(load_reference_records())
    print(f"cumulative corpus: {repo.count()} records, "
          f"volumes up to {max(r.citation.volume for r in repo.all())}")

    # 2. Ingest the scan: split columns, parse rows, renumber into a free
    #    id range.
    split = split_columns(NEW_VOLUME_SCAN)
    print(f"scan: two-column={split.is_two_column}")
    report = parse_index_text(split.merged())
    print(f"ingested {report.record_count} rows "
          f"({len(report.warnings)} parser warnings)")
    new_records = renumber(report.records, start=repo.count() + 1)

    # 3. Merge (id conflicts would raise) and update incrementally.
    base = list(repo.all())
    merged = merge_corpora(base, new_records)
    print(merged.summary())

    indexer = IncrementalIndexer()
    indexer.add_all(base)
    rows_before = len(indexer)
    for record in new_records:
        repo.add(record)
        indexer.add(record)
    print(f"index rows: {rows_before} -> {len(indexer)}")

    # The incremental result is identical to a full rebuild:
    assert [e.row_key() for e in indexer.snapshot()] == [
        e.row_key() for e in build_index(merged.records)
    ]
    print("incremental snapshot == full rebuild  ✓")

    # 4. Lint and show the volume-96 slice of the index.
    issues = lint_index(indexer.snapshot())
    print(f"lint: {len(issues)} issues "
          f"({sum(1 for i in issues if i.code == 'suspect-duplicate-heading')} "
          "known OCR splits in the historical corpus)")

    print("\nnew volume in the table of contents:")
    toc = repo.table_of_contents()
    volume96 = toc.volume(96)
    for record in volume96.records:
        authors = "; ".join(a.inverted() for a in record.authors)
        print(f"  {record.citation.page:>4}  {record.title}  — {authors}")


if __name__ == "__main__":
    main()

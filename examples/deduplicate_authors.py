"""Entity resolution over OCR-noisy author names (the E5 scenario).

The scanned artifact spells several authors two ways — *Herdon/Hemdon*,
*Johnson/Johson*, *Curnutte/Cumutte*, *Crittenden/Crittendon* — so a naive
index prints duplicate headings.  This example shows both halves of the fix:

1. resolve the reference corpus's real OCR variants into single headings;
2. measure precision/recall on a synthetic corpus with planted noise.

Run with::

    python examples/deduplicate_authors.py
"""

from repro.core.builder import AuthorIndexBuilder
from repro.corpus import load_reference_records
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.names import NameResolver


def resolve_reference_corpus() -> None:
    records = load_reference_records()

    plain = AuthorIndexBuilder().add_records(records).build()
    resolved = (
        AuthorIndexBuilder(resolve_variants=True).add_records(records).build()
    )

    plain_headings = {g.heading for g in plain.groups()}
    resolved_headings = {g.heading for g in resolved.groups()}
    merged = sorted(plain_headings - resolved_headings)

    print("== reference corpus (real OCR noise) ==")
    print(f"headings without resolution: {len(plain.groups())}")
    print(f"headings with resolution:    {len(resolved.groups())}")
    print("variant spellings absorbed into canonical headings:")
    for heading in merged:
        print(f"  - {heading}")
    print()


def score_synthetic_noise() -> None:
    print("== synthetic corpus (planted noise, known truth) ==")
    corpus = SyntheticCorpus(SyntheticCorpusConfig(size=300, seed=11, author_pool=60))
    for noise_rate in (1.0, 3.0, 6.0):
        names, truth = corpus.noisy_variants(noise_rate=noise_rate)
        report = NameResolver(threshold=0.90).resolve(names)
        precision, recall = report.score_against(truth)
        print(
            f"noise={noise_rate:>4.1f}/100 chars  "
            f"variants={len(names):4d}  clusters={len(report.clusters):4d}  "
            f"precision={precision:.3f}  recall={recall:.3f}"
        )
    print()
    print("Higher noise leaves more variants unmerged (recall drops) while")
    print("precision stays near 1.0 — the resolver is tuned conservative, the")
    print("right trade-off for an index where a wrong merge is worse than a")
    print("duplicate heading.")


if __name__ == "__main__":
    resolve_reference_corpus()
    score_synthetic_noise()

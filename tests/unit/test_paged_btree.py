"""Unit tests for repro.storage.paged_btree.

The tree is exercised against a plain ``dict`` model: after any sequence
of inserts, updates, and deletes, ``items()`` must equal the model's
sorted items — across splits, overflow chains, free-list reuse, and a
close/reopen cycle.  ``verify()`` (the deep structural check fsck runs)
must pass after every phase.
"""

import random

import pytest

from repro.errors import StorageError
from repro.storage.paged_btree import MAX_KEY_BYTES, PagedBTree
from repro.storage.pages import OVERFLOW_CAPACITY


def _model_check(tree: PagedBTree, model: dict) -> None:
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    tree.verify()


class TestBasics:
    def test_empty_tree(self, tmp_path):
        with PagedBTree(tmp_path / "t.pages", create=True) as tree:
            assert len(tree) == 0
            assert tree.get(1) is None
            assert tree.get(1, b"dflt") == b"dflt"
            assert 1 not in tree
            assert list(tree.items()) == []
            tree.verify()

    def test_insert_get_update(self, tmp_path):
        with PagedBTree(tmp_path / "t.pages", create=True) as tree:
            tree.insert(2, b"two")
            tree.insert(1, b"one")
            assert tree.get(1) == b"one"
            assert len(tree) == 2
            tree.insert(1, b"uno")  # update in place
            assert tree.get(1) == b"uno"
            assert len(tree) == 2
            assert list(tree.keys()) == [1, 2]

    def test_delete(self, tmp_path):
        with PagedBTree(tmp_path / "t.pages", create=True) as tree:
            tree.insert(1, b"a")
            tree.delete(1)
            assert 1 not in tree
            assert len(tree) == 0
            with pytest.raises(KeyError):
                tree.delete(1)

    def test_oversized_key_rejected(self, tmp_path):
        with PagedBTree(tmp_path / "t.pages", create=True) as tree:
            with pytest.raises(StorageError):
                tree.insert("k" * (MAX_KEY_BYTES + 10), b"v")

    def test_mixed_key_types_round_trip(self, tmp_path):
        path = tmp_path / "t.pages"
        with PagedBTree(path, create=True) as tree:
            tree.insert(("a", 1), b"tuple")
            tree.insert(("a", 2), b"tuple2")
            assert tree.get(("a", 1)) == b"tuple"
            assert [k for k, _ in tree.range_items(("a", 1), ("a", 2))] == [
                ("a", 1),
                ("a", 2),
            ]


class TestSplitsAndScale:
    def test_random_ops_match_dict_model(self, tmp_path):
        rng = random.Random(8)
        path = tmp_path / "t.pages"
        model: dict = {}
        with PagedBTree(path, create=True, pool_pages=16) as tree:
            for _ in range(3000):
                key = rng.randrange(600)
                op = rng.random()
                if op < 0.65 or key not in model:
                    value = f"value-{key}-{rng.randrange(10)}".encode() * rng.randrange(
                        1, 8
                    )
                    tree.insert(key, value)
                    model[key] = value
                else:
                    tree.delete(key)
                    del model[key]
            _model_check(tree, model)
            stats = tree.verify()
            assert stats["depth"] >= 2  # the workload forced splits
        # survives close/reopen byte-identically
        with PagedBTree(path, pool_pages=16) as tree:
            _model_check(tree, model)

    def test_range_items(self, tmp_path):
        with PagedBTree(tmp_path / "t.pages", create=True) as tree:
            for i in range(200):
                tree.insert(i, str(i).encode())
            inclusive = [k for k, _ in tree.range_items(10, 20)]
            assert inclusive == list(range(10, 21))
            exclusive = [k for k, _ in tree.range_items(10, 20, inclusive=False)]
            assert exclusive == list(range(10, 20))
            assert [k for k, _ in tree.range_items(150, None)] == list(range(150, 200))
            assert [k for k, _ in tree.range_items(None, 5)] == list(range(6))


class TestOverflow:
    def test_large_values_spill_and_round_trip(self, tmp_path):
        path = tmp_path / "t.pages"
        big = bytes(range(256)) * 64  # 16 KiB, several overflow pages
        with PagedBTree(path, create=True) as tree:
            tree.insert("big", big)
            tree.insert("small", b"s")
            assert tree.get("big") == big
            stats = tree.verify()
            assert stats["overflow_pages"] >= 4
        with PagedBTree(path) as tree:
            assert tree.get("big") == big

    def test_overflow_chain_freed_on_delete(self, tmp_path):
        with PagedBTree(tmp_path / "t.pages", create=True) as tree:
            tree.insert("big", b"x" * (OVERFLOW_CAPACITY * 3))
            occupied = tree.verify()["overflow_pages"]
            assert occupied >= 3
            tree.delete("big")
            stats = tree.verify()
            assert stats["overflow_pages"] == 0
            assert stats["free_pages"] >= occupied

    def test_update_replaces_overflow_chain(self, tmp_path):
        with PagedBTree(tmp_path / "t.pages", create=True) as tree:
            tree.insert("k", b"a" * (OVERFLOW_CAPACITY * 2))
            tree.insert("k", b"tiny")
            assert tree.get("k") == b"tiny"
            stats = tree.verify()
            assert stats["overflow_pages"] == 0
            assert stats["free_pages"] >= 2  # the old chain was reclaimed


class TestFreeList:
    def test_deleted_pages_are_reused(self, tmp_path):
        with PagedBTree(tmp_path / "t.pages", create=True, pool_pages=16) as tree:
            for i in range(2000):
                tree.insert(i, f"v{i}".encode() * 4)
            for i in range(1500):
                tree.delete(i)
            tree.verify()
            before = tree._pager.meta.page_count
            for i in range(1000):
                tree.insert(i, f"w{i}".encode() * 4)
            grown = tree._pager.meta.page_count - before
            assert grown <= 5  # refill consumed the free list, not the file
            tree.verify()


class TestBulkBuild:
    def test_bulk_build_matches_inserts(self, tmp_path):
        items = [(i, f"value-{i}".encode()) for i in range(5000)]
        tree = PagedBTree.bulk_build(tmp_path / "bulk.pages", iter(items))
        try:
            assert len(tree) == 5000
            assert list(tree.items()) == items
            stats = tree.verify()
            assert stats["depth"] >= 2
            assert stats["free_pages"] == 0  # a fresh build wastes nothing
        finally:
            tree.close()

    def test_bulk_build_with_overflow_values(self, tmp_path):
        items = [(i, bytes([i % 256]) * 5000) for i in range(50)]
        tree = PagedBTree.bulk_build(tmp_path / "bulk.pages", iter(items))
        try:
            assert tree.get(7) == b"\x07" * 5000
            assert tree.verify()["overflow_pages"] >= 50
        finally:
            tree.close()

    def test_bulk_build_rejects_unsorted(self, tmp_path):
        with pytest.raises(StorageError):
            PagedBTree.bulk_build(
                tmp_path / "bulk.pages", iter([(2, b"b"), (1, b"a")])
            )

    def test_bulk_build_rejects_duplicates(self, tmp_path):
        with pytest.raises(StorageError):
            PagedBTree.bulk_build(
                tmp_path / "bulk.pages", iter([(1, b"a"), (1, b"b")])
            )

    def test_bulk_build_empty(self, tmp_path):
        tree = PagedBTree.bulk_build(tmp_path / "bulk.pages", iter([]))
        try:
            assert len(tree) == 0
            assert list(tree.items()) == []
            tree.verify()
        finally:
            tree.close()


class TestLifecycle:
    def test_read_only_open_never_writes(self, tmp_path):
        path = tmp_path / "t.pages"
        with PagedBTree(path, create=True) as tree:
            for i in range(100):
                tree.insert(i, b"v")
        published = path.read_bytes()
        with PagedBTree(path) as tree:
            assert tree.get(50) == b"v"
            list(tree.items())
            tree.verify()
        assert path.read_bytes() == published  # byte-for-byte untouched

    def test_data_crc_survives_reopen(self, tmp_path):
        path = tmp_path / "t.pages"
        with PagedBTree(path, create=True) as tree:
            tree.set_data_crc(0xCAFEBABE)
        with PagedBTree(path) as tree:
            assert tree.data_crc == 0xCAFEBABE

    def test_abandon_discards_unflushed_writes(self, tmp_path):
        path = tmp_path / "t.pages"
        with PagedBTree(path, create=True) as tree:
            tree.insert(1, b"committed")
        tree = PagedBTree(path)
        tree.insert(2, b"doomed")
        tree.abandon()
        with PagedBTree(path) as tree:
            assert tree.get(1) == b"committed"
            assert tree.get(2) is None

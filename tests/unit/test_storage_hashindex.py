"""Unit tests for repro.storage.hashindex."""

from repro.storage.hashindex import HashIndex


class TestHashIndex:
    def test_empty(self):
        idx = HashIndex()
        assert len(idx) == 0
        assert idx.search("x") == []
        assert "x" not in idx

    def test_insert_search(self):
        idx = HashIndex()
        idx.insert("smith", 1)
        idx.insert("smith", 2)
        assert idx.search("smith") == [1, 2]
        assert len(idx) == 2
        assert idx.distinct_keys == 1

    def test_search_returns_copy(self):
        idx = HashIndex()
        idx.insert("a", 1)
        result = idx.search("a")
        result.append(99)
        assert idx.search("a") == [1]

    def test_remove_value(self):
        idx = HashIndex()
        idx.insert("a", 1)
        idx.insert("a", 2)
        assert idx.remove("a", 1) is True
        assert idx.search("a") == [2]
        assert len(idx) == 1

    def test_remove_last_value_drops_key(self):
        idx = HashIndex()
        idx.insert("a", 1)
        idx.remove("a", 1)
        assert "a" not in idx
        assert idx.distinct_keys == 0

    def test_remove_whole_key(self):
        idx = HashIndex()
        idx.insert("a", 1)
        idx.insert("a", 2)
        assert idx.remove("a") is True
        assert len(idx) == 0

    def test_remove_missing(self):
        idx = HashIndex()
        assert idx.remove("a") is False
        idx.insert("a", 1)
        assert idx.remove("a", 42) is False

    def test_items_and_keys(self):
        idx = HashIndex()
        idx.insert("a", 1)
        idx.insert("b", 2)
        idx.insert("a", 3)
        assert sorted(idx.items()) == [("a", 1), ("a", 3), ("b", 2)]
        assert sorted(idx.keys()) == ["a", "b"]

    def test_no_range_support_flag(self):
        assert HashIndex.supports_range is False


class TestMutationCounters:
    def test_insert_and_remove_counters(self):
        from repro.obs import metrics

        metrics.reset()
        idx = HashIndex()
        idx.insert("a", 1)
        idx.insert("a", 2)
        idx.insert("b", 3)
        idx.remove("a", 1)       # one entry
        idx.remove("b")          # whole key: one entry
        idx.remove("missing")    # miss: uncounted
        counters = metrics.snapshot()["counters"]
        assert counters["storage.hash.insert.count"] == 3
        assert counters["storage.hash.remove.count"] == 2

    def test_whole_key_removal_counts_every_entry(self):
        from repro.obs import metrics

        metrics.reset()
        idx = HashIndex()
        for value in range(5):
            idx.insert("a", value)
        idx.remove("a")
        assert metrics.snapshot()["counters"]["storage.hash.remove.count"] == 5


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self):
        pairs = [(f"k{i % 4}", i) for i in range(20)]
        bulk = HashIndex.bulk_load(pairs)
        serial = HashIndex()
        for key, value in pairs:
            serial.insert(key, value)
        assert sorted(bulk.items()) == sorted(serial.items())
        assert len(bulk) == len(serial)
        assert bulk.distinct_keys == serial.distinct_keys

    def test_bulk_load_counts_once(self):
        from repro.obs import metrics

        metrics.reset()
        HashIndex.bulk_load([("a", 1), ("b", 2), ("a", 3)])
        counters = metrics.snapshot()["counters"]
        assert counters["storage.hash.bulk_loads"] == 1
        assert counters["storage.hash.insert.count"] == 3

    def test_insert_many_returns_count(self):
        idx = HashIndex()
        assert idx.insert_many([("a", 1), ("b", 2)]) == 2
        assert idx.insert_many([]) == 0
        assert len(idx) == 2

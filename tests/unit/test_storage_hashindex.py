"""Unit tests for repro.storage.hashindex."""

from repro.storage.hashindex import HashIndex


class TestHashIndex:
    def test_empty(self):
        idx = HashIndex()
        assert len(idx) == 0
        assert idx.search("x") == []
        assert "x" not in idx

    def test_insert_search(self):
        idx = HashIndex()
        idx.insert("smith", 1)
        idx.insert("smith", 2)
        assert idx.search("smith") == [1, 2]
        assert len(idx) == 2
        assert idx.distinct_keys == 1

    def test_search_returns_copy(self):
        idx = HashIndex()
        idx.insert("a", 1)
        result = idx.search("a")
        result.append(99)
        assert idx.search("a") == [1]

    def test_remove_value(self):
        idx = HashIndex()
        idx.insert("a", 1)
        idx.insert("a", 2)
        assert idx.remove("a", 1) is True
        assert idx.search("a") == [2]
        assert len(idx) == 1

    def test_remove_last_value_drops_key(self):
        idx = HashIndex()
        idx.insert("a", 1)
        idx.remove("a", 1)
        assert "a" not in idx
        assert idx.distinct_keys == 0

    def test_remove_whole_key(self):
        idx = HashIndex()
        idx.insert("a", 1)
        idx.insert("a", 2)
        assert idx.remove("a") is True
        assert len(idx) == 0

    def test_remove_missing(self):
        idx = HashIndex()
        assert idx.remove("a") is False
        idx.insert("a", 1)
        assert idx.remove("a", 42) is False

    def test_items_and_keys(self):
        idx = HashIndex()
        idx.insert("a", 1)
        idx.insert("b", 2)
        idx.insert("a", 3)
        assert sorted(idx.items()) == [("a", 1), ("a", 3), ("b", 2)]
        assert sorted(idx.keys()) == ["a", "b"]

    def test_no_range_support_flag(self):
        assert HashIndex.supports_range is False

"""Slow-query log: entry shape, ring, JSONL persistence, rotation."""

import json

import pytest

from repro.obs import logging as obs_logging
from repro.obs.slowlog import SlowQueryLog, read_slow_log


def _record(log: SlowQueryLog, seconds: float = 0.25, **overrides):
    kwargs = dict(
        query="year >= 1900",
        plan="INDEX RANGE (btree) year in [1900, +inf)",
        plan_cached=False,
        rows=42,
        seconds=seconds,
    )
    kwargs.update(overrides)
    return log.record(**kwargs)


class TestEntryShape:
    def test_entry_fields(self):
        log = SlowQueryLog()
        entry = _record(log, plan_cached=True)
        assert entry["query"] == "year >= 1900"
        assert entry["plan"].startswith("INDEX RANGE")
        assert entry["plan_cached"] is True
        assert entry["rows"] == 42
        assert entry["seconds"] == 0.25
        assert entry["ts"].endswith("Z")
        assert "profile" not in entry
        assert "profile_reexecuted" not in entry

    def test_profile_attachment_via_to_dict(self):
        class FakeProfile:
            def to_dict(self):
                return {"op": "sort", "seconds": 0.2}

        log = SlowQueryLog()
        entry = _record(log, profile=FakeProfile(), reexecuted=True)
        assert entry["profile"] == {"op": "sort", "seconds": 0.2}
        assert entry["profile_reexecuted"] is True

    def test_trace_id_from_context_when_not_given(self):
        log = SlowQueryLog()
        with obs_logging.trace() as tid:
            entry = _record(log)
        assert entry["trace_id"] == tid

    def test_explicit_trace_id_wins(self):
        log = SlowQueryLog()
        entry = _record(log, trace_id="cafebabe00000001")
        assert entry["trace_id"] == "cafebabe00000001"

    def test_record_emits_warn_event(self):
        obs_logging.reset()
        try:
            log = SlowQueryLog(threshold_s=0.1)
            _record(log)
            (event,) = obs_logging.tail(event="query.slow")
            assert event["level"] == "warn"
            assert event["seconds"] == 0.25
            assert event["threshold_s"] == 0.1
        finally:
            obs_logging.reset()


class TestRing:
    def test_ring_bounded_oldest_first(self):
        log = SlowQueryLog(capacity=3)
        for i in range(5):
            _record(log, query=f"q{i}")
        assert [e["query"] for e in log.entries()] == ["q2", "q3", "q4"]

    def test_reset_clears_ring_only(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path)
        _record(log)
        log.reset()
        assert log.entries() == []
        assert len(read_slow_log(path)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_s=-1)
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path)
        _record(log, query="a")
        _record(log, query="b")
        entries = read_slow_log(path)
        assert [e["query"] for e in entries] == ["a", "b"]
        # Every line is standalone JSON (tail-able).
        lines = path.read_text(encoding="utf-8").splitlines()
        assert all(json.loads(line) for line in lines)

    def test_parent_directory_created(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "slow.jsonl"
        log = SlowQueryLog(path)
        _record(log)
        assert path.exists()


class TestRotation:
    def test_rotation_shifts_and_caps(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        # Each entry is ~200 bytes; force a rotation every ~2 entries.
        log = SlowQueryLog(path, max_bytes=400, keep=2)
        for i in range(12):
            _record(log, query=f"query-number-{i:04d}")
        assert path.exists()
        assert log.rotated_path(1).exists()
        assert log.rotated_path(2).exists()
        assert not log.rotated_path(3).exists()

    def test_rotation_preserves_newest_history(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path, max_bytes=400, keep=3)
        for i in range(12):
            _record(log, query=f"query-number-{i:04d}")
        chain = []
        for candidate in (log.rotated_path(3), log.rotated_path(2),
                          log.rotated_path(1), path):
            if candidate.exists():
                chain.extend(read_slow_log(candidate))
        queries = [e["query"] for e in chain]
        # The retained chain is a contiguous, ordered suffix of the input.
        expected = [f"query-number-{i:04d}" for i in range(12)]
        assert queries == expected[len(expected) - len(queries):]
        assert queries[-1] == "query-number-0011"

    def test_no_rotation_below_threshold(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path, max_bytes=1024 * 1024)
        for i in range(10):
            _record(log, query=f"q{i}")
        assert not log.rotated_path(1).exists()
        assert len(read_slow_log(path)) == 10

"""Unit tests for repro.storage.wal — framing, CRC, torn-write semantics."""

import pytest

from repro.errors import CorruptLogError
from repro.storage.wal import WriteAheadLog


@pytest.fixture()
def wal_path(tmp_path):
    return tmp_path / "test.wal"


class TestAppendReplay:
    def test_empty_log(self, wal_path):
        assert WriteAheadLog.replay_path(wal_path) == []

    def test_roundtrip_single(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"op": "put", "key": 1})
        entries = WriteAheadLog.replay_path(wal_path)
        assert [e.payload for e in entries] == [{"op": "put", "key": 1}]

    def test_roundtrip_many(self, wal_path):
        payloads = [{"op": "put", "key": i, "v": f"x{i}"} for i in range(50)]
        with WriteAheadLog(wal_path) as wal:
            for p in payloads:
                wal.append(p)
        assert [e.payload for e in WriteAheadLog.replay_path(wal_path)] == payloads

    def test_append_many_batched(self, wal_path):
        payloads = [{"i": i} for i in range(10)]
        with WriteAheadLog(wal_path) as wal:
            wal.append_many(payloads)
        assert [e.payload for e in WriteAheadLog.replay_path(wal_path)] == payloads

    def test_unicode_payload(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"name": "Müller-Lüdenscheidt, José"})
        [entry] = WriteAheadLog.replay_path(wal_path)
        assert entry.payload["name"] == "Müller-Lüdenscheidt, José"

    def test_offsets_monotone(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            offsets = [wal.append({"i": i}) for i in range(5)]
        assert offsets == sorted(offsets)
        replayed = WriteAheadLog.replay_path(wal_path)
        assert [e.offset for e in replayed] == offsets

    def test_reopen_appends(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"i": 1})
        with WriteAheadLog(wal_path) as wal:
            wal.append({"i": 2})
        assert len(WriteAheadLog.replay_path(wal_path)) == 2

    def test_replay_on_live_log(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"i": 1})
            assert [e.payload for e in wal.replay()] == [{"i": 1}]

    def test_truncate(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"i": 1})
            wal.truncate()
            wal.append({"i": 2})
        assert [e.payload["i"] for e in WriteAheadLog.replay_path(wal_path)] == [2]

    def test_size_bytes(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            assert wal.size_bytes == 0
            wal.append({"i": 1})
            assert wal.size_bytes > 0

    def test_entries_written_counter(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"i": 1})
            wal.append_many([{"i": 2}, {"i": 3}])
            assert wal.entries_written == 3

    def test_sync_flag_roundtrip(self, wal_path):
        with WriteAheadLog(wal_path, sync=True) as wal:
            wal.append({"i": 1})
            wal.append({"i": 2}, sync=False)
        assert len(WriteAheadLog.replay_path(wal_path)) == 2

    def test_closed_log_rejects_writes(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.close()
        with pytest.raises(CorruptLogError):
            wal.append({"i": 1})


class TestCorruption:
    def _write(self, wal_path, n=3):
        with WriteAheadLog(wal_path) as wal:
            for i in range(n):
                wal.append({"i": i})

    def test_torn_tail_dropped(self, wal_path):
        self._write(wal_path)
        raw = wal_path.read_bytes()
        # Simulate a crash mid-write: half of a new entry, no newline.
        wal_path.write_bytes(raw + b"W1 deadbeef 42 {\"i\":")
        entries = WriteAheadLog.replay_path(wal_path)
        assert [e.payload["i"] for e in entries] == [0, 1, 2]

    def test_truncated_final_entry_dropped(self, wal_path):
        self._write(wal_path)
        raw = wal_path.read_bytes()
        wal_path.write_bytes(raw[:-5])  # cut into the last entry + newline
        entries = WriteAheadLog.replay_path(wal_path)
        assert [e.payload["i"] for e in entries] == [0, 1]

    def test_mid_log_corruption_raises(self, wal_path):
        self._write(wal_path)
        raw = bytearray(wal_path.read_bytes())
        # Flip a byte inside the first entry's JSON body.
        first_newline = raw.index(b"\n")
        raw[first_newline - 2] ^= 0xFF
        wal_path.write_bytes(bytes(raw))
        with pytest.raises(CorruptLogError) as excinfo:
            WriteAheadLog.replay_path(wal_path)
        assert excinfo.value.offset == 0

    def test_bad_magic_raises(self, wal_path):
        wal_path.write_bytes(b"XX 00000000 2 {}\n")
        with pytest.raises(CorruptLogError):
            WriteAheadLog.replay_path(wal_path)

    def test_length_mismatch_raises(self, wal_path):
        import zlib
        body = b'{"i":1}'
        crc = zlib.crc32(body) & 0xFFFFFFFF
        wal_path.write_bytes(f"W1 {crc:08x} 99 ".encode() + body + b"\n")
        with pytest.raises(CorruptLogError):
            WriteAheadLog.replay_path(wal_path)

    def test_non_object_payload_raises(self, wal_path):
        import zlib
        body = b"[1,2]"
        crc = zlib.crc32(body) & 0xFFFFFFFF
        wal_path.write_bytes(f"W1 {crc:08x} {len(body)} ".encode() + body + b"\n")
        with pytest.raises(CorruptLogError):
            WriteAheadLog.replay_path(wal_path)

    def test_garbage_header_raises(self, wal_path):
        wal_path.write_bytes(b"W1 zz zz {}\n")
        with pytest.raises(CorruptLogError):
            WriteAheadLog.replay_path(wal_path)

    def test_corrupt_last_complete_line_raises(self, wal_path):
        # Damage inside a newline-terminated final entry is NOT a torn
        # write — the entry was acknowledged, so data was lost.
        self._write(wal_path, n=2)
        raw = bytearray(wal_path.read_bytes())
        raw[-3] ^= 0xFF  # inside final entry body, newline intact
        wal_path.write_bytes(bytes(raw))
        with pytest.raises(CorruptLogError):
            WriteAheadLog.replay_path(wal_path)


class TestSegmentation:
    """Rotation, sealed-segment naming, chain replay, seal_floor."""

    def test_rotate_seals_and_replays_in_order(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"seq": 1})
            assert wal.rotate() == 1
            wal.append({"seq": 2})
            wal.append({"seq": 3})
            assert wal.rotate() == 2
            wal.append({"seq": 4})
        sealed = [p.name for _, p in
                  __import__("repro.storage.wal", fromlist=["sealed_segment_paths"])
                  .sealed_segment_paths(wal_path)]
        assert sealed == ["test.wal.000001", "test.wal.000002"]
        entries = WriteAheadLog.replay_path(wal_path)
        assert [e.payload["seq"] for e in entries] == [1, 2, 3, 4]

    def test_empty_rotation_creates_no_segment(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            assert wal.rotate() is None
            wal.append({"seq": 1})
            assert wal.rotate() == 1
            assert wal.rotate() is None  # freshly rotated active is empty
        assert not wal_path.with_name("test.wal.000002").exists()

    def test_reopen_continues_numbering(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"seq": 1})
            wal.rotate()
        with WriteAheadLog(wal_path) as wal:
            assert wal.highest_seal == 1
            wal.append({"seq": 2})
            assert wal.rotate() == 2

    def test_seal_floor_prevents_number_reuse(self, wal_path):
        # After a checkpoint deletes segments 1..N, numbering must still
        # continue above N, or new segments would look stale.
        with WriteAheadLog(wal_path, seal_floor=5) as wal:
            wal.append({"seq": 1})
            assert wal.rotate() == 6

    def test_chain_skips_stale_segments(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"seq": 1})
            wal.rotate()
            wal.append({"seq": 2})
            wal.rotate()
            wal.append({"seq": 3})
        chain = WriteAheadLog.scan_chain(wal_path, min_seal=1)
        assert [p.name for p in chain.stale] == ["test.wal.000001"]
        assert [e.payload["seq"] for e in chain.entries()] == [2, 3]

    def test_missing_segment_raises_on_strict_scan(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            for seq in range(3):
                wal.append({"seq": seq})
                wal.rotate()
        wal_path.with_name("test.wal.000002").unlink()
        with pytest.raises(CorruptLogError, match="missing WAL segment"):
            WriteAheadLog.replay_path(wal_path)

    def test_damage_in_sealed_segment_raises(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"seq": 1})
            wal.rotate()
            wal.append({"seq": 2})
        sealed = wal_path.with_name("test.wal.000001")
        raw = bytearray(sealed.read_bytes())
        raw[-3] ^= 0xFF
        sealed.write_bytes(bytes(raw))
        with pytest.raises(CorruptLogError, match="sealed WAL segment"):
            WriteAheadLog.replay_path(wal_path)

    def test_truncate_erases_whole_chain(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"seq": 1})
            wal.rotate()
            wal.append({"seq": 2})
            assert wal.total_size_bytes > 0
            wal.truncate()
            assert wal.total_size_bytes == 0
        assert WriteAheadLog.replay_path(wal_path) == []

    def test_torn_tail_physically_truncated_on_open(self, wal_path):
        # Appending after a torn tail must not fuse two frames into one
        # corrupt line: open() truncates the torn bytes first.
        with WriteAheadLog(wal_path) as wal:
            wal.append({"seq": 1})
        clean_size = wal_path.stat().st_size
        with open(wal_path, "ab") as fh:
            fh.write(b"W1 0bad0bad 17 {\"torn")
        with WriteAheadLog(wal_path) as wal:
            assert wal_path.stat().st_size == clean_size
            wal.append({"seq": 2})
        entries = WriteAheadLog.replay_path(wal_path)
        assert [e.payload["seq"] for e in entries] == [1, 2]

    def test_scan_file_lenient_records_error(self, wal_path):
        with WriteAheadLog(wal_path) as wal:
            wal.append({"seq": 1})
            wal.append({"seq": 2})
        raw = bytearray(wal_path.read_bytes())
        raw[-3] ^= 0xFF  # corrupt the second (newline-terminated) entry
        wal_path.write_bytes(bytes(raw))
        scan = WriteAheadLog.scan_file(wal_path, strict=False)
        assert not scan.clean
        assert scan.error is not None
        assert [e.payload["seq"] for e in scan.entries] == [1]
        assert 0 < scan.valid_bytes < wal_path.stat().st_size

"""Unit tests for repro.core.statistics."""

from repro.core.builder import build_index
from repro.core.entry import PublicationRecord
from repro.core.statistics import IndexStatistics


def make_index():
    return build_index([
        PublicationRecord.create(1, "One", ["Adler, Mortimer J."], "84:1 (1981)"),
        PublicationRecord.create(2, "Two", ["Adler, Mortimer J."], "86:2 (1984)"),
        PublicationRecord.create(3, "Note", ["Bailey, John P.*"], "78:522 (1976)"),
        PublicationRecord.create(4, "Joint", ["Adams, Alayne B.", "Zlotnick, David"], "84:789 (1982)"),
    ])


class TestStatistics:
    def test_entry_and_author_counts(self):
        stats = make_index().statistics()
        assert stats.entry_count == 5  # joint record explodes to 2
        assert stats.author_count == 4

    def test_student_share(self):
        stats = make_index().statistics()
        assert stats.student_entry_count == 1
        assert stats.student_share == 1 / 5

    def test_by_letter(self):
        stats = make_index().statistics()
        assert stats.entries_by_letter == {"A": 3, "B": 1, "Z": 1}

    def test_by_volume(self):
        stats = make_index().statistics()
        assert stats.entries_by_volume == {78: 1, 84: 3, 86: 1}

    def test_year_span(self):
        stats = make_index().statistics()
        assert (stats.year_min, stats.year_max) == (1976, 1984)

    def test_multi_article_authors(self):
        assert make_index().statistics().multi_article_authors == 1

    def test_empty_index(self):
        stats = build_index([]).statistics()
        assert stats.entry_count == 0
        assert stats.student_share == 0.0
        assert stats.year_min is None

    def test_summary_is_text(self):
        summary = make_index().statistics().summary()
        assert "entries:" in summary
        assert "1976-1984" in summary

    def test_compare_equal(self):
        a = make_index().statistics()
        b = make_index().statistics()
        assert a.compare(b) == {}

    def test_compare_differs(self):
        a = make_index().statistics()
        b = build_index([
            PublicationRecord.create(1, "One", ["Adler, Mortimer J."], "84:1 (1981)"),
        ]).statistics()
        deltas = a.compare(b)
        assert "entry_count" in deltas
        assert deltas["entry_count"] == (5, 1)

    def test_reference_corpus_statistics(self, reference_records):
        stats = build_index(reference_records).statistics()
        # Anchors from the curated transcription of the artifact.
        assert stats.entry_count == 343
        assert stats.author_count == 257
        assert stats.year_min == 1966
        assert stats.year_max == 1993
        assert len(stats.entries_by_volume) == 27

"""Unit tests for composite (multi-field) indexes."""

import pytest

from repro.errors import StorageError, ValidationError
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.store import RecordStore


@pytest.fixture()
def store():
    schema = Schema(
        [
            Field("id", FieldType.INT),
            Field("volume", FieldType.INT),
            Field("page", FieldType.INT),
            Field("year", FieldType.INT, required=False),
            Field("tags", FieldType.STRING_LIST, required=False),
        ],
        primary_key="id",
    )
    s = RecordStore(schema)
    rows = [
        (1, 69, 293), (2, 69, 1), (3, 70, 20), (4, 70, 163),
        (5, 95, 1), (6, 95, 691), (7, 95, 1365),
    ]
    for i, volume, page in rows:
        s.insert({"id": i, "volume": volume, "page": page, "year": 1900 + volume})
    return s


class TestCreate:
    def test_name_is_joined_fields(self, store):
        assert store.create_composite_index(("volume", "page")) == "volume+page"
        assert store.has_index("volume+page")

    def test_needs_two_fields(self, store):
        with pytest.raises(StorageError):
            store.create_composite_index(("volume",))

    def test_unknown_field_rejected(self, store):
        with pytest.raises(ValidationError):
            store.create_composite_index(("volume", "bogus"))

    def test_list_field_rejected(self, store):
        with pytest.raises(StorageError):
            store.create_composite_index(("volume", "tags"))

    def test_redeclare_is_noop(self, store):
        store.create_composite_index(("volume", "page"))
        store.create_composite_index(("volume", "page"))
        assert store.composite_indexes() == (("volume", "page"),)

    def test_listed_separately_from_scalars(self, store):
        store.create_composite_index(("volume", "page"))
        store.create_index("year")
        assert store.composite_indexes() == (("volume", "page"),)


class TestLookup:
    def test_exact_lookup(self, store):
        store.create_composite_index(("volume", "page"))
        rows = store.find_by_composite(("volume", "page"), (69, 293))
        assert [r["id"] for r in rows] == [1]

    def test_lookup_miss(self, store):
        store.create_composite_index(("volume", "page"))
        assert store.find_by_composite(("volume", "page"), (69, 9999)) == []

    def test_wrong_arity_rejected(self, store):
        store.create_composite_index(("volume", "page"))
        with pytest.raises(StorageError):
            store.find_by_composite(("volume", "page"), (69,))

    def test_undeclared_composite_rejected(self, store):
        with pytest.raises(StorageError):
            store.find_by_composite(("volume", "page"), (69, 1))


class TestPrefixRange:
    @pytest.fixture()
    def indexed(self, store):
        store.create_composite_index(("volume", "page"))
        return store

    def test_prefix_selects_whole_volume(self, indexed):
        rows = indexed.range_by_composite(("volume", "page"), (95,))
        assert [r["page"] for r in rows] == [1, 691, 1365]

    def test_prefix_plus_bounds(self, indexed):
        rows = indexed.range_by_composite(("volume", "page"), (95,), 100, 1000)
        assert [r["page"] for r in rows] == [691]

    def test_exclusive_bounds(self, indexed):
        rows = indexed.range_by_composite(
            ("volume", "page"), (95,), 1, 691, include_low=False, include_high=False
        )
        assert rows == []
        rows = indexed.range_by_composite(
            ("volume", "page"), (95,), 1, 691, include_low=True, include_high=True
        )
        assert [r["page"] for r in rows] == [1, 691]

    def test_results_in_key_order(self, indexed):
        rows = indexed.range_by_composite(("volume", "page"), (69,))
        assert [r["page"] for r in rows] == [1, 293]

    def test_prefix_must_leave_free_field(self, indexed):
        with pytest.raises(StorageError):
            indexed.range_by_composite(("volume", "page"), (95, 691))

    def test_no_bleed_into_next_volume(self, indexed):
        rows = indexed.range_by_composite(("volume", "page"), (69,), 200)
        assert [(r["volume"], r["page"]) for r in rows] == [(69, 293)]


class TestMaintenance:
    def test_updates_maintained(self, store):
        store.create_composite_index(("volume", "page"))
        store.update(1, {"page": 500})
        assert store.find_by_composite(("volume", "page"), (69, 293)) == []
        assert [r["id"] for r in store.find_by_composite(("volume", "page"), (69, 500))] == [1]

    def test_deletes_maintained(self, store):
        store.create_composite_index(("volume", "page"))
        store.delete(6)
        assert store.find_by_composite(("volume", "page"), (95, 691)) == []

    def test_missing_component_contributes_nothing(self, store):
        store.create_composite_index(("volume", "year"))
        store.insert({"id": 99, "volume": 96, "page": 1})  # year absent
        assert store.find_by_composite(("volume", "year"), (96, 1996)) == []

    def test_survives_snapshot_recovery(self, tmp_path):
        schema = Schema(
            [Field("id", FieldType.INT), Field("a", FieldType.INT), Field("b", FieldType.INT)],
            primary_key="id",
        )
        with RecordStore(schema, tmp_path / "db") as store:
            store.create_composite_index(("a", "b"))
            store.insert({"id": 1, "a": 10, "b": 20})
            store.snapshot()
            store.insert({"id": 2, "a": 10, "b": 30})
        with RecordStore(schema, tmp_path / "db") as reopened:
            assert reopened.composite_indexes() == (("a", "b"),)
            rows = reopened.range_by_composite(("a", "b"), (10,))
            assert [r["b"] for r in rows] == [20, 30]

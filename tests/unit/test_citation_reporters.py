"""Unit tests for repro.citation.reporters."""

import pytest

from repro.citation.model import Reporter, WVLR
from repro.citation.reporters import ReporterRegistry


class TestRegistry:
    def test_defaults_resolve_wvlr(self):
        registry = ReporterRegistry.with_defaults()
        assert registry.resolve("W. Va. L. Rev.") == WVLR

    @pytest.mark.parametrize("spelling", [
        "W. VA. L. REV.",
        "w va l rev",
        "W  Va  L  Rev",
        "West Virginia Law Review",
    ])
    def test_spelling_variants(self, spelling):
        registry = ReporterRegistry.with_defaults()
        assert registry.resolve(spelling) == WVLR

    def test_unknown_returns_none(self):
        registry = ReporterRegistry.with_defaults()
        assert registry.resolve("Harv. L. Rev.") is None

    def test_contains(self):
        registry = ReporterRegistry.with_defaults()
        assert "W. Va. L. Rev." in registry
        assert "Nope" not in registry

    def test_register_new(self):
        registry = ReporterRegistry()
        harv = Reporter(name="Harvard Law Review", abbreviation="Harv. L. Rev.")
        registry.register(harv, aliases=("HLR",))
        assert registry.resolve("harv l rev") == harv
        assert registry.resolve("hlr") == harv
        assert len(registry) == 1

    def test_reregister_same_reporter_ok(self):
        registry = ReporterRegistry.with_defaults()
        registry.register(WVLR)  # no error
        assert len(registry) == 2  # WVLR + PROCEEDINGS

    def test_conflicting_abbreviation_rejected(self):
        registry = ReporterRegistry.with_defaults()
        impostor = Reporter(name="Wrong Review", abbreviation="W. Va. L. Rev.")
        with pytest.raises(ValueError):
            registry.register(impostor)

    def test_iter_lists_reporters(self):
        registry = ReporterRegistry.with_defaults()
        names = {r.name for r in registry}
        assert "West Virginia Law Review" in names

"""Unit tests for the CLI (invoked in-process via repro.cli.main)."""

import json
import re

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestFormats:
    def test_lists_formats(self, capsys):
        code, out, _ = run(capsys, "formats")
        assert code == 0
        assert set(out.split()) == {"text", "markdown", "html", "latex", "json", "csv"}


class TestStats:
    def test_reference_stats(self, capsys):
        code, out, _ = run(capsys, "stats")
        assert code == 0
        assert "entries:               343" in out

    def test_custom_corpus(self, capsys, tmp_path):
        corpus = {
            "records": [
                {"id": 1, "title": "T", "authors": ["A, B."], "citation": "70:1 (1968)"}
            ]
        }
        path = tmp_path / "c.json"
        path.write_text(json.dumps(corpus))
        code, out, _ = run(capsys, "stats", "--corpus", str(path))
        assert code == 0
        assert "entries:               1" in out


class TestBuild:
    def test_build_text_to_stdout(self, capsys):
        code, out, _ = run(capsys, "build", "--no-pages")
        assert code == 0
        assert "Abdalla, Tarek F.*" in out

    def test_build_json_to_file(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        code, _, err = run(capsys, "build", "--format", "json", "--output", str(target))
        assert code == 0
        rows = json.loads(target.read_text())
        assert len(rows) == 343
        assert "wrote" in err

    def test_build_markdown(self, capsys):
        code, out, _ = run(capsys, "build", "--format", "markdown")
        assert code == 0
        assert out.startswith("| Author | Article | Citation |")

    def test_build_resolve_merges_variants(self, capsys):
        code, plain, _ = run(capsys, "build", "--format", "json")
        code2, resolved, _ = run(capsys, "build", "--format", "json", "--resolve")
        assert code == code2 == 0
        plain_authors = {r["author"] for r in json.loads(plain)}
        resolved_authors = {r["author"] for r in json.loads(resolved)}
        assert "Hemdon, Judith" in plain_authors
        assert "Hemdon, Judith" not in resolved_authors


class TestStatsMetrics:
    FAMILIES = ("storage.", "query.", "search.", "build.")

    def test_metrics_snapshot_json_shape(self, capsys):
        code, out, _ = run(capsys, "stats", "--metrics")
        assert code == 0
        snap = json.loads(out)
        assert set(snap) == {"counters", "gauges", "histograms"}
        for family in self.FAMILIES:
            assert any(name.startswith(family) for name in snap["counters"]), family
        # the workload moved every family, not just registered it
        assert snap["counters"]["storage.store.put.count"] > 0
        assert snap["counters"]["storage.wal.append.count"] > 0
        assert snap["counters"]["query.executions"] > 0
        assert snap["counters"]["search.queries"] > 0
        assert snap["counters"]["build.entries.collated"] > 0
        assert snap["histograms"]["query.seconds"]["count"] > 0

    def test_metrics_jsonl_lines_are_json_objects(self, capsys):
        code, out, _ = run(capsys, "stats", "--metrics", "--metrics-format", "jsonl")
        assert code == 0
        rows = [json.loads(line) for line in out.strip().splitlines()]
        assert all({"type", "name", "labels"} <= set(row) for row in rows)
        assert {"counter", "histogram"} <= {row["type"] for row in rows}
        chosen = [r for r in rows if r["name"] == "query.plan.chosen"]
        assert {r["labels"]["access"] for r in chosen} >= {"seq-scan", "index-lookup"}

    def test_metrics_text_format(self, capsys):
        code, out, _ = run(capsys, "stats", "--metrics", "--metrics-format", "text")
        assert code == 0
        assert "# counters" in out
        assert "storage.store.put.count" in out

    def test_default_stats_unchanged(self, capsys):
        code, out, _ = run(capsys, "stats")
        assert code == 0
        assert "entries:" in out


class TestQueryProfile:
    def test_profile_prints_operator_tree(self, capsys):
        code, out, err = run(
            capsys, "query", "--profile", "year >= 1985 ORDER BY page LIMIT 5"
        )
        assert code == 0
        for op in ("limit", "sort", "index-range"):
            assert op in out
        assert "examined=" in out and "returned=" in out
        assert "total:" in out
        assert "(5 rows)" in err

    def test_profile_seq_scan_and_filter_nodes(self, capsys):
        code, out, _ = run(capsys, "query", "--profile", "page >= 100")
        assert code == 0
        assert "seq-scan" in out
        assert "filter" in out

    def test_profile_index_lookup_node(self, capsys):
        code, out, _ = run(capsys, "query", "--profile", 'surnames:"Cardi"')
        assert code == 0
        assert "index-lookup" in out

    def test_profile_json_shape(self, capsys):
        code, out, _ = run(
            capsys, "query", "--profile", "--json",
            "year >= 1985 ORDER BY page LIMIT 5",
        )
        assert code == 0
        doc = json.loads(out)
        assert set(doc) == {"rows", "profile"}
        assert len(doc["rows"]) == 5
        profile = doc["profile"]
        assert set(profile) == {
            "plan", "plan_cached", "fingerprint", "seconds", "row_count",
            "page_hits", "page_misses", "tree",
        }
        assert re.fullmatch(r"[0-9a-f]{12}", profile["fingerprint"])
        assert profile["row_count"] == 5
        node = profile["tree"]
        ops = []
        while True:
            assert set(node) == {
                "op", "detail", "rows_examined", "rows_returned",
                "seconds", "cpu_ns", "bytes", "children",
            }
            assert node["cpu_ns"] >= 0 and node["bytes"] >= 0
            assert node["rows_examined"] >= node["rows_returned"] >= 0
            assert node["seconds"] >= 0
            ops.append(node["op"])
            if not node["children"]:
                break
            node = node["children"][0]
        assert ops == ["limit", "sort", "index-range"]

    def test_profile_rows_match_unprofiled_rows(self, capsys):
        query = "year >= 1985 ORDER BY page LIMIT 5"
        code, plain, _ = run(capsys, "query", query)
        code2, profiled, _ = run(capsys, "query", "--profile", query)
        assert code == code2 == 0
        assert plain in profiled  # profile output = tree + blank line + rows


class TestQuery:
    def test_query_rows(self, capsys):
        code, out, err = run(capsys, "query", 'surnames:"Cardi"')
        assert code == 0
        assert out.count("Cardi") == 4
        assert "(4 rows)" in err

    def test_query_explain(self, capsys):
        code, out, _ = run(capsys, "query", "--explain", 'surnames:"Cardi"')
        assert code == 0
        assert out.startswith("INDEX LOOKUP (hash)")

    def test_query_syntax_error_exit_code(self, capsys):
        code, _, err = run(capsys, "query", "year >=")
        assert code == 1
        assert "error:" in err


class TestBundle:
    def test_bundle_writes_four_files(self, capsys, tmp_path):
        code, _, err = run(capsys, "bundle", str(tmp_path / "fm"))
        assert code == 0
        names = {p.name for p in (tmp_path / "fm").iterdir()}
        assert names == {
            "author_index.txt", "title_index.txt", "subject_index.txt", "contents.txt",
        }
        assert "wrote 4 index files" in err


class TestExport:
    def test_export_bibtex(self, capsys):
        code, out, _ = run(capsys, "export", "--to", "bibtex", "--journal", "W. Va. L. Rev.")
        assert code == 0
        assert out.count("@article{") == 271
        assert "journal = {W. Va. L. Rev.}" in out

    def test_export_csv_roundtrips(self, capsys, tmp_path):
        target = tmp_path / "c.csv"
        code, _, err = run(capsys, "export", "--to", "csv", "--output", str(target))
        assert code == 0
        from repro.export import read_csv

        assert len(read_csv(target)) == 271
        assert "271 records" in err


class TestSearch:
    def test_search_ranked_hits(self, capsys):
        code, out, err = run(capsys, "search", '"black lung"', "--top", "3")
        assert code == 0
        assert out.count("Lung") >= 3
        assert "(3 hits)" in err

    def test_search_no_hits(self, capsys):
        code, out, err = run(capsys, "search", "zymurgy")
        assert code == 0
        assert out == ""
        assert "(0 hits)" in err


class TestLint:
    def test_lint_reports_known_issues(self, capsys):
        code, out, err = run(capsys, "lint")
        assert code == 0
        assert "suspect-duplicate-heading" in out
        assert "(5 issues)" in err

    def test_lint_strict_exit_code(self, capsys):
        code, _, _ = run(capsys, "lint", "--strict")
        assert code == 1


class TestIngest:
    def test_ingest_roundtrip(self, capsys, tmp_path):
        raw = tmp_path / "raw.txt"
        raw.write_text(
            "Areen, Judith M. Regulating Human Gene Therapy 88:153 (1985)\n"
            "1366\n"
            "Farmer, Guy Transfer of NLRB Jurisdiction Over 88:1 (1985)\n"
            "Unfair Practices to Labor Courts\n"
        )
        out_path = tmp_path / "corpus.json"
        code, _, err = run(capsys, "ingest", str(raw), "--output", str(out_path))
        assert code == 0
        corpus = json.loads(out_path.read_text())
        assert len(corpus["records"]) == 2
        assert "parsed 2 records" in err

    def test_ingest_missing_file(self, capsys, tmp_path):
        code, _, err = run(capsys, "ingest", str(tmp_path / "nope.txt"))
        assert code == 1
        assert "error:" in err

    def test_ingest_show_warnings(self, capsys, tmp_path):
        raw = tmp_path / "raw.txt"
        raw.write_text("Areen, Judith Regulating Human Gene Therapy 88:153 (1985)\n")
        code, _, err = run(capsys, "ingest", str(raw), "--show-warnings")
        assert code == 0
        assert "warning:" in err


class TestStatsMetricsProm:
    def test_prom_format_is_valid_exposition(self, capsys):
        from tests.unit.test_obs_promexport import parse_exposition

        code, out, _ = run(capsys, "stats", "--metrics", "--format", "prom")
        assert code == 0
        parsed = parse_exposition(out)
        counters = parsed["repro_query_executions_total"]["samples"]
        assert counters[0][2] > 0

    def test_prom_matches_http_renderer(self, capsys):
        # One code path: the CLI output is render_prometheus() verbatim.
        from repro import obs

        code, out, _ = run(capsys, "stats", "--metrics", "--format", "prom")
        assert code == 0
        assert out == obs.render_prometheus(obs.metrics.snapshot())

    def test_since_reports_windowed_rates(self, capsys):
        code, out, _ = run(capsys, "stats", "--metrics", "--since", "3600")
        assert code == 0
        rates = json.loads(out)
        assert rates["samples"] >= 2
        assert rates["deltas"]["query.executions"] > 0
        assert rates["rates"]["query.executions"] >= 0

    def test_since_with_timeseries_file(self, capsys, tmp_path):
        from repro.obs.timeseries import TimeSeriesLog

        path = tmp_path / "ts.jsonl"
        ts = TimeSeriesLog(path)
        for epoch, value in ((1000.0, 10), (1010.0, 70)):
            record = ts.sample(
                {"counters": {"q.count": value}, "gauges": {}, "histograms": {}}
            )
            record["epoch"] = epoch
        # Rewrite with pinned epochs so the window math is deterministic.
        path.write_text(
            "".join(json.dumps(s) + "\n" for s in ts.samples()), encoding="utf-8"
        )
        code, out, _ = run(
            capsys, "stats", "--metrics", "--since", "1e18",
            "--timeseries", str(path),
        )
        assert code == 0
        rates = json.loads(out)
        assert rates["deltas"]["q.count"] == 60
        assert rates["rates"]["q.count"] == 6.0


class TestQuerySlowLog:
    def test_slow_log_written_for_slow_query(self, capsys, tmp_path):
        path = tmp_path / "slow.jsonl"
        code, out, _ = run(
            capsys, "query", "year >= 1980", "--slow-log", str(path), "--slow-ms", "0"
        )
        assert code == 0
        lines = [json.loads(l) for l in path.read_text().strip().splitlines()]
        assert len(lines) == 1
        entry = lines[0]
        assert entry["query"] == "year >= 1980"
        assert entry["rows"] > 0
        assert len(entry["trace_id"]) == 16
        assert entry["profile"]["tree"]["op"] in (
            "filter", "index-lookup", "index-range", "seq-scan"
        )

    def test_high_threshold_writes_nothing(self, capsys, tmp_path):
        path = tmp_path / "slow.jsonl"
        code, _, _ = run(
            capsys, "query", "year >= 1980", "--slow-log", str(path),
            "--slow-ms", "60000",
        )
        assert code == 0
        assert not path.exists() or path.read_text() == ""


class TestLogs:
    def test_logs_runs_workload_and_prints_events(self, capsys):
        code, out, err = run(capsys, "logs")
        assert code == 0
        assert "query.execute" in out
        assert "events)" in err

    def test_logs_json_lines(self, capsys):
        code, out, _ = run(capsys, "logs", "--json", "--event", "query.execute")
        assert code == 0
        rows = [json.loads(line) for line in out.strip().splitlines()]
        assert rows and all(r["event"] == "query.execute" for r in rows)
        assert all(len(r["trace_id"]) == 16 for r in rows if "trace_id" in r)

    def test_logs_from_file(self, capsys, tmp_path):
        from repro.obs.logging import JsonLogger

        path = tmp_path / "app.jsonl"
        logger = JsonLogger(level="debug")
        logger.attach_file(path)
        logger.log("alpha.one", level="info", n=1)
        logger.log("beta.two", level="warn", n=2)
        logger.detach_file()
        code, out, _ = run(capsys, "logs", "--file", str(path), "--level", "warn")
        assert code == 0
        assert "beta.two" in out
        assert "alpha.one" not in out


class TestTop:
    def test_in_process_burst_renders_table(self, capsys):
        from repro.obs import workload

        workload.reset()
        code, out, err = run(capsys, "top")
        assert code == 0
        assert "FINGERPRINT" in out and "TEMPLATE" in out
        assert "year >= ? ORDER BY year ASC LIMIT ?" in out
        assert "in-process burst" in err
        workload.reset()

    def test_json_output_has_fingerprints(self, capsys):
        from repro.obs import workload

        workload.reset()
        code, out, _ = run(capsys, "top", "--json", "-n", "3", "--sort", "cpu_ns")
        assert code == 0
        payload = json.loads(out)
        assert payload["burst"]["queries"] > 0
        assert 1 <= len(payload["fingerprints"]) <= 3
        assert all(row["cpu_ns"] >= 0 for row in payload["fingerprints"])
        workload.reset()


class TestProfile:
    def test_profile_writes_collapsed_stacks(self, capsys, tmp_path):
        out_file = tmp_path / "prof.folded"
        code, _, err = run(
            capsys, "profile", "--seconds", "0.4", "--hz", "300",
            "--out", str(out_file),
        )
        assert code == 0
        assert "samples over" in err
        lines = out_file.read_text().strip().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack or ":" in stack
            assert count.isdigit()
        # The burst itself must be visible in the profile.
        assert any("repro.query" in line for line in lines)


class TestWorkloadReport:
    def test_report_meets_acceptance_shape(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        code, _, err = run(
            capsys, "workload-report", "--synthetic", "10000",
            "--out", str(out_file),
        )
        assert code == 0
        report = json.loads(out_file.read_text())
        assert report["corpus"]["records"] == 10000
        workload_snap = report["workload"]
        # >= 3 distinct fingerprints, with operator-level breakdowns.
        assert workload_snap["tracked"] >= 3
        with_ops = [f for f in workload_snap["fingerprints"] if f["operators"]]
        assert with_ops
        for row in with_ops:
            for op_stats in row["operators"].values():
                assert {"calls", "rows_in", "rows_out", "cpu_ns", "wall_ns",
                        "bytes"} <= set(op_stats)
        # Key-usage (online) and key-distribution (offline) histograms.
        assert report["key_usage"]["year"]["probes"] > 0
        for field in ("surnames", "year", "volume"):
            dist = report["key_distribution"][field]
            assert dist["distinct_keys"] > 0
            assert dist["top_keys"]
        # The burst tripped at least one budget so interruptions surface.
        assert report["burst"]["interrupted"] >= 1
        assert "fingerprints over" in err

    def test_report_to_stdout_with_reference_corpus_file(self, capsys, tmp_path):
        corpus = {
            "records": [
                {"id": i, "title": f"T{i}", "authors": ["A, B."],
                 "citation": f"{60 + i % 3}:{i} (196{i % 10})"}
                for i in range(1, 40)
            ]
        }
        path = tmp_path / "c.json"
        path.write_text(json.dumps(corpus))
        code, out, _ = run(capsys, "workload-report", "--corpus", str(path))
        assert code == 0
        report = json.loads(out)
        assert report["corpus"]["records"] == 39
        assert report["workload"]["tracked"] >= 3


class TestAlerts:
    """`repro alerts`: exit 0 quiet, 1 firing, 2 usage error."""

    RULES = {
        "slos": [{
            "name": "query-availability",
            "kind": "availability",
            "objective": 0.999,
            "total": "query.executions",
            "bad": "query.failures",
            "windows": [
                {"long_s": 3600, "short_s": 300, "burn": 14.4,
                 "severity": "page"},
            ],
        }]
    }

    def _write(self, tmp_path, *, failures):
        """A timeseries file where 2% of queries failed (or none did)."""
        import time

        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps(self.RULES), encoding="utf-8")
        ts = tmp_path / "ts.jsonl"
        bad = (0, 20, 40) if failures else (0, 0, 0)
        now = time.time()
        with open(ts, "w", encoding="utf-8") as fh:
            for epoch, total, b in zip((now - 3500, now - 280, now - 1),
                                       (0, 1000, 2000), bad):
                fh.write(json.dumps({
                    "ts": "x", "epoch": epoch,
                    "counters": {"query.executions": total,
                                 "query.failures": b},
                    "gauges": {},
                }) + "\n")
        return rules, ts

    def test_injected_failures_fire_burn_rate_alert(self, capsys, tmp_path):
        rules, ts = self._write(tmp_path, failures=True)
        code, out, _ = run(
            capsys, "alerts", "--rules", str(rules), "--timeseries", str(ts)
        )
        assert code == 1
        assert "query-availability" in out
        assert "FIRING" in out
        assert "burn rate" in out

    def test_clean_window_exits_zero(self, capsys, tmp_path):
        rules, ts = self._write(tmp_path, failures=False)
        code, out, _ = run(
            capsys, "alerts", "--rules", str(rules), "--timeseries", str(ts)
        )
        assert code == 0
        assert "0 firing" in out

    def test_json_output_is_the_evaluation(self, capsys, tmp_path):
        rules, ts = self._write(tmp_path, failures=True)
        code, out, _ = run(
            capsys, "alerts", "--rules", str(rules),
            "--timeseries", str(ts), "--json",
        )
        assert code == 1
        payload = json.loads(out)
        assert [s["name"] for s in payload["firing"]] == ["query-availability"]
        assert payload["rules"][0]["windows"][0]["burn_long"] > 14.4

    def test_invalid_rules_exit_two(self, capsys, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"slos": [{"name": "x", "kind": "nope"}]}),
                         encoding="utf-8")
        code, _, err = run(
            capsys, "alerts", "--rules", str(rules),
            "--timeseries", str(tmp_path / "ts.jsonl"),
        )
        assert code == 2
        assert "kind" in err

    def test_url_mode_rejects_local_flags(self, capsys, tmp_path):
        rules, _ = self._write(tmp_path, failures=False)
        code, _, err = run(
            capsys, "alerts", "--url", "http://127.0.0.1:1",
            "--rules", str(rules),
        )
        assert code == 2
        assert "cannot be combined" in err

    def test_url_mode_polls_alertz(self, capsys):
        from repro.obs.server import TelemetryServer

        with TelemetryServer(port=0) as srv:
            code, out, _ = run(capsys, "alerts", "--url", srv.url)
        assert code == 0
        assert "disabled" in out or "0 firing" in out


class TestProgressCli:
    def test_progress_snapshot_over_http(self, capsys):
        from repro.obs import progress
        from repro.obs.server import TelemetryServer

        progress.reset()
        with TelemetryServer(port=0) as srv:
            with progress.start("storage.checkpoint", total=10) as tracker:
                tracker.tick(4)
                code, out, _ = run(capsys, "progress", "--url", srv.url)
        assert code == 0
        assert "storage.checkpoint" in out
        assert "4/10" in out
        progress.reset()

    def test_progress_json_mode(self, capsys):
        from repro.obs import progress
        from repro.obs.server import TelemetryServer

        progress.reset()
        with progress.start("fsck"):
            pass
        with TelemetryServer(port=0) as srv:
            code, out, _ = run(capsys, "progress", "--url", srv.url, "--json")
        assert code == 0
        payload = json.loads(out)
        assert [op["name"] for op in payload["recent"]] == ["fsck"]
        progress.reset()

"""Unit tests for the CLI (invoked in-process via repro.cli.main)."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestFormats:
    def test_lists_formats(self, capsys):
        code, out, _ = run(capsys, "formats")
        assert code == 0
        assert set(out.split()) == {"text", "markdown", "html", "latex", "json", "csv"}


class TestStats:
    def test_reference_stats(self, capsys):
        code, out, _ = run(capsys, "stats")
        assert code == 0
        assert "entries:               343" in out

    def test_custom_corpus(self, capsys, tmp_path):
        corpus = {
            "records": [
                {"id": 1, "title": "T", "authors": ["A, B."], "citation": "70:1 (1968)"}
            ]
        }
        path = tmp_path / "c.json"
        path.write_text(json.dumps(corpus))
        code, out, _ = run(capsys, "stats", "--corpus", str(path))
        assert code == 0
        assert "entries:               1" in out


class TestBuild:
    def test_build_text_to_stdout(self, capsys):
        code, out, _ = run(capsys, "build", "--no-pages")
        assert code == 0
        assert "Abdalla, Tarek F.*" in out

    def test_build_json_to_file(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        code, _, err = run(capsys, "build", "--format", "json", "--output", str(target))
        assert code == 0
        rows = json.loads(target.read_text())
        assert len(rows) == 343
        assert "wrote" in err

    def test_build_markdown(self, capsys):
        code, out, _ = run(capsys, "build", "--format", "markdown")
        assert code == 0
        assert out.startswith("| Author | Article | Citation |")

    def test_build_resolve_merges_variants(self, capsys):
        code, plain, _ = run(capsys, "build", "--format", "json")
        code2, resolved, _ = run(capsys, "build", "--format", "json", "--resolve")
        assert code == code2 == 0
        plain_authors = {r["author"] for r in json.loads(plain)}
        resolved_authors = {r["author"] for r in json.loads(resolved)}
        assert "Hemdon, Judith" in plain_authors
        assert "Hemdon, Judith" not in resolved_authors


class TestStatsMetrics:
    FAMILIES = ("storage.", "query.", "search.", "build.")

    def test_metrics_snapshot_json_shape(self, capsys):
        code, out, _ = run(capsys, "stats", "--metrics")
        assert code == 0
        snap = json.loads(out)
        assert set(snap) == {"counters", "gauges", "histograms"}
        for family in self.FAMILIES:
            assert any(name.startswith(family) for name in snap["counters"]), family
        # the workload moved every family, not just registered it
        assert snap["counters"]["storage.store.put.count"] > 0
        assert snap["counters"]["storage.wal.append.count"] > 0
        assert snap["counters"]["query.executions"] > 0
        assert snap["counters"]["search.queries"] > 0
        assert snap["counters"]["build.entries.collated"] > 0
        assert snap["histograms"]["query.seconds"]["count"] > 0

    def test_metrics_jsonl_lines_are_json_objects(self, capsys):
        code, out, _ = run(capsys, "stats", "--metrics", "--metrics-format", "jsonl")
        assert code == 0
        rows = [json.loads(line) for line in out.strip().splitlines()]
        assert all({"type", "name", "labels"} <= set(row) for row in rows)
        assert {"counter", "histogram"} <= {row["type"] for row in rows}
        chosen = [r for r in rows if r["name"] == "query.plan.chosen"]
        assert {r["labels"]["access"] for r in chosen} >= {"seq-scan", "index-lookup"}

    def test_metrics_text_format(self, capsys):
        code, out, _ = run(capsys, "stats", "--metrics", "--metrics-format", "text")
        assert code == 0
        assert "# counters" in out
        assert "storage.store.put.count" in out

    def test_default_stats_unchanged(self, capsys):
        code, out, _ = run(capsys, "stats")
        assert code == 0
        assert "entries:" in out


class TestQueryProfile:
    def test_profile_prints_operator_tree(self, capsys):
        code, out, err = run(
            capsys, "query", "--profile", "year >= 1985 ORDER BY page LIMIT 5"
        )
        assert code == 0
        for op in ("limit", "sort", "index-range"):
            assert op in out
        assert "examined=" in out and "returned=" in out
        assert "total:" in out
        assert "(5 rows)" in err

    def test_profile_seq_scan_and_filter_nodes(self, capsys):
        code, out, _ = run(capsys, "query", "--profile", "page >= 100")
        assert code == 0
        assert "seq-scan" in out
        assert "filter" in out

    def test_profile_index_lookup_node(self, capsys):
        code, out, _ = run(capsys, "query", "--profile", 'surnames:"Cardi"')
        assert code == 0
        assert "index-lookup" in out

    def test_profile_json_shape(self, capsys):
        code, out, _ = run(
            capsys, "query", "--profile", "--json",
            "year >= 1985 ORDER BY page LIMIT 5",
        )
        assert code == 0
        doc = json.loads(out)
        assert set(doc) == {"rows", "profile"}
        assert len(doc["rows"]) == 5
        profile = doc["profile"]
        assert set(profile) == {"plan", "plan_cached", "seconds", "row_count", "tree"}
        assert profile["row_count"] == 5
        node = profile["tree"]
        ops = []
        while True:
            assert set(node) == {
                "op", "detail", "rows_examined", "rows_returned",
                "seconds", "children",
            }
            assert node["rows_examined"] >= node["rows_returned"] >= 0
            assert node["seconds"] >= 0
            ops.append(node["op"])
            if not node["children"]:
                break
            node = node["children"][0]
        assert ops == ["limit", "sort", "index-range"]

    def test_profile_rows_match_unprofiled_rows(self, capsys):
        query = "year >= 1985 ORDER BY page LIMIT 5"
        code, plain, _ = run(capsys, "query", query)
        code2, profiled, _ = run(capsys, "query", "--profile", query)
        assert code == code2 == 0
        assert plain in profiled  # profile output = tree + blank line + rows


class TestQuery:
    def test_query_rows(self, capsys):
        code, out, err = run(capsys, "query", 'surnames:"Cardi"')
        assert code == 0
        assert out.count("Cardi") == 4
        assert "(4 rows)" in err

    def test_query_explain(self, capsys):
        code, out, _ = run(capsys, "query", "--explain", 'surnames:"Cardi"')
        assert code == 0
        assert out.startswith("INDEX LOOKUP (hash)")

    def test_query_syntax_error_exit_code(self, capsys):
        code, _, err = run(capsys, "query", "year >=")
        assert code == 1
        assert "error:" in err


class TestBundle:
    def test_bundle_writes_four_files(self, capsys, tmp_path):
        code, _, err = run(capsys, "bundle", str(tmp_path / "fm"))
        assert code == 0
        names = {p.name for p in (tmp_path / "fm").iterdir()}
        assert names == {
            "author_index.txt", "title_index.txt", "subject_index.txt", "contents.txt",
        }
        assert "wrote 4 index files" in err


class TestExport:
    def test_export_bibtex(self, capsys):
        code, out, _ = run(capsys, "export", "--to", "bibtex", "--journal", "W. Va. L. Rev.")
        assert code == 0
        assert out.count("@article{") == 271
        assert "journal = {W. Va. L. Rev.}" in out

    def test_export_csv_roundtrips(self, capsys, tmp_path):
        target = tmp_path / "c.csv"
        code, _, err = run(capsys, "export", "--to", "csv", "--output", str(target))
        assert code == 0
        from repro.export import read_csv

        assert len(read_csv(target)) == 271
        assert "271 records" in err


class TestSearch:
    def test_search_ranked_hits(self, capsys):
        code, out, err = run(capsys, "search", '"black lung"', "--top", "3")
        assert code == 0
        assert out.count("Lung") >= 3
        assert "(3 hits)" in err

    def test_search_no_hits(self, capsys):
        code, out, err = run(capsys, "search", "zymurgy")
        assert code == 0
        assert out == ""
        assert "(0 hits)" in err


class TestLint:
    def test_lint_reports_known_issues(self, capsys):
        code, out, err = run(capsys, "lint")
        assert code == 0
        assert "suspect-duplicate-heading" in out
        assert "(5 issues)" in err

    def test_lint_strict_exit_code(self, capsys):
        code, _, _ = run(capsys, "lint", "--strict")
        assert code == 1


class TestIngest:
    def test_ingest_roundtrip(self, capsys, tmp_path):
        raw = tmp_path / "raw.txt"
        raw.write_text(
            "Areen, Judith M. Regulating Human Gene Therapy 88:153 (1985)\n"
            "1366\n"
            "Farmer, Guy Transfer of NLRB Jurisdiction Over 88:1 (1985)\n"
            "Unfair Practices to Labor Courts\n"
        )
        out_path = tmp_path / "corpus.json"
        code, _, err = run(capsys, "ingest", str(raw), "--output", str(out_path))
        assert code == 0
        corpus = json.loads(out_path.read_text())
        assert len(corpus["records"]) == 2
        assert "parsed 2 records" in err

    def test_ingest_missing_file(self, capsys, tmp_path):
        code, _, err = run(capsys, "ingest", str(tmp_path / "nope.txt"))
        assert code == 1
        assert "error:" in err

    def test_ingest_show_warnings(self, capsys, tmp_path):
        raw = tmp_path / "raw.txt"
        raw.write_text("Areen, Judith Regulating Human Gene Therapy 88:153 (1985)\n")
        code, _, err = run(capsys, "ingest", str(raw), "--show-warnings")
        assert code == 0
        assert "warning:" in err

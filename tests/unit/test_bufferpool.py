"""Unit tests for repro.storage.bufferpool.

The invariants under test are the ones the paged B+ tree leans on:

* at most ``capacity`` frames resident (unless every frame is pinned);
* a pinned frame is **never** evicted, whatever the access pattern;
* a dirty frame is written back before its slot is reused, so a reader
  that misses always sees the latest bytes;
* pin counts balance — every ``pin`` exit decrements, an extra unpin
  raises.
"""

import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.bufferpool import BufferPool
from repro.storage.pages import LeafNode, PageFile


def _make_pager(tmp_path, pages: int, name: str = "pool.pages") -> PageFile:
    """A page file whose page ``i`` holds key ``i`` (self-describing)."""
    pager = PageFile(tmp_path / name, create=True)
    for _ in range(pages):
        pid = pager.allocate()
        pager.write_page(pid, LeafNode(keys=[pid], values=[b"v"]).pack())
    pager.write_meta()
    return pager


class TestLRU:
    def test_capacity_bound_and_lru_order(self, tmp_path):
        pager = _make_pager(tmp_path, 10)
        pool = BufferPool(pager, capacity=3)
        for pid in (1, 2, 3, 4):
            with pool.pin(pid):
                pass
        assert len(pool) == 3
        assert pool.resident() == [2, 3, 4]  # 1 was LRU, evicted
        with pool.pin(2):  # touch 2: now 3 is LRU
            pass
        with pool.pin(5):
            pass
        assert pool.resident() == [4, 2, 5]

    def test_hit_does_not_reread(self, tmp_path):
        pager = _make_pager(tmp_path, 3)
        pool = BufferPool(pager, capacity=3)
        with pool.pin(1) as first:
            pass
        reads = []
        original = pager.read_page
        pager.read_page = lambda pid: reads.append(pid) or original(pid)
        with pool.pin(1) as again:
            assert again == first
        assert reads == []

    def test_capacity_validation(self, tmp_path):
        pager = _make_pager(tmp_path, 1)
        with pytest.raises(StorageError):
            BufferPool(pager, capacity=0)


class TestPinning:
    def test_pinned_frame_never_evicted(self, tmp_path):
        pager = _make_pager(tmp_path, 10)
        pool = BufferPool(pager, capacity=2)
        with pool.pin(1):
            for pid in (2, 3, 4, 5):
                with pool.pin(pid):
                    pass
            assert 1 in pool.resident()
            assert pool.pin_count(1) == 1
        assert pool.pin_count(1) == 0

    def test_all_pinned_overflows_rather_than_evicts(self, tmp_path):
        pager = _make_pager(tmp_path, 5)
        pool = BufferPool(pager, capacity=2)
        with pool.pin(1), pool.pin(2), pool.pin(3):
            # over capacity, but every frame has a live reader
            assert len(pool) == 3
        with pool.pin(4):
            pass
        assert len(pool) <= 2  # shrinks back once pins drop

    def test_unbalanced_unpin_raises(self, tmp_path):
        pager = _make_pager(tmp_path, 2)
        pool = BufferPool(pager, capacity=2)
        with pool.pin(1):
            pass
        with pytest.raises(StorageError):
            pool._release(1)

    def test_free_pinned_page_rejected(self, tmp_path):
        pager = _make_pager(tmp_path, 2)
        pool = BufferPool(pager, capacity=2)
        with pool.pin(1):
            with pytest.raises(StorageError):
                pool.free_page(1)
            assert 1 in pool.resident()  # refused, still resident


class TestDirtyWriteBack:
    def test_eviction_writes_back_dirty_frame(self, tmp_path):
        pager = _make_pager(tmp_path, 5)
        pool = BufferPool(pager, capacity=2)
        pool.put_page(1, LeafNode(keys=[100], values=[b"new"]).pack())
        assert pool.is_dirty(1)
        for pid in (2, 3, 4):  # push page 1 out
            with pool.pin(pid):
                pass
        assert 1 not in pool.resident()
        # a fresh miss must see the written-back bytes
        with pool.pin(1) as raw:
            assert LeafNode.unpack(raw).keys == [100]

    def test_flush_cleans_without_evicting(self, tmp_path):
        pager = _make_pager(tmp_path, 3)
        pool = BufferPool(pager, capacity=3)
        pool.put_page(2, LeafNode(keys=[7], values=[b"x"]).pack())
        pool.flush()
        assert not pool.is_dirty(2)
        assert 2 in pool.resident()
        assert LeafNode.unpack(pager.read_page(2)).keys == [7]

    def test_clear_with_pin_rejected(self, tmp_path):
        pager = _make_pager(tmp_path, 2)
        pool = BufferPool(pager, capacity=2)
        with pool.pin(1):
            with pytest.raises(StorageError):
                pool.clear()
        pool.clear()
        assert len(pool) == 0


class TestPropertyInvariants:
    @given(
        st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_eviction_never_loses_data(self, accesses, capacity):
        with tempfile.TemporaryDirectory() as tmp:
            self._run(Path(tmp), accesses, capacity)

    @staticmethod
    def _run(tmp_path, accesses, capacity):
        pager = _make_pager(tmp_path, 12)
        try:
            pool = BufferPool(pager, capacity=capacity)
            for pid in accesses:
                with pool.pin(pid) as raw:
                    assert LeafNode.unpack(raw).keys == [pid]
                assert len(pool) <= capacity
                assert pool.pin_count(pid) == 0
        finally:
            pager.close()


class TestConcurrentReaders:
    def test_pin_counts_balance_under_contention(self, tmp_path):
        pager = _make_pager(tmp_path, 16)
        pool = BufferPool(pager, capacity=4)
        errors = []

        def reader(seed: int) -> None:
            try:
                for i in range(300):
                    pid = (seed * 7 + i) % 16 + 1
                    with pool.pin(pid) as raw:
                        if LeafNode.unpack(raw).keys != [pid]:
                            errors.append(f"page {pid} returned wrong bytes")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(repr(exc))

        threads = [threading.Thread(target=reader, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # quiescent: no pins left anywhere, pool back within capacity
        assert all(pool.pin_count(pid) == 0 for pid in pool.resident())
        assert len(pool) <= 4

"""Unit tests for repro.query.executor."""

import pytest

from repro.errors import QueryPlanError, QuerySyntaxError
from repro.query.executor import QueryEngine
from repro.query.parser import parse_query
from repro.storage.store import IndexKind


@pytest.fixture()
def engine(memory_store):
    rows = [
        {"id": 1, "name": "smith", "year": 1980, "tags": ["coal"], "active": True},
        {"id": 2, "name": "jones", "year": 1985, "tags": ["coal", "tax"], "active": False},
        {"id": 3, "name": "smith", "year": 1990, "tags": [], "active": True},
        {"id": 4, "name": "li", "year": 1975, "tags": ["tort"], "active": False},
        {"id": 5, "name": "garcia", "year": 1990, "tags": ["tax"], "active": True},
    ]
    for row in rows:
        memory_store.insert(row)
    memory_store.create_index("name", IndexKind.HASH)
    memory_store.create_index("year", IndexKind.BTREE)
    memory_store.create_index("tags", IndexKind.BTREE)
    return QueryEngine(memory_store)


def ids(rows):
    return sorted(r["id"] for r in rows)


class TestExecute:
    def test_equality(self, engine):
        assert ids(engine.execute('name = "smith"')) == [1, 3]

    def test_range(self, engine):
        assert ids(engine.execute("year >= 1985")) == [2, 3, 5]

    def test_conjunction(self, engine):
        assert ids(engine.execute('name = "smith" AND year >= 1985')) == [3]

    def test_disjunction(self, engine):
        assert ids(engine.execute('name = "li" OR name = "garcia"')) == [4, 5]

    def test_negation(self, engine):
        assert ids(engine.execute('NOT name = "smith"')) == [2, 4, 5]

    def test_list_membership(self, engine):
        assert ids(engine.execute('tags:"tax"')) == [2, 5]

    def test_select_all(self, engine):
        assert ids(engine.execute("*")) == [1, 2, 3, 4, 5]

    def test_no_matches(self, engine):
        assert engine.execute('name = "nobody"') == []

    def test_bool_field(self, engine):
        assert ids(engine.execute("active = true")) == [1, 3, 5]

    def test_accepts_parsed_query(self, engine):
        q = parse_query("year < 1980")
        assert ids(engine.execute(q)) == [4]

    def test_syntax_error_propagates(self, engine):
        with pytest.raises(QuerySyntaxError):
            engine.execute("year >=")


class TestOrderLimit:
    def test_order_by_asc(self, engine):
        rows = engine.execute("* ORDER BY year")
        assert [r["year"] for r in rows] == [1975, 1980, 1985, 1990, 1990]

    def test_order_by_desc(self, engine):
        rows = engine.execute("* ORDER BY year DESC")
        assert rows[0]["year"] == 1990

    def test_order_by_string_field(self, engine):
        rows = engine.execute("* ORDER BY name")
        assert [r["name"] for r in rows][:2] == ["garcia", "jones"]

    def test_limit(self, engine):
        assert len(engine.execute("* LIMIT 2")) == 2

    def test_limit_zero(self, engine):
        assert engine.execute("* LIMIT 0") == []

    def test_limit_larger_than_result(self, engine):
        assert len(engine.execute("* LIMIT 100")) == 5

    def test_order_by_unknown_field(self, engine):
        with pytest.raises(QueryPlanError):
            engine.execute("* ORDER BY bogus")


class TestEquivalence:
    QUERIES = [
        'name = "smith"',
        "year >= 1980 AND year < 1990",
        'tags:"coal" AND active = true',
        'NOT (name = "li") AND year <= 1990',
        '(name = "jones" OR name = "li") AND year > 1970',
        "* ORDER BY year DESC LIMIT 3",
        'name != "smith" ORDER BY id',
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_planned_equals_scan(self, engine, query):
        planned = engine.execute(query)
        scanned = engine.execute_without_indexes(query)
        assert ids(planned) == ids(scanned)

    def test_explain_matches_execution_path(self, engine):
        assert engine.explain('name = "smith"').startswith("INDEX LOOKUP")
        assert engine.explain("* ").startswith("FULL SCAN")


class TestListFieldDedup:
    def test_duplicate_list_elements_single_row(self, memory_store):
        memory_store.create_index("tags", IndexKind.BTREE)
        memory_store.insert(
            {"id": 1, "name": "x", "year": 1990, "tags": ["coal", "coal"]}
        )
        engine = QueryEngine(memory_store)
        assert len(engine.execute('tags:"coal"')) == 1

    def test_range_over_list_field_dedups(self, memory_store):
        memory_store.create_index("tags", IndexKind.BTREE)
        memory_store.insert({"id": 1, "name": "x", "year": 1990, "tags": ["a", "b"]})
        engine = QueryEngine(memory_store)
        rows = engine.execute('tags >= "a" AND tags <= "z"')
        assert len(rows) == 1

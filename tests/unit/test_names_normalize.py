"""Unit tests for repro.names.normalize."""

import pytest

from repro.names.normalize import (
    equivalent_names,
    fold_case,
    normalization_key,
    strip_diacritics,
    strip_ocr_artifacts,
    surname_key,
)


class TestStripDiacritics:
    @pytest.mark.parametrize("text,expected", [
        ("Müller", "Muller"),
        ("Renée", "Renee"),
        ("Ångström", "Angstrom"),
        ("Dvořák", "Dvorak"),
        ("plain", "plain"),
        ("", ""),
    ])
    def test_cases(self, text, expected):
        assert strip_diacritics(text) == expected


class TestFoldCase:
    def test_lowercases(self):
        assert fold_case("McAteer") == "mcateer"

    def test_german_sharp_s(self):
        assert fold_case("Straße") == "strasse"


class TestStripOcrArtifacts:
    def test_curly_apostrophes(self):
        assert strip_ocr_artifacts("O’Brien") == "O'Brien"

    def test_backtick(self):
        assert strip_ocr_artifacts("O`Brien") == "O'Brien"

    def test_pipes_and_brackets(self):
        assert strip_ocr_artifacts("a|b[c]d") == "a b c d"

    def test_whitespace_collapsed(self):
        assert strip_ocr_artifacts("  a   b  ") == "a b"


class TestNormalizationKey:
    def test_apostrophe_dropped(self):
        assert normalization_key("O'Brien") == "obrien"

    def test_hyphen_preserved(self):
        assert normalization_key("Bates-Smith") == "bates-smith"

    def test_punctuation_to_spaces(self):
        assert normalization_key("Tarek F.") == "tarek f"

    def test_diacritics_and_case(self):
        assert normalization_key("MÜLLER") == "muller"

    def test_empty(self):
        assert normalization_key("") == ""

    def test_commas(self):
        assert normalization_key("Smith, John") == "smith john"


class TestSurnameKey:
    def test_hyphen_becomes_space(self):
        assert surname_key("Bates-Smith") == surname_key("Bates Smith")

    def test_differs_from_normalization_key(self):
        assert normalization_key("Bates-Smith") != surname_key("Bates-Smith")


class TestEquivalentNames:
    def test_equivalent_variants(self):
        assert equivalent_names("O’Brien", "O'Brien")
        assert equivalent_names("MCATEER", "McAteer")

    def test_non_equivalent(self):
        assert not equivalent_names("Smith", "Smyth")

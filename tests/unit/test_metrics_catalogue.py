"""Catalogue drift guard: code metrics <-> docs/observability.md.

The metric catalogue is a public contract.  This test extracts every
metric name registered in ``src/repro/`` (counter/gauge/histogram/timed
call sites) and every series documented in the catalogue tables, and
asserts the two sets match exactly — a metric added in code without a
doc row fails, and so does a documented metric that no code emits.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
DOC = REPO_ROOT / "docs" / "observability.md"

#: Metric-like names that appear in docstring examples, not real series.
DOCSTRING_EXAMPLES = {"my.counter", "requests", "smoke.counter"}

#: counter("name"...) / gauge(...) / histogram(...) / timed(...) call
#: sites; DOTALL-style whitespace after the paren covers wrapped calls.
_CALL_RE = re.compile(
    r'\b(?:counter|gauge|histogram|timed)\(\s*"([a-z0-9_.]+)"'
)

#: A catalogue table row's series cell: `name` or `name{label=…}`.
_DOC_ROW_RE = re.compile(r"^\| `([a-z0-9_.]+)(?:\{[^}]*\})?` \|", re.M)


def emitted_metric_names() -> set[str]:
    names: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        names.update(_CALL_RE.findall(path.read_text(encoding="utf-8")))
    return names - DOCSTRING_EXAMPLES


def documented_metric_names() -> set[str]:
    text = DOC.read_text(encoding="utf-8")
    # Only the "## Metric catalogue" section — the span and log-event
    # tables further down use the same row format for non-metric names.
    start = text.index("## Metric catalogue")
    end = text.index("\n## ", start)
    return set(_DOC_ROW_RE.findall(text[start:end]))


def test_inventories_are_nonempty():
    # Guard against a silently broken regex making the drift test vacuous.
    assert len(emitted_metric_names()) > 40
    assert len(documented_metric_names()) > 40


def test_every_emitted_metric_is_documented():
    undocumented = emitted_metric_names() - documented_metric_names()
    assert not undocumented, (
        "metrics emitted in src/repro/ but missing from the "
        f"docs/observability.md catalogue: {sorted(undocumented)}"
    )


def test_every_documented_metric_is_emitted():
    stale = documented_metric_names() - emitted_metric_names()
    assert not stale, (
        "metrics documented in docs/observability.md but never emitted "
        f"in src/repro/: {sorted(stale)}"
    )

"""Unit tests for the repro.analysis package."""

import pytest

from repro.analysis.coauthors import collaboration_graph, collaboration_stats
from repro.analysis.productivity import (
    gini_coefficient,
    head_share,
    productivity,
)
from repro.analysis.trends import emerging_keywords, keyword_trend, top_keywords
from repro.core.entry import PublicationRecord


def rec(i, title, authors, citation):
    return PublicationRecord.create(i, title, authors, citation)


@pytest.fixture()
def corpus():
    return [
        rec(1, "Coal Mining Law", ["Abel, Ann"], "70:1 (1967)"),
        rec(2, "More Coal", ["Abel, Ann"], "72:1 (1969)"),
        rec(3, "Tax Reform", ["Abel, Ann", "Burns, Bo"], "75:1 (1972)"),
        rec(4, "Water Rights", ["Burns, Bo", "Cole, Cy"], "80:1 (1977)"),
        rec(5, "Coal Again", ["Cole, Cy"], "90:1 (1987)"),
        rec(6, "Solo Piece", ["Dale, Di"], "91:1 (1988)"),
    ]


class TestProductivity:
    def test_counts_and_order(self, corpus):
        table = productivity(corpus)
        assert table[0].author.surname == "Abel"
        assert table[0].total == 3
        assert [p.total for p in table] == [3, 2, 2, 1]

    def test_ties_break_by_name(self, corpus):
        table = productivity(corpus)
        assert [p.author.surname for p in table[1:3]] == ["Burns", "Cole"]

    def test_year_span(self, corpus):
        abel = productivity(corpus)[0]
        assert (abel.first_year, abel.last_year) == (1967, 1972)
        assert abel.span_years == 6

    def test_student_pieces_counted(self):
        table = productivity([
            rec(1, "Note", ["Abel, Ann*"], "70:1 (1967)"),
            rec(2, "Article", ["Abel, Ann"], "71:1 (1968)"),
        ])
        assert table[0].total == 2
        assert table[0].student_pieces == 1

    def test_empty(self):
        assert productivity([]) == []


class TestConcentration:
    def test_gini_bounds(self):
        assert gini_coefficient([3, 3, 3]) == pytest.approx(0.0)
        assert 0 < gini_coefficient([1, 2, 3, 10]) < 1

    def test_gini_monotone_in_inequality(self):
        assert gini_coefficient([1, 1, 8]) > gini_coefficient([3, 3, 4])

    def test_head_share(self):
        assert head_share([5, 3, 1, 1], 2) == 0.8
        assert head_share([1], 5) == 1.0


class TestCollaboration:
    def test_graph_shape(self, corpus):
        graph = collaboration_graph(corpus)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 2  # Abel-Burns, Burns-Cole

    def test_node_attributes(self, corpus):
        graph = collaboration_graph(corpus)
        abel = next(n for n, d in graph.nodes(data=True) if d["label"].startswith("Abel"))
        assert graph.nodes[abel]["pieces"] == 3

    def test_edge_weights_accumulate(self):
        graph = collaboration_graph([
            rec(1, "One", ["Abel, Ann", "Burns, Bo"], "70:1 (1967)"),
            rec(2, "Two", ["Abel, Ann", "Burns, Bo"], "71:1 (1968)"),
        ])
        [(a, b, data)] = graph.edges(data=True)
        assert data["weight"] == 2

    def test_stats(self, corpus):
        stats = collaboration_stats(corpus)
        assert stats.authors == 4
        assert stats.collaborations == 2
        assert stats.solo_authors == 1  # Dale
        assert stats.components == 1  # Abel-Burns-Cole chain
        assert stats.largest_component == 3
        assert stats.most_collaborative[0].startswith("Burns")

    def test_stats_empty(self):
        stats = collaboration_stats([])
        assert stats.authors == 0
        assert stats.most_collaborative is None
        assert stats.strongest_pair is None

    def test_duplicate_author_in_byline_no_self_edge(self):
        record = PublicationRecord.create(
            1, "T", ["Abel, Ann", "abel, ann"], "70:1 (1967)"
        )
        graph = collaboration_graph([record])
        assert graph.number_of_edges() == 0  # same identity key: no self-loop


class TestTrends:
    def test_keyword_trend(self, corpus):
        trend = keyword_trend(corpus, "coal")
        assert trend.by_year == {1967: 1, 1969: 1, 1987: 1}
        assert trend.total == 3
        assert trend.in_span(1960, 1970) == 2

    def test_keyword_case_insensitive(self, corpus):
        assert keyword_trend(corpus, "COAL").total == 3

    def test_top_keywords(self, corpus):
        top = top_keywords(corpus, k=1)
        assert top == [("coal", 3)]

    def test_top_keywords_span(self, corpus):
        top = top_keywords(corpus, first=1975, last=1990, k=3)
        assert ("coal", 1) in top

    def test_top_keywords_stopwords(self, corpus):
        top = top_keywords(corpus, k=5, stopwords={"coal"})
        assert all(word != "coal" for word, _ in top)

    def test_emerging(self, corpus):
        rows = emerging_keywords(corpus, split_year=1980, min_late_count=1, k=5)
        words = [w for w, _, _ in rows]
        assert "coal" in words or "again" in words

    def test_reference_corpus_is_about_coal(self, reference_records):
        top = top_keywords(reference_records, k=3, stopwords={"west", "virginia", "law"})
        assert top[0][0] == "coal"
        assert top[0][1] >= 20

"""Unit tests for repro.storage.schema."""

import pytest

from repro.errors import ValidationError
from repro.storage.schema import Field, FieldType, Schema


class TestFieldType:
    @pytest.mark.parametrize("ft,value", [
        (FieldType.STRING, "x"),
        (FieldType.INT, 3),
        (FieldType.FLOAT, 3.5),
        (FieldType.FLOAT, 3),           # ints are acceptable floats
        (FieldType.BOOL, True),
        (FieldType.STRING_LIST, ["a", "b"]),
        (FieldType.STRING_LIST, []),
    ])
    def test_accepts(self, ft, value):
        assert ft.check(value)

    @pytest.mark.parametrize("ft,value", [
        (FieldType.STRING, 3),
        (FieldType.INT, "3"),
        (FieldType.INT, True),          # bools are not ints
        (FieldType.FLOAT, "3.5"),
        (FieldType.FLOAT, True),
        (FieldType.BOOL, 1),
        (FieldType.STRING_LIST, "abc"),
        (FieldType.STRING_LIST, [1, 2]),
    ])
    def test_rejects(self, ft, value):
        assert not ft.check(value)


class TestField:
    def test_required_missing(self):
        field = Field("x", FieldType.INT)
        with pytest.raises(ValidationError) as excinfo:
            field.validate({})
        assert excinfo.value.field == "x"

    def test_optional_missing_ok(self):
        Field("x", FieldType.INT, required=False).validate({})

    def test_none_counts_as_missing(self):
        Field("x", FieldType.INT, required=False).validate({"x": None})
        with pytest.raises(ValidationError):
            Field("x", FieldType.INT).validate({"x": None})

    def test_wrong_type(self):
        with pytest.raises(ValidationError):
            Field("x", FieldType.INT).validate({"x": "3"})


class TestSchema:
    def make(self) -> Schema:
        return Schema(
            [Field("id", FieldType.INT), Field("name", FieldType.STRING, required=False)],
            primary_key="id",
        )

    def test_validate_ok(self):
        self.make().validate({"id": 1, "name": "a"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError):
            self.make().validate({"id": 1, "bogus": 2})

    def test_primary_key_of(self):
        assert self.make().primary_key_of({"id": 7}) == 7

    def test_primary_key_missing(self):
        with pytest.raises(ValidationError):
            self.make().primary_key_of({"name": "x"})

    def test_duplicate_field_names(self):
        with pytest.raises(ValidationError):
            Schema([Field("a", FieldType.INT), Field("a", FieldType.INT)], primary_key="a")

    def test_unknown_primary_key(self):
        with pytest.raises(ValidationError):
            Schema([Field("a", FieldType.INT)], primary_key="b")

    def test_optional_primary_key_rejected(self):
        with pytest.raises(ValidationError):
            Schema([Field("a", FieldType.INT, required=False)], primary_key="a")

    def test_field_lookup(self):
        schema = self.make()
        assert schema.field("id").type is FieldType.INT
        with pytest.raises(ValidationError):
            schema.field("nope")

    def test_has_field(self):
        schema = self.make()
        assert schema.has_field("name")
        assert not schema.has_field("nope")

    def test_field_names_ordered(self):
        assert self.make().field_names == ("id", "name")

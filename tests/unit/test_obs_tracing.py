"""Unit tests for repro.obs.tracing: span nesting, attribute capture,
ring-buffer retention, disabled-tracer no-ops, and thread isolation."""

import threading

import pytest

from repro.obs.tracing import Span, Tracer


@pytest.fixture
def tracer():
    return Tracer(capacity=16)


class TestNesting:
    def test_children_attach_to_the_enclosing_span(self, tracer):
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        root = tracer.finished_spans()[-1]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["middle", "sibling"]
        assert [c.name for c in root.children[0].children] == ["inner"]

    def test_only_roots_land_in_the_buffer(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.finished_spans()]
        assert names == ["outer"]

    def test_current_span_tracks_the_stack(self, tracer):
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_exception_still_finishes_and_records(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        root = tracer.finished_spans()[-1]
        assert root.name == "outer"
        assert root.finished
        assert root.children[0].finished


class TestAttributes:
    def test_creation_kwargs_and_set_attribute(self, tracer):
        with tracer.span("op", records=42) as span:
            span.set_attribute("rows", 7)
        root = tracer.finished_spans()[-1]
        assert root.attributes == {"records": 42, "rows": 7}

    def test_duration_is_positive_and_monotonic(self, tracer):
        with tracer.span("op"):
            pass
        root = tracer.finished_spans()[-1]
        assert root.duration_s >= 0

    def test_to_dict_shape(self, tracer):
        with tracer.span("outer", n=1):
            with tracer.span("inner"):
                pass
        d = tracer.finished_spans()[-1].to_dict()
        assert set(d) == {"name", "duration_s", "attributes", "children"}
        assert d["name"] == "outer"
        assert d["attributes"] == {"n": 1}
        assert d["children"][0]["name"] == "inner"

    def test_tree_rendering(self, tracer):
        with tracer.span("outer", n=1):
            with tracer.span("inner"):
                pass
        text = tracer.finished_spans()[-1].tree()
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert "n=1" in lines[0]
        assert lines[1].startswith("  inner")

    def test_iter_spans_is_depth_first(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        root = tracer.finished_spans()[-1]
        assert [s.name for s in root.iter_spans()] == ["a", "b", "c", "d"]


class TestRingBuffer:
    def test_eviction_keeps_most_recent(self):
        tracer = Tracer(capacity=3)
        for i in range(7):
            with tracer.span(f"span-{i}"):
                pass
        names = [s.name for s in tracer.finished_spans()]
        assert names == ["span-4", "span-5", "span-6"]

    def test_last_root(self, tracer):
        assert tracer.last_root() is None
        with tracer.span("only"):
            pass
        assert tracer.last_root().name == "only"

    def test_reset_drops_retained_spans(self, tracer):
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.finished_spans() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestDisabled:
    def test_disabled_tracer_returns_noop_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("op", k=1) as span:
            span.set_attribute("ignored", True)
        assert tracer.finished_spans() == []

    def test_disable_then_enable(self, tracer):
        tracer.disable()
        with tracer.span("invisible"):
            pass
        tracer.enable()
        with tracer.span("visible"):
            pass
        assert [s.name for s in tracer.finished_spans()] == ["visible"]


class TestThreads:
    def test_threads_get_independent_stacks(self, tracer):
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait()  # both spans open simultaneously
                with tracer.span(f"{name}.child"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = {s.name: s for s in tracer.finished_spans()}
        assert set(roots) == {"t0", "t1"}
        for name, root in roots.items():
            assert [c.name for c in root.children] == [f"{name}.child"]


class TestSpanStandalone:
    def test_span_records_wall_time(self):
        span = Span("manual", {})
        assert not span.finished
        assert span.duration_s >= 0


class TestRingBufferStress:
    """Eviction and ordering guarantees under concurrent writers."""

    def test_eviction_keeps_newest_roots(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            with tracer.span(f"root-{i}"):
                pass
        names = [s.name for s in tracer.finished_spans()]
        assert names == ["root-6", "root-7", "root-8", "root-9"]
        assert tracer.last_root().name == "root-9"

    def test_finished_spans_ordering_under_concurrent_writers(self):
        tracer = Tracer(capacity=64)
        threads_n, spans_per_thread = 8, 50
        start = threading.Barrier(threads_n)

        def work(tid: int) -> None:
            start.wait()
            for i in range(spans_per_thread):
                with tracer.span(f"t{tid}", i=i):
                    with tracer.span(f"t{tid}.child"):
                        pass

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        finished = tracer.finished_spans()
        # Ring holds exactly its capacity once more roots finished than fit.
        assert len(finished) == 64
        # Every retained root is intact: finished, timed, one child.
        for root in finished:
            assert root.finished
            assert root.duration_s >= 0
            assert [c.name for c in root.children] == [f"{root.name}.child"]
        # Oldest-first within each producer thread: the sequence numbers a
        # single thread contributed must appear in increasing order.
        per_thread: dict[str, list[int]] = {}
        for root in finished:
            per_thread.setdefault(root.name, []).append(root.attributes["i"])
        assert per_thread  # at least one thread's tail survived
        for name, seq in per_thread.items():
            assert seq == sorted(seq), f"{name} out of order: {seq}"
        # The very newest retained spans are the tail of some thread's run.
        assert finished[-1].attributes["i"] == spans_per_thread - 1

    def test_eviction_while_reading(self):
        tracer = Tracer(capacity=8)
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                with tracer.span("w"):
                    pass

        reader_errors: list[Exception] = []

        def reader() -> None:
            try:
                for _ in range(200):
                    spans = tracer.finished_spans()
                    assert len(spans) <= 8
                    assert all(s.finished for s in spans)
            except Exception as exc:  # pragma: no cover - diagnostic
                reader_errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        reader_thread = threading.Thread(target=reader)
        writer_thread.start()
        reader_thread.start()
        reader_thread.join()
        stop.set()
        writer_thread.join()
        assert reader_errors == []

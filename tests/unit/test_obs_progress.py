"""Progress tracking: trackers, the registry, and the stderr bar."""

import io
import threading

from repro.obs import progress
from repro.obs.progress import ProgressBar, ProgressRegistry, ProgressTracker


class TestProgressTracker:
    def test_tick_accumulates(self):
        tracker = ProgressTracker("op", total=10)
        tracker.tick()
        tracker.tick(4)
        assert tracker.done == 5
        assert tracker.total == 10

    def test_snapshot_shape(self):
        tracker = ProgressTracker("op", total=200, shard=3)
        tracker.tick(50)
        snap = tracker.snapshot()
        assert snap["name"] == "op"
        assert snap["done"] == 50
        assert snap["total"] == 200
        assert snap["percent"] == 25.0
        assert snap["attrs"] == {"shard": 3}
        assert snap["started_ts"].endswith("Z")
        assert not snap["finished"]

    def test_unknown_total_has_no_percent_or_eta(self):
        tracker = ProgressTracker("op")
        tracker.tick(7)
        snap = tracker.snapshot()
        assert snap["total"] is None
        assert snap["percent"] is None
        assert snap["eta_s"] is None
        assert tracker.eta_s() is None

    def test_eta_from_observed_rate(self):
        tracker = ProgressTracker("op", total=100)
        tracker.tick(50)
        eta = tracker.eta_s()
        # Half the work at the observed rate: ETA ~ elapsed so far.
        assert eta is not None and eta >= 0.0

    def test_context_manager_finishes_ok(self):
        with ProgressTracker("op", total=1) as tracker:
            tracker.tick()
        assert tracker.finished
        assert tracker.snapshot()["ok"]

    def test_context_manager_records_failure(self):
        tracker = ProgressTracker("op", total=1)
        try:
            with tracker:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracker.finished
        assert not tracker.snapshot()["ok"]

    def test_finish_is_idempotent(self):
        tracker = ProgressTracker("op")
        tracker.finish(ok=True)
        tracker.finish(ok=False)  # ignored: already finished
        assert tracker.snapshot()["ok"]

    def test_listeners_see_ticks_and_finish(self):
        seen = []
        tracker = ProgressTracker("op", total=2)
        tracker.subscribe(lambda t: seen.append((t.done, t.finished)))
        tracker.tick()
        tracker.tick()
        tracker.finish()
        assert seen == [(1, False), (2, False), (2, True)]

    def test_concurrent_ticks_from_many_threads(self):
        tracker = ProgressTracker("op", total=4000)
        def work():
            for _ in range(1000):
                tracker.tick()
        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracker.done == 4000


class TestProgressRegistry:
    def test_active_then_recent(self):
        registry = ProgressRegistry()
        with registry.start("op-a", total=5) as tracker:
            tracker.tick(5)
            snap = registry.snapshot()
            assert [op["name"] for op in snap["active"]] == ["op-a"]
            assert snap["recent"] == []
        snap = registry.snapshot()
        assert snap["active"] == []
        assert [op["name"] for op in snap["recent"]] == ["op-a"]
        assert snap["recent"][0]["done"] == 5

    def test_recent_ring_is_bounded(self):
        registry = ProgressRegistry(keep=3)
        for i in range(6):
            with registry.start(f"op-{i}"):
                pass
        names = [op["name"] for op in registry.snapshot()["recent"]]
        assert names == ["op-5", "op-4", "op-3"]  # newest first

    def test_default_registry_module_helpers(self):
        progress.reset()
        with progress.start("helper-op", total=1) as tracker:
            tracker.tick()
        snap = progress.snapshot()
        assert [op["name"] for op in snap["recent"]] == ["helper-op"]
        progress.reset()
        assert progress.snapshot() == {"active": [], "recent": []}


class TestProgressBar:
    def test_renders_bar_and_final_line(self):
        stream = io.StringIO()
        bar = ProgressBar(stream, width=10, min_interval_s=0.0)
        with ProgressTracker("storage.checkpoint", total=4) as tracker:
            tracker.subscribe(bar)
            tracker.tick(2)
        output = stream.getvalue()
        assert "storage.checkpoint" in output
        assert "[#####-----] 2/4 (50%)" in output
        assert "done in" in output
        assert output.endswith("\n")  # final render is newline-terminated

    def test_rate_limited_renders(self):
        stream = io.StringIO()
        bar = ProgressBar(stream, min_interval_s=3600.0)
        tracker = ProgressTracker("op", total=100)
        tracker.subscribe(bar)
        tracker.tick()  # first render
        tracker.tick()  # suppressed: inside the interval
        assert stream.getvalue().count("\r") == 1

    def test_unknown_total_renders_count_only(self):
        stream = io.StringIO()
        bar = ProgressBar(stream, min_interval_s=0.0)
        tracker = ProgressTracker("fsck", total=None)
        tracker.subscribe(bar)
        tracker.tick(12)
        assert "12 done" in stream.getvalue()

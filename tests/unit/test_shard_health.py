"""ShardHealthMachine: transitions, thresholds, persistence, classification."""

import pytest

import errno

from repro.errors import CorruptLogError, MultiShardError, ShardUnavailableError, StorageError
from repro.storage import (
    DEGRADED,
    HEALTH_LEVELS,
    HEALTHY,
    QUARANTINED,
    REPAIRING,
    ShardHealthMachine,
    classify_error,
)
from repro.storage.faultfs import TransientInjectedFault
from repro.storage.pages import PageCorruptionError


def _blip() -> OSError:
    return OSError(errno.EAGAIN, "try again")


class TestClassifyError:
    def test_corruption_family(self):
        assert classify_error(PageCorruptionError(3, "bad CRC")) == "corruption"
        assert classify_error(CorruptLogError("bad frame")) == "corruption"

    def test_transient(self):
        assert classify_error(_blip()) == "transient"
        assert classify_error(_blip()) == "transient"

    def test_io_default(self):
        assert classify_error(OSError(5, "I/O error")) == "io"
        assert classify_error(StorageError("anything else")) == "io"


class TestTransitions:
    def test_initial_state_is_healthy(self):
        machine = ShardHealthMachine(3)
        for i in range(3):
            assert machine.state(i) == HEALTHY
            assert machine.is_serving(i)

    def test_corruption_quarantines_immediately(self):
        machine = ShardHealthMachine(2)
        state = machine.record_error(1, PageCorruptionError(3, "CRC mismatch"))
        assert state == QUARANTINED
        assert not machine.is_serving(1)
        assert machine.quarantined_shards() == (1,)
        # Sibling untouched.
        assert machine.state(0) == HEALTHY

    def test_windowed_errors_degrade_then_quarantine(self):
        machine = ShardHealthMachine(1, window=10, min_events=5)
        # Below min_events nothing moves.
        for _ in range(4):
            machine.record_error(0, _blip())
        assert machine.state(0) == HEALTHY
        machine.record_error(0, _blip())
        assert machine.state(0) == DEGRADED
        # Degraded shards keep serving (partial mode still fans out).
        assert machine.is_serving(0)
        for _ in range(5):
            machine.record_error(0, _blip())
        assert machine.state(0) == QUARANTINED
        assert not machine.is_serving(0)

    def test_successes_heal_degraded(self):
        machine = ShardHealthMachine(
            1, window=10, min_events=5, recovery_successes=3
        )
        for _ in range(5):
            machine.record_error(0, _blip())
        assert machine.state(0) == DEGRADED
        for _ in range(3):
            machine.record_success(0)
        assert machine.state(0) == HEALTHY

    def test_quarantine_is_sticky_under_success(self):
        # A quarantined shard must NOT heal from successes; only an
        # explicit readmit (post-repair) returns it to service.
        machine = ShardHealthMachine(1)
        machine.quarantine(0, "operator")
        for _ in range(100):
            machine.record_success(0)
        assert machine.state(0) == QUARANTINED

    def test_repair_cycle(self):
        machine = ShardHealthMachine(1)
        machine.quarantine(0, "scrub found damage")
        machine.start_repair(0)
        assert machine.state(0) == REPAIRING
        assert not machine.is_serving(0)
        machine.repair_failed(0, "fsck exit 2")
        assert machine.state(0) == QUARANTINED
        machine.start_repair(0)
        machine.readmit(0, "repair verified")
        assert machine.state(0) == HEALTHY

    def test_start_repair_requires_quarantine(self):
        machine = ShardHealthMachine(1)
        with pytest.raises(ValueError, match="not quarantined"):
            machine.start_repair(0)

    def test_readmit_clears_error_window(self):
        machine = ShardHealthMachine(1, window=10, min_events=5)
        for _ in range(5):
            machine.record_error(0, _blip())
        machine.quarantine(0, "operator")
        machine.readmit(0)
        # Old errors are gone: one new error must not re-degrade.
        machine.record_error(0, _blip())
        assert machine.state(0) == HEALTHY

    def test_on_change_hook_sees_every_transition(self):
        seen = []
        machine = ShardHealthMachine(
            2, on_change=lambda *args: seen.append(args)
        )
        machine.quarantine(1, "operator")
        machine.start_repair(1)
        machine.readmit(1, "done")
        assert [s[:3] for s in seen] == [
            (1, HEALTHY, QUARANTINED),
            (1, QUARANTINED, REPAIRING),
            (1, REPAIRING, HEALTHY),
        ]


class TestPersistence:
    def test_to_dict_only_records_non_healthy(self):
        machine = ShardHealthMachine(4)
        machine.quarantine(2, "bit rot")
        doc = machine.to_dict()
        assert set(doc) == {"2"}
        assert doc["2"]["state"] == QUARANTINED
        assert doc["2"]["reason"] == "bit rot"

    def test_round_trip(self):
        machine = ShardHealthMachine(4)
        machine.quarantine(1, "bit rot")
        restored = ShardHealthMachine(4)
        restored.load(machine.to_dict())
        assert restored.state(1) == QUARANTINED
        assert restored.reason(1) == "bit rot"
        assert restored.state(0) == HEALTHY

    def test_interrupted_repair_loads_as_quarantined(self):
        machine = ShardHealthMachine(2)
        machine.quarantine(0, "damage")
        machine.start_repair(0)
        restored = ShardHealthMachine(2)
        restored.load(machine.to_dict())
        # A crash mid-repair must not leave the shard serving or stuck
        # in "repairing" — the repair has to be re-run from quarantine.
        assert restored.state(0) == QUARANTINED

    def test_load_ignores_unknown_shards_and_states(self):
        machine = ShardHealthMachine(2)
        machine.load({"9": {"state": QUARANTINED}, "0": {"state": "bogus"}})
        assert machine.state(0) == HEALTHY
        assert machine.state(1) == HEALTHY


class TestRows:
    def test_rows_shape(self):
        machine = ShardHealthMachine(2)
        machine.quarantine(1, "why")
        rows = machine.rows()
        assert len(rows) == 2
        assert rows[0]["shard"] == 0 and rows[0]["state"] == HEALTHY
        assert rows[1]["state"] == QUARANTINED
        assert rows[1]["reason"] == "why"

    def test_health_levels_cover_all_states(self):
        assert set(HEALTH_LEVELS) == {HEALTHY, DEGRADED, QUARANTINED, REPAIRING}
        assert HEALTH_LEVELS[HEALTHY] == 0
        assert HEALTH_LEVELS[QUARANTINED] == 2


class TestErrorTypes:
    def test_multi_shard_error_names_every_shard(self):
        exc = MultiShardError({3: OSError("x"), 1: ValueError("y")})
        assert "shard 1" in str(exc) and "shard 3" in str(exc)
        assert set(exc.failures) == {1, 3}

    def test_shard_unavailable_carries_context(self):
        exc = ShardUnavailableError(2, QUARANTINED, "bit rot")
        assert exc.shard == 2 and exc.state == QUARANTINED
        assert "shard 2 is quarantined" in str(exc)

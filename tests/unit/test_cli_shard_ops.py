"""CLI shard fault-tolerance commands: scrub, quarantine, readmit."""

import json

import pytest

from repro.cli import main
from repro.corpus.wvlr import PUBLICATION_SCHEMA, populate_store
from repro.storage import ShardedStore
from repro.storage.faultfs import flip_bit_on_disk
from repro.storage.pages import PAGE_SIZE


@pytest.fixture()
def root(tmp_path):
    store = ShardedStore(
        PUBLICATION_SCHEMA, tmp_path / "db", shards=3, data_format="paged"
    )
    populate_store(store)
    store.checkpoint()
    store.close()
    return tmp_path / "db"


class TestScrubCommand:
    def test_clean_store_exits_zero(self, root, capsys):
        assert main(["scrub", str(root)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_json_shape(self, root, capsys):
        assert main(["scrub", str(root), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["scrub"]["clean"] is True
        assert len(doc["scrub"]["shards"]) == 3
        assert [row["state"] for row in doc["health"]] == ["healthy"] * 3

    def test_damage_exits_one_and_quarantines(self, root, capsys):
        snap = root / "shard-01" / "snapshot.json"
        pages = root / "shard-01" / json.loads(snap.read_text())["pages"]
        flip_bit_on_disk(pages, byte_index=1 * PAGE_SIZE + 80, bit=6)
        assert main(["scrub", str(root)]) == 1
        out = capsys.readouterr().out
        assert "shard 1: quarantined" in out

    def test_not_a_sharded_root_exits_two(self, tmp_path, capsys):
        assert main(["scrub", str(tmp_path)]) == 2
        assert "not a sharded store root" in capsys.readouterr().err


class TestQuarantineReadmit:
    def test_round_trip_persists_across_invocations(self, root, capsys):
        assert main(
            ["quarantine", str(root), "1", "--reason", "operator drill"]
        ) == 0
        assert "shard 1: quarantined" in capsys.readouterr().err
        # A fresh scrub invocation (separate open) sees the quarantine.
        main(["scrub", str(root), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["health"][1]["state"] == "quarantined"
        assert doc["health"][1]["reason"] == "operator drill"

        assert main(["readmit", str(root), "1"]) == 0
        err = capsys.readouterr().err
        assert "shard 1: healthy" in err
        main(["scrub", str(root), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["health"][1]["state"] == "healthy"

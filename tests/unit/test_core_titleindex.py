"""Unit tests for repro.core.titleindex."""

import pytest

from repro.core.entry import PublicationRecord
from repro.core.titleindex import (
    TitleIndexBuilder,
    build_title_index,
    title_filing_key,
)


def rec(i, title, citation="90:1 (1987)", authors=("A, B.",)):
    return PublicationRecord.create(i, title, list(authors), citation)


class TestFilingKey:
    @pytest.mark.parametrize("title,key", [
        ("The Law of Coal", "law of coal"),
        ("A Miner's Bill of Rights", "miners bill of rights"),
        ("An Economic Analysis", "economic analysis"),
        ("Theory of Law", "theory of law"),     # "The" only as a whole word
        ("Anatomy of a Case", "anatomy of a case"),
        ("The", "the"),                          # lone article is not skipped
    ])
    def test_leading_article_rule(self, title, key):
        assert title_filing_key(title) == key

    def test_quotes_ignored(self):
        assert title_filing_key('"All My Friends" Essay').startswith("all")

    def test_diacritics_fold(self):
        assert title_filing_key("Études Juridiques") == "etudes juridiques"

    def test_only_first_article_skipped(self):
        assert title_filing_key("The A Team") == "a team"


class TestBuilder:
    def test_orders_by_filing_key(self):
        idx = build_title_index([
            rec(1, "The Zebra Question"),
            rec(2, "Amicus Practice"),
            rec(3, "A Beacon Case"),
        ])
        assert [e.title for e in idx] == [
            "Amicus Practice", "A Beacon Case", "The Zebra Question",
        ]

    def test_one_row_per_record_not_per_author(self):
        idx = build_title_index([
            rec(1, "Joint Work", authors=("A, B.", "C, D.", "E, F.")),
        ])
        assert len(idx) == 1
        assert len(idx.entries[0].authors) == 3

    def test_dedup_identical(self):
        idx = build_title_index([rec(1, "Same"), rec(2, "Same")])
        assert len(idx) == 1

    def test_same_title_different_citation_kept(self):
        idx = build_title_index([
            rec(1, "Same", "90:1 (1987)"),
            rec(2, "Same", "91:1 (1988)"),
        ])
        assert len(idx) == 2

    def test_chaining(self):
        builder = TitleIndexBuilder()
        assert builder.add_record(rec(1, "T")) is builder
        assert builder.add_records([rec(2, "U")]) is builder
        assert len(builder.build()) == 2

    def test_letters(self):
        idx = build_title_index([rec(1, "The Zebra"), rec(2, "Amicus")])
        assert idx.letters() == ["A", "Z"]

    def test_student_marker_preserved(self):
        idx = build_title_index([
            PublicationRecord.create(1, "Note", ["A, B.*"], "90:1 (1987)"),
        ])
        assert idx.entries[0].is_student_work is True


class TestRendering:
    @pytest.fixture()
    def index(self):
        return build_title_index([
            rec(1, "The Zebra Question Which Has Quite A Long Title Indeed For Wrapping"),
            rec(2, "Amicus Practice", authors=("Smith, Jo A.", "Lee, Bo R.")),
        ])

    def test_text_contains_citation(self, index):
        out = index.render_text()
        assert "90:1 (1987)" in out

    def test_text_lists_authors_indented(self, index):
        out = index.render_text()
        assert "    Smith, Jo A.; Lee, Bo R." in out

    def test_text_wraps_long_titles(self, index):
        out = index.render_text(width=60)
        assert any(line.startswith("Indeed") or "Wrapping" in line for line in out.splitlines())

    def test_markdown_table(self, index):
        out = index.render_markdown()
        assert out.splitlines()[0] == "| Title | Authors | Citation |"
        assert "| Amicus Practice " in out

    def test_reference_corpus_builds(self, reference_records):
        idx = build_title_index(reference_records)
        assert len(idx) == len(reference_records)
        keys = [title_filing_key(e.title) for e in idx]
        assert keys == sorted(keys)

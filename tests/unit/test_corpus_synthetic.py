"""Unit tests for repro.corpus.synthetic."""

import pytest

from repro.corpus.synthetic import (
    SyntheticCorpus,
    SyntheticCorpusConfig,
    generate_records,
)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = SyntheticCorpus(SyntheticCorpusConfig(size=100, seed=42)).records()
        b = SyntheticCorpus(SyntheticCorpusConfig(size=100, seed=42)).records()
        assert a == b

    def test_different_seed_differs(self):
        a = SyntheticCorpus(SyntheticCorpusConfig(size=100, seed=1)).records()
        b = SyntheticCorpus(SyntheticCorpusConfig(size=100, seed=2)).records()
        assert a != b

    def test_records_cached(self):
        corpus = SyntheticCorpus(SyntheticCorpusConfig(size=10, seed=0))
        assert corpus.records() is corpus.records()

    def test_generate_records_shorthand(self):
        assert len(generate_records(25, seed=3)) == 25


class TestShape:
    @pytest.fixture(scope="class")
    def corpus(self):
        return SyntheticCorpus(SyntheticCorpusConfig(size=1000, seed=7))

    def test_size(self, corpus):
        assert len(corpus.records()) == 1000

    def test_ids_sequential(self, corpus):
        assert [r.record_id for r in corpus.records()] == list(range(1, 1001))

    def test_student_share_near_config(self, corpus):
        share = sum(r.is_student_work for r in corpus.records()) / 1000
        assert 0.40 < share < 0.55

    def test_coauthor_distribution(self, corpus):
        counts = [len(r.authors) for r in corpus.records()]
        assert max(counts) <= 4
        assert min(counts) == 1
        assert sum(1 for c in counts if c > 1) > 50

    def test_no_duplicate_author_within_record(self, corpus):
        for record in corpus.records():
            keys = [a.identity_key() for a in record.authors]
            assert len(set(keys)) == len(keys)

    def test_volume_year_coherent(self, corpus):
        cfg = corpus.config
        for record in corpus.records():
            offset = record.citation.volume - cfg.first_volume
            assert 0 <= offset < cfg.volumes
            assert record.citation.year in (
                cfg.first_year + offset,
                cfg.first_year + offset + 1,
            )

    def test_heavy_tail_productivity(self, corpus):
        from collections import Counter

        author_counts = Counter(
            a.identity_key() for r in corpus.records() for a in r.authors
        )
        counts = sorted(author_counts.values(), reverse=True)
        # the most productive author writes many times the median
        assert counts[0] >= 5 * max(1, counts[len(counts) // 2])

    def test_titles_non_empty_and_varied(self, corpus):
        titles = {r.title for r in corpus.records()}
        assert all(titles)
        assert len(titles) > 300


class TestNoisyVariants:
    def test_ground_truth_covers_all(self):
        corpus = SyntheticCorpus(SyntheticCorpusConfig(size=50, seed=3, author_pool=20))
        names, truth = corpus.noisy_variants(variants_per_author=3)
        assert len(names) == 60
        flattened = sorted(i for group in truth for i in group)
        assert flattened == list(range(60))

    def test_first_variant_is_clean(self):
        corpus = SyntheticCorpus(SyntheticCorpusConfig(size=50, seed=3, author_pool=20))
        names, truth = corpus.noisy_variants(noise_rate=8.0)
        clean_surnames = {n.surname for n in corpus._authors}
        for group in truth:
            assert names[group[0]].surname in clean_surnames

    def test_deterministic(self):
        def run():
            corpus = SyntheticCorpus(SyntheticCorpusConfig(size=30, seed=5, author_pool=10))
            names, _ = corpus.noisy_variants()
            return [n.surname for n in names]

        assert run() == run()

    def test_noise_rate_zero_all_clean(self):
        corpus = SyntheticCorpus(SyntheticCorpusConfig(size=30, seed=5, author_pool=10))
        names, truth = corpus.noisy_variants(noise_rate=0.0)
        for group in truth:
            surnames = {names[i].surname for i in group}
            assert len(surnames) == 1

"""Unit tests for repro.storage.store — CRUD, indexes, durability."""

import pytest

from repro.errors import (
    DuplicateKeyError,
    RecordNotFoundError,
    StorageError,
    ValidationError,
)
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.store import IndexKind, RecordStore


def _record(i: int, name: str = "x", year: int = 1990, **extra) -> dict:
    return {"id": i, "name": name, "year": year, **extra}


class TestCrud:
    def test_insert_get(self, memory_store):
        memory_store.insert(_record(1, "a"))
        assert memory_store.get(1)["name"] == "a"

    def test_get_returns_copy(self, memory_store):
        memory_store.insert(_record(1))
        copy = memory_store.get(1)
        copy["name"] = "mutated"
        assert memory_store.get(1)["name"] == "x"

    def test_insert_duplicate(self, memory_store):
        memory_store.insert(_record(1))
        with pytest.raises(DuplicateKeyError):
            memory_store.insert(_record(1))

    def test_insert_validates(self, memory_store):
        with pytest.raises(ValidationError):
            memory_store.insert({"id": 1, "name": 5, "year": 1990})

    def test_insert_unknown_field(self, memory_store):
        with pytest.raises(ValidationError):
            memory_store.insert(_record(1, bogus="y"))

    def test_get_missing(self, memory_store):
        with pytest.raises(RecordNotFoundError):
            memory_store.get(404)

    def test_delete(self, memory_store):
        memory_store.insert(_record(1))
        memory_store.delete(1)
        assert 1 not in memory_store
        with pytest.raises(RecordNotFoundError):
            memory_store.delete(1)

    def test_upsert_insert_path(self, memory_store):
        assert memory_store.upsert(_record(1)) is False
        assert len(memory_store) == 1

    def test_upsert_replace_path(self, memory_store):
        memory_store.insert(_record(1, "a"))
        assert memory_store.upsert(_record(1, "b")) is True
        assert memory_store.get(1)["name"] == "b"
        assert len(memory_store) == 1

    def test_update(self, memory_store):
        memory_store.insert(_record(1, "a", 1990))
        updated = memory_store.update(1, {"name": "b"})
        assert updated["name"] == "b"
        assert memory_store.get(1)["year"] == 1990

    def test_update_cannot_change_pk(self, memory_store):
        memory_store.insert(_record(1))
        with pytest.raises(ValidationError):
            memory_store.update(1, {"id": 2})

    def test_scan(self, memory_store):
        for i in range(5):
            memory_store.insert(_record(i, year=1990 + i))
        assert len(list(memory_store.scan())) == 5
        filtered = list(memory_store.scan(lambda r: r["year"] >= 1993))
        assert [r["id"] for r in filtered] == [3, 4]

    def test_keys_insertion_order(self, memory_store):
        for i in (3, 1, 2):
            memory_store.insert(_record(i))
        assert list(memory_store.keys()) == [3, 1, 2]


class TestIndexes:
    def test_create_index_unknown_field(self, memory_store):
        with pytest.raises(ValidationError):
            memory_store.create_index("bogus")

    def test_index_built_over_existing_data(self, memory_store):
        memory_store.insert(_record(1, "a"))
        memory_store.insert(_record(2, "b"))
        memory_store.create_index("name", IndexKind.HASH)
        assert [r["id"] for r in memory_store.find_by("name", "a")] == [1]

    def test_index_maintained_on_write(self, memory_store):
        memory_store.create_index("name", IndexKind.HASH)
        memory_store.insert(_record(1, "a"))
        memory_store.insert(_record(2, "a"))
        memory_store.delete(1)
        assert [r["id"] for r in memory_store.find_by("name", "a")] == [2]

    def test_index_maintained_on_update(self, memory_store):
        memory_store.create_index("name", IndexKind.HASH)
        memory_store.insert(_record(1, "a"))
        memory_store.update(1, {"name": "b"})
        assert memory_store.find_by("name", "a") == []
        assert [r["id"] for r in memory_store.find_by("name", "b")] == [1]

    def test_redeclare_same_kind_noop(self, memory_store):
        memory_store.create_index("name", IndexKind.HASH)
        memory_store.create_index("name", IndexKind.HASH)
        assert memory_store.index_kind("name") is IndexKind.HASH

    def test_redeclare_different_kind_errors(self, memory_store):
        memory_store.create_index("name", IndexKind.HASH)
        with pytest.raises(StorageError):
            memory_store.create_index("name", IndexKind.BTREE)

    def test_drop_index(self, memory_store):
        memory_store.create_index("name")
        memory_store.drop_index("name")
        assert not memory_store.has_index("name")
        with pytest.raises(StorageError):
            memory_store.drop_index("name")

    def test_find_by_without_index_scans(self, memory_store):
        memory_store.insert(_record(1, "a"))
        assert [r["id"] for r in memory_store.find_by("name", "a")] == [1]

    def test_list_field_indexes_every_element(self, memory_store):
        memory_store.create_index("tags", IndexKind.HASH)
        memory_store.insert(_record(1, tags=["coal", "tax"]))
        memory_store.insert(_record(2, tags=["coal"]))
        assert [r["id"] for r in memory_store.find_by("tags", "coal")] == [1, 2]
        assert [r["id"] for r in memory_store.find_by("tags", "tax")] == [1]

    def test_list_field_duplicate_elements_deduped(self, memory_store):
        memory_store.create_index("tags", IndexKind.HASH)
        memory_store.insert(_record(1, tags=["coal", "coal"]))
        assert [r["id"] for r in memory_store.find_by("tags", "coal")] == [1]

    def test_range_by_btree(self, memory_store):
        memory_store.create_index("year", IndexKind.BTREE)
        for i, year in enumerate([1970, 1985, 1990, 1993]):
            memory_store.insert(_record(i, year=year))
        got = [r["year"] for r in memory_store.range_by("year", 1980, 1991)]
        assert got == [1985, 1990]

    def test_range_by_exclusive(self, memory_store):
        memory_store.create_index("year", IndexKind.BTREE)
        for i, year in enumerate([1980, 1985, 1990]):
            memory_store.insert(_record(i, year=year))
        got = [r["year"] for r in memory_store.range_by(
            "year", 1980, 1990, include_low=False, include_high=False)]
        assert got == [1985]

    def test_range_by_without_index_scans_sorted(self, memory_store):
        for i, year in enumerate([1990, 1970, 1985]):
            memory_store.insert(_record(i, year=year))
        got = [r["year"] for r in memory_store.range_by("year", 1971, None)]
        assert got == [1985, 1990]

    def test_range_by_hash_index_falls_back_to_scan(self, memory_store):
        memory_store.create_index("year", IndexKind.HASH)
        for i, year in enumerate([1990, 1970]):
            memory_store.insert(_record(i, year=year))
        got = [r["year"] for r in memory_store.range_by("year", None, None)]
        assert got == [1970, 1990]

    def test_indexed_fields(self, memory_store):
        memory_store.create_index("name", IndexKind.HASH)
        memory_store.create_index("year", IndexKind.BTREE)
        assert set(memory_store.indexed_fields) == {"name", "year"}


class TestDurability:
    def test_recover_from_wal(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            store.insert(_record(1, "a"))
            store.insert(_record(2, "b"))
            store.delete(1)
        with RecordStore(simple_schema, tmp_path / "db") as reopened:
            assert len(reopened) == 1
            assert reopened.get(2)["name"] == "b"
            assert 1 not in reopened

    def test_snapshot_and_truncate(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            for i in range(10):
                store.insert(_record(i))
            store.snapshot()
            assert store._wal.size_bytes == 0
            store.insert(_record(100))
        with RecordStore(simple_schema, tmp_path / "db") as reopened:
            assert len(reopened) == 11
            assert 100 in reopened

    def test_snapshot_preserves_indexes(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            store.create_index("name", IndexKind.HASH)
            store.insert(_record(1, "a"))
            store.snapshot()
        with RecordStore(simple_schema, tmp_path / "db") as reopened:
            assert reopened.index_kind("name") is IndexKind.HASH
            assert [r["id"] for r in reopened.find_by("name", "a")] == [1]

    def test_in_memory_cannot_snapshot(self, memory_store):
        with pytest.raises(StorageError):
            memory_store.snapshot()

    def test_upsert_replay(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            store.insert(_record(1, "a"))
            store.upsert(_record(1, "b"))
        with RecordStore(simple_schema, tmp_path / "db") as reopened:
            assert reopened.get(1)["name"] == "b"

    def test_torn_final_write_recovers_prefix(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            store.insert(_record(1))
            store.insert(_record(2))
        wal_path = tmp_path / "db" / "store.wal"
        wal_path.write_bytes(wal_path.read_bytes() + b"W1 dead")
        with RecordStore(simple_schema, tmp_path / "db") as reopened:
            assert sorted(reopened.keys()) == [1, 2]

    def test_close_idempotent(self, simple_schema, tmp_path):
        store = RecordStore(simple_schema, tmp_path / "db")
        store.close()
        store.close()

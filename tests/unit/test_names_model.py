"""Unit tests for repro.names.model."""

import pytest

from repro.errors import ValidationError
from repro.names.model import (
    NameForm,
    PersonName,
    SUFFIX_RANKS,
    canonical_honorific,
    canonical_suffix,
)


class TestPersonNameInvariants:
    def test_empty_surname_rejected(self):
        with pytest.raises(ValidationError):
            PersonName(surname="")

    def test_whitespace_surname_rejected(self):
        with pytest.raises(ValidationError):
            PersonName(surname="   ")

    def test_non_canonical_suffix_rejected(self):
        with pytest.raises(ValidationError):
            PersonName(surname="Smith", suffix="Junior")

    def test_all_canonical_suffixes_accepted(self):
        for suffix in SUFFIX_RANKS:
            name = PersonName(surname="Smith", suffix=suffix)
            assert name.suffix == suffix


class TestSuffixRanks:
    def test_bare_name_ranks_first(self):
        assert SUFFIX_RANKS[""] == 0

    def test_jr_before_sr(self):
        assert SUFFIX_RANKS["Jr."] < SUFFIX_RANKS["Sr."]

    def test_numerals_in_order(self):
        assert SUFFIX_RANKS["II"] < SUFFIX_RANKS["III"] < SUFFIX_RANKS["IV"] < SUFFIX_RANKS["V"]

    def test_rank_property(self):
        assert PersonName(surname="Smith", suffix="III").suffix_rank == SUFFIX_RANKS["III"]


class TestRendering:
    def test_inverted_plain(self):
        name = PersonName(surname="Abdalla", given="Tarek F.")
        assert name.inverted() == "Abdalla, Tarek F."

    def test_inverted_with_suffix(self):
        name = PersonName(surname="Arceneaux", given="Webster J.", suffix="III")
        assert name.inverted() == "Arceneaux, Webster J., III"

    def test_inverted_with_honorific(self):
        name = PersonName(surname="Byrd", given="Robert C.", honorific="Hon.")
        assert name.inverted() == "Byrd, Hon. Robert C."

    def test_inverted_student_marker(self):
        name = PersonName(surname="Albert", given="Michael C.", is_student=True)
        assert name.inverted(student_marker=True) == "Albert, Michael C.*"
        assert name.inverted(student_marker=False) == "Albert, Michael C."

    def test_inverted_surname_only(self):
        assert PersonName(surname="Bobango").inverted() == "Bobango"

    def test_direct_full(self):
        name = PersonName(
            surname="Brotherton", given="W.T.", suffix="Jr.", honorific="Hon."
        )
        assert name.direct() == "Hon. W.T. Brotherton, Jr."

    def test_direct_without_suffix(self):
        name = PersonName(surname="Areen", given="Judith")
        assert name.direct() == "Judith Areen"

    def test_str_includes_student_marker(self):
        name = PersonName(surname="Albert", given="M.", is_student=True)
        assert str(name).endswith("*")


class TestInitials:
    def test_initials_from_full_names(self):
        assert PersonName(surname="X", given="Tarek Fouad").initials == "TF"

    def test_initials_from_dotted(self):
        assert PersonName(surname="X", given="W.T.").initials == "WT"

    def test_initials_mixed(self):
        assert PersonName(surname="X", given="J. Davitt").initials == "JD"

    def test_initials_empty_given(self):
        assert PersonName(surname="X").initials == ""


class TestIdentityKey:
    def test_case_insensitive(self):
        a = PersonName(surname="McAteer", given="J. Davitt")
        b = PersonName(surname="MCATEER", given="j. davitt")
        assert a.identity_key() == b.identity_key()

    def test_student_flag_not_identity(self):
        a = PersonName(surname="Albert", given="M.", is_student=True)
        b = PersonName(surname="Albert", given="M.", is_student=False)
        assert a.identity_key() == b.identity_key()

    def test_honorific_not_identity(self):
        a = PersonName(surname="Byrd", given="Robert C.", honorific="Hon.")
        b = PersonName(surname="Byrd", given="Robert C.")
        assert a.identity_key() == b.identity_key()

    def test_suffix_is_identity(self):
        jr = PersonName(surname="Smith", given="John", suffix="Jr.")
        iii = PersonName(surname="Smith", given="John", suffix="III")
        assert jr.identity_key() != iii.identity_key()


class TestWithStudent:
    def test_sets_flag(self):
        name = PersonName(surname="Smith", given="A.")
        assert name.with_student(True).is_student is True

    def test_preserves_other_fields(self):
        name = PersonName(
            surname="Smith", given="A.", suffix="Jr.", honorific="Dr.", raw="x"
        )
        copy = name.with_student(True)
        assert (copy.surname, copy.given, copy.suffix, copy.honorific, copy.raw) == (
            "Smith", "A.", "Jr.", "Dr.", "x"
        )


class TestCanonicalTokens:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("jr", "Jr."), ("Jr.", "Jr."), ("JR", "Jr."), ("junior", "Jr."),
            ("sr", "Sr."), ("Senior", "Sr."),
            ("ii", "II"), ("III", "III"), ("iv", "IV"), ("v", "V"),
            ("Jr.,", "Jr."), ("III,", "III"),
        ],
    )
    def test_canonical_suffix_accepts(self, token, expected):
        assert canonical_suffix(token) == expected

    @pytest.mark.parametrize("token", ["Esq", "PhD", "", "Smith", "VI" "I" * 20])
    def test_canonical_suffix_rejects(self, token):
        assert canonical_suffix(token) is None

    @pytest.mark.parametrize(
        "token,expected",
        [
            ("hon", "Hon."), ("Hon.", "Hon."), ("HON", "Hon."),
            ("dr", "Dr."), ("Dr.", "Dr."), ("rev.", "Rev."),
            ("prof", "Prof."), ("judge", "Judge"), ("Justice", "Justice"),
        ],
    )
    def test_canonical_honorific_accepts(self, token, expected):
        assert canonical_honorific(token) == expected

    @pytest.mark.parametrize("token", ["Mister", "", "Smith"])
    def test_canonical_honorific_rejects(self, token):
        assert canonical_honorific(token) is None


class TestNameForm:
    def test_forms_distinct(self):
        assert len({NameForm.INVERTED, NameForm.DIRECT, NameForm.SURNAME_ONLY}) == 3

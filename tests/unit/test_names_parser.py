"""Unit tests for repro.names.parser — including the artifact's own spellings."""

import pytest

from repro.errors import NameParseError
from repro.names.model import NameForm
from repro.names.parser import parse_name, try_parse_name


class TestInvertedBasics:
    def test_surname_and_given(self):
        name = parse_name("Abdalla, Tarek F.")
        assert name.surname == "Abdalla"
        assert name.given == "Tarek F."
        assert name.form is NameForm.INVERTED

    def test_student_marker(self):
        name = parse_name("Abdalla, Tarek F.*")
        assert name.is_student is True
        assert name.given == "Tarek F."

    def test_no_student_marker(self):
        assert parse_name("Abdalla, Tarek F.").is_student is False

    def test_raw_preserved(self):
        assert parse_name("Abdalla, Tarek F.*").raw == "Abdalla, Tarek F.*"

    def test_single_given_name(self):
        name = parse_name("Areen, Judith")
        assert (name.surname, name.given) == ("Areen", "Judith")

    def test_initial_then_name(self):
        name = parse_name("Galloway, L. Thomas")
        assert name.given == "L. Thomas"

    def test_two_given_names(self):
        name = parse_name("Wilkinson, Carroll Wetzel")
        assert name.given == "Carroll Wetzel"


class TestSuffixes:
    def test_comma_suffix_jr(self):
        name = parse_name("Bean, Ralph J., Jr.")
        assert name.suffix == "Jr."
        assert name.given == "Ralph J."

    def test_comma_suffix_iii(self):
        name = parse_name("Arceneaux, Webster J., III")
        assert name.suffix == "III"

    def test_comma_suffix_iv(self):
        name = parse_name("Rockefeller, John D., IV")
        assert name.suffix == "IV"

    @pytest.mark.parametrize("raw", [
        "Bailey, Gene W., ll",     # OCR: ll
        "Fox, Fred L., 1I",        # OCR: 1I
        "Southworth, Louis S., Il",  # OCR: Il
        "Fisher, John W., II",
    ])
    def test_ocr_ii_variants(self, raw):
        assert parse_name(raw).suffix == "II"

    def test_ocr_iii_lll(self):
        assert parse_name("Lavender, George W., lll*").suffix == "III"

    def test_student_after_suffix(self):
        name = parse_name("McCune, W. Richard, Jr.*")
        assert name.suffix == "Jr."
        assert name.is_student is True

    def test_lone_v_is_given_initial_not_suffix(self):
        # "Watts, V" is a given initial; only Jr./Sr. and multi-char
        # numerals are accepted as a bare second segment.
        name = parse_name("Watts, V")
        assert name.suffix == ""
        assert name.given == "V"

    def test_suffix_inside_given_segment(self):
        name = parse_name("Goplerud, C. Peter III")
        assert name.suffix == "III"
        assert name.given == "C. Peter"


class TestHonorifics:
    def test_hon(self):
        name = parse_name("Byrd, Hon. Robert C.")
        assert name.honorific == "Hon."
        assert name.given == "Robert C."

    def test_hon_with_suffix(self):
        name = parse_name("Brotherton, Hon. W.T., Jr.")
        assert (name.honorific, name.given, name.suffix) == ("Hon.", "W.T.", "Jr.")

    def test_dr(self):
        name = parse_name("Weese, Dr. Samuel H.")
        assert name.honorific == "Dr."

    def test_multiword_given_after_honorific(self):
        name = parse_name("Higginbotham, Hon. A. Leon, Jr.")
        assert (name.honorific, name.given, name.suffix) == ("Hon.", "A. Leon", "Jr.")


class TestSurnameShapes:
    @pytest.mark.parametrize("surname", [
        "Bates-Smith", "Crain-Mountney", "Webster-O'Keefe", "Van Tol", "vanEgmond",
        "O'Brien", "DiSalvo", "McAteer", "FitzGerald", ".Chanbers",
    ])
    def test_surnames_roundtrip(self, surname):
        assert parse_name(f"{surname}, Alex B.").surname == surname


class TestDirectForm:
    def test_given_surname(self):
        name = parse_name("Judith Areen")
        assert (name.surname, name.given) == ("Areen", "Judith")
        assert name.form is NameForm.DIRECT

    def test_particle_surname(self):
        name = parse_name("Joan Van Tol")
        assert name.surname == "Van Tol"
        assert name.given == "Joan"

    def test_honorific_direct(self):
        name = parse_name("Hon. Patricia M. Wald")
        assert name.honorific == "Hon."
        assert name.surname == "Wald"

    def test_surname_only(self):
        name = parse_name("Bobango")
        assert name.form is NameForm.SURNAME_ONLY
        assert name.given == ""


class TestErrors:
    @pytest.mark.parametrize("raw", ["", "   ", "*", " * "])
    def test_empty_inputs_raise(self, raw):
        with pytest.raises(NameParseError):
            parse_name(raw)

    def test_try_parse_returns_none(self):
        assert try_parse_name("*") is None

    def test_try_parse_success(self):
        assert try_parse_name("Areen, Judith").surname == "Areen"

    def test_comma_only(self):
        with pytest.raises(NameParseError):
            parse_name(",")


class TestOcrCleanup:
    def test_curly_apostrophe_normalized(self):
        assert parse_name("O’Brien, James M.").surname == "O'Brien"

    def test_pipe_noise_removed(self):
        name = parse_name("Smith, |John A.")
        assert name.given == "John A."


class TestRoundTrip:
    @pytest.mark.parametrize("raw", [
        "Abdalla, Tarek F.",
        "Arceneaux, Webster J., III",
        "Byrd, Hon. Robert C.",
        "Brotherton, Hon. W.T., Jr.",
        "Van Tol, Joan E.",
        "Webster-O'Keefe, M. Katherine",
    ])
    def test_inverted_reparse_is_stable(self, raw):
        once = parse_name(raw)
        twice = parse_name(once.inverted())
        assert once.identity_key() == twice.identity_key()
        assert once.honorific == twice.honorific

"""Unit tests for repro.corpus.wvlr — the reference corpus."""

import pytest

from repro.corpus.wvlr import (
    PUBLICATION_SCHEMA,
    corpus_data_path,
    load_reference_metadata,
    load_reference_records,
    load_reference_reporter,
    populate_store,
)
from repro.storage.store import RecordStore


class TestLoad:
    def test_record_count(self, reference_records):
        assert len(reference_records) == 271

    def test_ids_unique(self, reference_records):
        ids = [r.record_id for r in reference_records]
        assert len(set(ids)) == len(ids)

    def test_all_have_authors_and_citations(self, reference_records):
        for record in reference_records:
            assert record.authors
            assert record.citation.volume >= 69
            assert 1966 <= record.citation.year <= 1993

    def test_coauthored_records_present(self, reference_records):
        multi = [r for r in reference_records if len(r.authors) > 1]
        assert len(multi) >= 30

    def test_student_share_substantial(self, reference_records):
        students = sum(1 for r in reference_records if r.is_student_work)
        assert 0.15 < students / len(reference_records) < 0.6

    def test_edge_case_names_present(self, reference_records):
        surnames = {a.surname for r in reference_records for a in r.authors}
        assert "McAteer" in surnames
        assert "Webster-O'Keefe" in surnames
        assert "Van Tol" in surnames
        suffixes = {a.suffix for r in reference_records for a in r.authors}
        assert {"Jr.", "II", "III", "IV"} <= suffixes
        honorifics = {a.honorific for r in reference_records for a in r.authors}
        assert "Hon." in honorifics

    def test_ocr_variant_pairs_present(self, reference_records):
        surnames = {a.surname for r in reference_records for a in r.authors}
        assert {"Herdon", "Hemdon"} <= surnames
        assert {"Johnson", "Johson"} <= surnames

    def test_reporter(self):
        reporter = load_reference_reporter()
        assert reporter.abbreviation == "W. Va. L. Rev."

    def test_metadata(self):
        meta = load_reference_metadata()
        assert meta == {"volume": 95, "year": 1993, "first_page": 1365}

    def test_data_file_exists(self):
        assert corpus_data_path().exists()


class TestPopulateStore:
    def test_populates(self, reference_records):
        store = RecordStore(PUBLICATION_SCHEMA)
        count = populate_store(store, reference_records)
        assert count == len(reference_records) == len(store)

    def test_default_is_reference(self):
        store = RecordStore(PUBLICATION_SCHEMA)
        assert populate_store(store) == 271

    def test_roundtrip_through_store(self, reference_records):
        from repro.core.entry import PublicationRecord

        store = RecordStore(PUBLICATION_SCHEMA)
        populate_store(store, reference_records)
        back = [PublicationRecord.from_store_dict(r) for r in store.scan()]
        assert {r.record_id for r in back} == {r.record_id for r in reference_records}

"""Unit tests for repro.names.similarity."""

import pytest

from repro.names.parser import parse_name
from repro.names.similarity import (
    damerau_levenshtein,
    jaccard_ngrams,
    jaro,
    jaro_winkler,
    levenshtein,
    name_similarity,
    soundex,
)


class TestLevenshtein:
    @pytest.mark.parametrize("a,b,d", [
        ("", "", 0),
        ("a", "", 1),
        ("", "abc", 3),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("same", "same", 0),
        ("johnson", "johson", 1),
    ])
    def test_known_distances(self, a, b, d):
        assert levenshtein(a, b) == d

    def test_symmetry(self):
        assert levenshtein("abcde", "xbcdz") == levenshtein("xbcdz", "abcde")

    def test_banded_early_exit(self):
        assert levenshtein("aaaaaa", "zzzzzz", max_distance=2) == 3

    def test_banded_exact_within_bound(self):
        assert levenshtein("kitten", "sitting", max_distance=5) == 3

    def test_banded_length_gap(self):
        assert levenshtein("ab", "abcdefgh", max_distance=3) == 4


class TestDamerauLevenshtein:
    def test_transposition_is_one(self):
        assert damerau_levenshtein("ab", "ba") == 1

    def test_plain_levenshtein_would_be_two(self):
        assert levenshtein("ab", "ba") == 2

    def test_ocr_case(self):
        assert damerau_levenshtein("herdon", "hemdon") == 1

    def test_identical(self):
        assert damerau_levenshtein("x", "x") == 0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-4)

    def test_dwayne(self):
        assert jaro("dwayne", "duane") == pytest.approx(0.8222, abs=1e-4)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty_vs_nonempty(self):
        assert jaro("", "abc") == 0.0

    def test_symmetry(self):
        assert jaro("dixon", "dicksonx") == jaro("dicksonx", "dixon")


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("dixon", "dicksonx") > jaro("dixon", "dicksonx")

    def test_no_boost_without_prefix(self):
        assert jaro_winkler("abc", "xbc") == jaro("abc", "xbc")

    def test_bounded_by_one(self):
        assert jaro_winkler("aaaa", "aaaa") == 1.0

    def test_prefix_capped_at_four(self):
        # identical 4-prefix vs identical 6-prefix with same jaro: cap keeps
        # the boost equal
        a = jaro_winkler("abcdXY", "abcdZW")
        b = jaro_winkler("abcdeX", "abcdeY")
        assert 0 < a <= 1 and 0 < b <= 1


class TestJaccardNgrams:
    def test_identical(self):
        assert jaccard_ngrams("night", "night") == 1.0

    def test_empty_both(self):
        assert jaccard_ngrams("", "") == 1.0

    def test_disjoint(self):
        assert jaccard_ngrams("aa", "bb") == 0.0

    def test_short_strings(self):
        assert jaccard_ngrams("a", "a") == 1.0

    def test_ordering(self):
        assert jaccard_ngrams("night", "nacht") < jaccard_ngrams("night", "nights")


class TestSoundex:
    @pytest.mark.parametrize("name,code", [
        ("Robert", "R163"),
        ("Rupert", "R163"),
        ("Ashcraft", "A261"),
        ("Ashcroft", "A261"),
        ("Tymczak", "T522"),
        ("Pfister", "P236"),
        ("Honeyman", "H555"),
    ])
    def test_classic_vectors(self, name, code):
        assert soundex(name) == code

    def test_empty(self):
        assert soundex("") == "0000"

    def test_non_alpha_ignored(self):
        assert soundex("O'Brien") == soundex("OBrien")

    def test_padding(self):
        assert soundex("Lee") == "L000"


class TestNameSimilarity:
    def test_identical_names(self):
        a = parse_name("McAteer, J. Davitt")
        assert name_similarity(a, a) == pytest.approx(1.0)

    def test_ocr_variant_high(self):
        a = parse_name("Herdon, Judith")
        b = parse_name("Hemdon, Judith")
        assert name_similarity(a, b) > 0.9

    def test_different_suffixes_zero(self):
        a = parse_name("Smith, John, Jr.")
        b = parse_name("Smith, John, III")
        assert name_similarity(a, b) == 0.0

    def test_one_sided_suffix_allowed(self):
        a = parse_name("Smith, John, Jr.")
        b = parse_name("Smith, John")
        assert name_similarity(a, b) > 0.9

    def test_different_full_given_names_zero(self):
        a = parse_name("Johnson, Earl")
        b = parse_name("Johnson, Edward")
        assert name_similarity(a, b) == 0.0

    def test_initial_expansion_compatible(self):
        a = parse_name("Phillips, J. Timothy")
        b = parse_name("Phillips, John Timothy")
        assert name_similarity(a, b) >= 0.85

    def test_distant_surnames_zero(self):
        a = parse_name("Whisker, James B.")
        b = parse_name("White, James B.")
        assert name_similarity(a, b) == 0.0

    def test_close_surname_typo(self):
        a = parse_name("Phillips, J. Timothy")
        b = parse_name("Philipps, J. Timothy")
        assert name_similarity(a, b) > 0.9

    def test_missing_given_weak_evidence(self):
        a = parse_name("Bobango, Gerald")
        b = parse_name("Bobango")
        score = name_similarity(a, b)
        assert 0.5 < score < 0.95

"""ShardedStore facade: routing, durability, reopen, and sharded fsck."""

import pytest

from repro.errors import DuplicateKeyError, StorageError, ValidationError
from repro.storage import (
    SHARD_MANIFEST,
    ShardedStore,
    fsck,
    fsck_sharded,
    is_sharded_root,
    shard_key_bytes,
    shard_of,
)
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [Field("id", FieldType.INT), Field("name", FieldType.STRING)],
    primary_key="id",
)


def _rec(i: int) -> dict:
    return {"id": i, "name": f"rec-{i}"}


def _filled(shards: int, count: int = 100, **kwargs) -> ShardedStore:
    store = ShardedStore(SCHEMA, shards=shards, **kwargs)
    store.put_many([_rec(i) for i in range(count)])
    return store


class TestRouting:
    def test_deterministic_and_total(self):
        for key in [0, 1, 17, -3, "x", "", True, False, 2.5]:
            assert shard_of(key, 4) == shard_of(key, 4)
            assert 0 <= shard_of(key, 4) < 4

    def test_type_tagged_keys_do_not_collide(self):
        # 1, 1.0, True, and "1" are different primary keys and must not
        # share routing bytes (True == 1 in Python, hence the tags).
        tags = {shard_key_bytes(k) for k in (1, 1.0, True, "1")}
        assert len(tags) == 4

    def test_single_shard_skips_routing(self):
        assert shard_of("anything", 1) == 0

    def test_every_key_found_where_routed(self):
        store = _filled(4)
        for i in range(100):
            assert store.shards[store.shard_for(i)].get(i) == _rec(i)
        store.close()


class TestFacade:
    def test_put_many_round_trip(self):
        store = _filled(4)
        assert len(store) == 100
        assert store.get(37) == _rec(37)
        assert 37 in store and 999 not in store
        assert sorted(r["id"] for r in store.scan()) == list(range(100))
        assert sorted(store.keys()) == list(range(100))
        store.close()

    def test_all_shards_used(self):
        store = _filled(4)
        assert all(len(shard) > 0 for shard in store.shards)
        store.close()

    def test_duplicate_aborts_whole_batch(self):
        store = _filled(4)
        with pytest.raises(DuplicateKeyError):
            store.put_many([_rec(200), _rec(37), _rec(201)])
        # All-or-nothing across shards: the records routed to other
        # shards must not have been committed either.
        assert 200 not in store and 201 not in store
        store.close()

    def test_validation_aborts_whole_batch(self):
        store = _filled(2)
        with pytest.raises(ValidationError):
            store.put_many([_rec(200), {"id": 201, "name": 5}])
        assert 200 not in store
        store.close()

    def test_replace_mode(self):
        store = _filled(2)
        store.put_many([{"id": 37, "name": "new"}], on_conflict="replace")
        assert store.get(37)["name"] == "new"
        store.close()

    def test_single_record_ops_route(self):
        store = _filled(4)
        store.insert(_rec(500))
        assert store.get(500) == _rec(500)
        store.update(500, {"name": "upd"})
        assert store.get(500)["name"] == "upd"
        assert store.upsert(_rec(500)) is True
        store.delete(500)
        assert 500 not in store
        store.close()

    def test_bulk_predicates_fan_out(self):
        store = _filled(4)
        changed = store.update_where(lambda r: r["id"] < 10, {"name": "x"})
        assert changed == 10
        deleted = store.delete_where(lambda r: r["name"] == "x")
        assert deleted == 10 and len(store) == 90
        store.close()

    def test_indexes_fan_out(self):
        store = _filled(4)
        store.create_index("name")
        assert store.has_index("name")
        assert store.find_by("name", "rec-7") == [_rec(7)]
        stats = store.index_statistics("name")
        assert stats is not None and stats["entries"] == 100
        store.drop_index("name")
        assert not store.has_index("name")
        store.close()

    def test_shard_count_bounds(self):
        with pytest.raises(StorageError):
            ShardedStore(SCHEMA, shards=0)
        with pytest.raises(StorageError):
            ShardedStore(SCHEMA, shards=1000)
        with pytest.raises(StorageError):
            ShardedStore(SCHEMA)  # in-memory needs explicit shards=


class TestDurability:
    def test_reopen_from_manifest(self, tmp_path):
        root = tmp_path / "db"
        with ShardedStore(SCHEMA, root, shards=4, sync=True) as store:
            store.put_many([_rec(i) for i in range(50)])
            store.create_index("name")
            store.checkpoint()
        assert is_sharded_root(root)
        with ShardedStore(SCHEMA, root) as reopened:  # count from manifest
            assert reopened.shard_count == 4
            assert len(reopened) == 50
            assert reopened.get(7) == _rec(7)
            assert reopened.has_index("name")

    def test_shard_count_mismatch_refuses(self, tmp_path):
        root = tmp_path / "db"
        ShardedStore(SCHEMA, root, shards=4).close()
        with pytest.raises(StorageError, match="misroute"):
            ShardedStore(SCHEMA, root, shards=8)

    def test_wal_bound_checkpoints(self, tmp_path):
        root = tmp_path / "db"
        with ShardedStore(
            SCHEMA, root, shards=4, sync=True, checkpoint_wal_bytes=1
        ) as store:
            store.put_many([_rec(i) for i in range(100)])
            # Bound of 1 byte: every shard that logged anything was
            # checkpointed before put_many returned.
            assert store.wal_size_bytes == 0
        with ShardedStore(SCHEMA, root) as reopened:
            assert len(reopened) == 100

    def test_recover_without_checkpoint(self, tmp_path):
        root = tmp_path / "db"
        with ShardedStore(SCHEMA, root, shards=4, sync=True) as store:
            store.put_many([_rec(i) for i in range(30)])
        with ShardedStore(SCHEMA, root) as reopened:  # WAL-only recovery
            assert sorted(reopened.keys()) == list(range(30))


class TestShardedFsck:
    def test_clean_root(self, tmp_path):
        root = tmp_path / "db"
        with ShardedStore(SCHEMA, root, shards=4, sync=True) as store:
            store.put_many([_rec(i) for i in range(40)])
            store.checkpoint()
        report = fsck_sharded(root)
        assert report.ok and report.exit_code() == 0
        assert len(report.shard_reports) == 4
        doc = report.to_dict()
        assert doc["sharded"] is True and doc["shard_count"] == 4
        assert all(s["exit_code"] == 0 for s in doc["shards"])

    def test_worst_of_exit_code_and_repair(self, tmp_path):
        root = tmp_path / "db"
        with ShardedStore(SCHEMA, root, shards=4, sync=True) as store:
            store.put_many([_rec(i) for i in range(40)])
        # Tear the tail of one shard's WAL: that shard is repairable
        # (exit 1); the root inherits the worst per-shard code.
        victim = root / "shard-02" / "store.wal"
        victim.write_bytes(victim.read_bytes() + b"TORN GARBAGE")
        report = fsck_sharded(root)
        assert report.exit_code() == 1
        per_shard = [r.exit_code() for r in report.shard_reports]
        assert per_shard.count(1) == 1 and per_shard.count(0) == 3
        # Repair fixes only what is broken; everything comes back clean.
        assert fsck_sharded(root, repair=True).exit_code() == 0
        assert fsck_sharded(root).exit_code() == 0
        with ShardedStore(SCHEMA, root) as reopened:
            assert sorted(reopened.keys()) == list(range(40))

    def test_fatal_shard_dominates(self, tmp_path):
        root = tmp_path / "db"
        with ShardedStore(SCHEMA, root, shards=2, sync=True) as store:
            store.put_many([_rec(i) for i in range(20)])
            store.checkpoint()
        (root / "shard-01" / "snapshot.json").write_text("{not json", encoding="utf-8")
        report = fsck_sharded(root)
        assert report.exit_code() == 2

    def test_bad_manifest_is_fatal(self, tmp_path):
        root = tmp_path / "db"
        root.mkdir()
        (root / SHARD_MANIFEST).write_text("{broken", encoding="utf-8")
        report = fsck_sharded(root)
        assert report.exit_code() == 2
        assert not report.shard_reports

    def test_plain_store_is_not_sharded_root(self, tmp_path):
        from repro.storage import RecordStore

        directory = tmp_path / "plain"
        with RecordStore(SCHEMA, directory, sync=True) as store:
            store.put_many([_rec(i) for i in range(5)])
        assert not is_sharded_root(directory)
        assert fsck(directory).exit_code() == 0


class TestPutManyPartialFailure:
    """The cross-shard partial-write contract: every failed shard is
    named, and the survivors' committed work stands."""

    def test_single_shard_failure_reraises_unchanged(self, tmp_path):
        from repro.storage.faultfs import FaultFS, InjectedFault

        fs = FaultFS()
        store = ShardedStore(
            SCHEMA, tmp_path / "db", shards=3, fs=fs, sync=True
        )
        fs.arm("fail_before_fsync", path="shard-01/store.wal")
        with pytest.raises(InjectedFault):
            store.put_many([_rec(i) for i in range(60)])
        store.close()

    def test_multi_shard_failure_names_every_shard(self, tmp_path):
        from repro.errors import MultiShardError
        from repro.storage.faultfs import FaultFS

        fs = FaultFS()
        store = ShardedStore(
            SCHEMA, tmp_path / "db", shards=3, fs=fs, sync=True
        )
        records = [_rec(i) for i in range(60)]
        parts = {store.shard_for(r["id"]) for r in records}
        assert parts == {0, 1, 2}  # the batch really spans all shards
        fs.arm("fail_before_fsync", path="shard-00/store.wal")
        fs.arm("fail_before_fsync", path="shard-02/store.wal")
        with pytest.raises(MultiShardError) as err:
            store.put_many(records)
        assert set(err.value.failures) == {0, 2}
        assert "shard 0" in str(err.value) and "shard 2" in str(err.value)
        # The untouched shard's sub-batch committed and survives reopen.
        store.close()
        with ShardedStore(SCHEMA, tmp_path / "db", sync=True) as reopened:
            kept = sorted(reopened.keys())
            assert kept == sorted(
                r["id"] for r in records if reopened.shard_for(r["id"]) == 1
            )

"""Unit tests for repro.core.lint."""

import pytest

from repro.core.builder import AuthorIndex, build_index
from repro.core.collation import DEFAULT_OPTIONS
from repro.core.entry import PublicationRecord
from repro.core.lint import lint_index


def rec(i, title="Reasonable Title", author="Zed, Amy Q.", citation="90:1 (1987)"):
    return PublicationRecord.create(i, title, [author], citation)


def codes(index):
    return [issue.code for issue in lint_index(index)]


class TestCleanIndex:
    def test_clean_index_no_issues(self):
        index = build_index([
            rec(1, author="Abel, Bo R.", citation="90:1 (1987)"),
            rec(2, author="Zed, Amy Q.", citation="91:5 (1988)"),
        ])
        assert lint_index(index) == []


class TestSuspectDuplicates:
    def test_ocr_split_heading_flagged(self):
        index = build_index([
            rec(1, author="Herdon, Judith", citation="69:302 (1967)"),
            rec(2, author="Hemdon, Judith", citation="69:239 (1967)"),
        ])
        issues = lint_index(index)
        assert [i.code for i in issues] == ["suspect-duplicate-heading"]
        assert "Hemdon" in issues[0].message

    def test_student_split_not_flagged(self):
        index = build_index([
            rec(1, author="Bryant, S. Benjamin", citation="95:663 (1993)"),
            rec(2, author="Bryant, S. Benjamin*", citation="79:610 (1977)"),
        ])
        assert "suspect-duplicate-heading" not in codes(index)

    def test_distinct_people_not_flagged(self):
        index = build_index([
            rec(1, author="Johnson, Earl, Jr.", citation="70:350 (1968)"),
            rec(2, author="Johnson, Edward P.", citation="69:104 (1967)"),
        ])
        assert "suspect-duplicate-heading" not in codes(index)

    def test_reference_corpus_finds_known_splits(self, reference_records):
        issues = lint_index(build_index(reference_records))
        dupes = [i for i in issues if i.code == "suspect-duplicate-heading"]
        text = " ".join(i.message for i in dupes)
        for surname in ("Hemdon", "Johson", "Cumutte", "Crittendon", "Philipps"):
            assert surname in text
        # and nothing beyond the known OCR splits
        assert len(dupes) == 5


class TestCitationOutliers:
    def test_year_outlier_flagged(self):
        index = build_index([
            rec(1, citation="70:1 (1967)", author="Abel, Bo"),
            rec(2, citation="70:2 (1968)", author="Cole, Di"),
            rec(3, citation="70:3 (1999)", author="Zed, Amy"),  # damaged year
        ])
        issues = [i for i in lint_index(index) if i.code == "volume-year-outlier"]
        assert len(issues) == 1
        assert "1999" in issues[0].message


class TestNameAndTitleChecks:
    def test_bare_surname_flagged_once(self):
        index = build_index([
            rec(1, author="Bobango", citation="90:211 (1987)"),
            rec(2, title="Second Piece", author="Bobango", citation="91:5 (1988)"),
        ])
        issues = [i for i in lint_index(index) if i.code == "empty-given-name"]
        assert len(issues) == 1

    def test_shouting_title_flagged(self):
        index = build_index([rec(1, title="THE LAW OF COAL")])
        assert "title-case-shouting" in codes(index)

    def test_normal_title_not_flagged(self):
        index = build_index([rec(1, title="The Law of Coal")])
        assert "title-case-shouting" not in codes(index)


class TestMisordered:
    def test_hand_shuffled_index_flagged(self, sample_records):
        proper = build_index(sample_records)
        shuffled = AuthorIndex(list(reversed(proper.entries)), DEFAULT_OPTIONS)
        assert "misordered" in [i.code for i in lint_index(shuffled)]

    def test_properly_built_index_never_misordered(self, reference_records):
        issues = lint_index(build_index(reference_records))
        assert "misordered" not in [i.code for i in issues]


class TestOrdering:
    def test_issues_sorted_by_position(self, reference_records):
        issues = lint_index(build_index(reference_records))
        positions = [i.position for i in issues if i.position is not None]
        assert positions == sorted(positions)

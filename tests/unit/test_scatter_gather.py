"""Scatter-gather execution: k-way merge, partial aggregates, guards.

The determinism contract under test (see ``ShardedQueryEngine``):
sorted scans and aggregates are byte-identical for *any* shard count;
unordered results are multiset-equal with unspecified order.
"""

import json

import pytest

from repro.errors import BudgetExceeded, QueryCancelled, QueryPlanError, QueryTimeout
from repro.query import PartialAggregate, QueryEngine, ShardedQueryEngine
from repro.resilience import CancelToken, Deadline, Guard
from repro.storage import RecordStore, ShardedStore
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("year", FieldType.INT),
        Field("volume", FieldType.INT),
        Field("name", FieldType.STRING),
    ],
    primary_key="id",
)


def _corpus(n: int = 400) -> list[dict]:
    # year repeats every 37 ids: plenty of duplicate sort keys that land
    # on different shards, which is exactly what the k-way merge's
    # (sort value, pk) tiebreak must order deterministically.
    return [
        {"id": i, "year": 1900 + (i % 37), "volume": i % 7, "name": f"n{i:04d}"}
        for i in range(n)
    ]


def _sharded(shards: int, records: list[dict] | None = None) -> ShardedQueryEngine:
    store = ShardedStore(SCHEMA, shards=shards)
    store.put_many(records if records is not None else _corpus())
    return ShardedQueryEngine(store)


def _canon(rows: list[dict]) -> list[str]:
    return sorted(json.dumps(r, sort_keys=True) for r in rows)


SORTED_QUERIES = [
    "* ORDER BY year",
    "* ORDER BY year DESC",
    "* ORDER BY name DESC LIMIT 13",
    "year >= 1910 AND year < 1930 ORDER BY year",
    "volume = 3 ORDER BY id DESC",
    "* GROUP BY volume",
    "* GROUP BY year ORDER BY count DESC LIMIT 5",
    "year < 1905 GROUP BY volume ORDER BY count",
]


class TestKWayMerge:
    @pytest.mark.parametrize("query", SORTED_QUERIES)
    def test_byte_identical_across_shard_counts(self, query):
        engines = [_sharded(n) for n in (1, 2, 4, 8)]
        try:
            baseline = engines[0].execute(query)
            for engine in engines[1:]:
                assert engine.execute(query) == baseline, query
        finally:
            for engine in engines:
                engine.close()
                engine.store.close()

    def test_matches_plain_engine_on_unique_sort_keys(self):
        # On a unique sort key there are no ties, so the scatter merge
        # must reproduce the single-store engine byte for byte.
        records = _corpus()
        plain_store = RecordStore(SCHEMA)
        plain_store.put_many(records)
        plain = QueryEngine(plain_store)
        engine = _sharded(4, records)
        try:
            for query in ("* ORDER BY id", "* ORDER BY name DESC LIMIT 20"):
                assert engine.execute(query) == plain.execute(query)
        finally:
            engine.close()
            engine.store.close()
            plain_store.close()

    def test_duplicate_sort_keys_tiebreak_on_pk(self):
        engine = _sharded(4)
        try:
            rows = engine.execute("* ORDER BY year")
            assert [(r["year"], r["id"]) for r in rows] == sorted(
                (r["year"], r["id"]) for r in _corpus()
            )
        finally:
            engine.close()
            engine.store.close()

    def test_empty_shards(self):
        # 3 records over 8 shards: most shards contribute nothing and
        # the merge must not trip over their empty iterators.
        records = [
            {"id": i, "year": 2000 + i, "volume": 0, "name": f"n{i}"}
            for i in range(3)
        ]
        engine = _sharded(8, records)
        try:
            rows = engine.execute("* ORDER BY year DESC")
            assert [r["id"] for r in rows] == [2, 1, 0]
            assert engine.execute("* GROUP BY volume") == [
                {"volume": 0, "count": 3}
            ]
        finally:
            engine.close()
            engine.store.close()

    def test_unordered_is_multiset_equal(self):
        one, four = _sharded(1), _sharded(4)
        try:
            # No ORDER BY: order is shard-major and unspecified, but the
            # record multiset must match exactly.
            assert _canon(four.execute("volume = 3")) == _canon(one.execute("volume = 3"))
        finally:
            for engine in (one, four):
                engine.close()
                engine.store.close()

    def test_limit_pushdown_is_correct(self):
        engine = _sharded(4)
        try:
            full = engine.execute("* ORDER BY year DESC")
            assert engine.execute("* ORDER BY year DESC LIMIT 9") == full[:9]
            # LIMIT larger than the corpus is a no-op.
            assert engine.execute("* ORDER BY year LIMIT 10000") == full[::-1]
        finally:
            engine.close()
            engine.store.close()

    def test_explain_shows_scatter_plan(self):
        engine = _sharded(4)
        try:
            text = engine.explain("* ORDER BY year DESC LIMIT 9")
            assert "SCATTER" in text and "GATHER" in text
            assert "MERGE SORTED" in text and "SHARD LIMIT 9" in text
        finally:
            engine.close()
            engine.store.close()


class TestGuards:
    def test_deadline_expires_mid_merge(self):
        engine = _sharded(4, _corpus(20_000))
        try:
            with pytest.raises(QueryTimeout) as exc_info:
                # Far too little time to scan 20k rows; the fail-fast
                # pre-check passes and the expiry fires inside a worker.
                engine.execute("* ORDER BY year", timeout_s=0.002)
            assert 0 < exc_info.value.rows_examined < 20_000
        finally:
            engine.close()
            engine.store.close()

    def test_pre_expired_deadline_fails_fast(self):
        engine = _sharded(4)
        try:
            guard = Guard(deadline=Deadline.after(0.0))
            with pytest.raises(QueryTimeout):
                engine.execute("* ORDER BY year", guard=guard)
        finally:
            engine.close()
            engine.store.close()

    def test_shared_row_budget_spans_shards(self):
        engine = _sharded(4)
        try:
            with pytest.raises(BudgetExceeded) as exc_info:
                engine.execute("* ORDER BY year", max_rows=50)
            # The ledger is shared: enforcement is at tick granularity,
            # so the scatter-wide total lands past the budget but never
            # past the corpus.
            assert 50 < exc_info.value.rows_examined <= 400
        finally:
            engine.close()
            engine.store.close()

    def test_budget_larger_than_corpus_passes(self):
        engine = _sharded(4)
        try:
            rows = engine.execute("* ORDER BY year", max_rows=10_000)
            assert len(rows) == 400
        finally:
            engine.close()
            engine.store.close()

    def test_caller_cancel_token(self):
        engine = _sharded(4)
        try:
            token = CancelToken()
            token.cancel()
            with pytest.raises(QueryCancelled):
                engine.execute("* ORDER BY year", cancel=token)
        finally:
            engine.close()
            engine.store.close()

    def test_caller_guard_sees_examined_rows(self):
        engine = _sharded(4)
        try:
            guard = Guard(max_rows=10_000)
            engine.execute("* ORDER BY year", guard=guard)
            assert guard.rows_examined == 400
        finally:
            engine.close()
            engine.store.close()


class TestPartialAggregate:
    def test_merge_matches_whole_fold(self):
        values = [3, -1, 4, 1, 5, 9, 2, 6]
        whole = PartialAggregate()
        for v in values:
            whole.add(v)
        left, right = PartialAggregate(), PartialAggregate()
        for v in values[:3]:
            left.add(v)
        for v in values[3:]:
            right.add(v)
        left.merge(right)
        assert left.finalize() == whole.finalize()

    def test_merge_with_empty_partial(self):
        partial = PartialAggregate()
        partial.add(7)
        partial.merge(PartialAggregate())
        assert partial.finalize() == {
            "count": 1, "sum": 7, "min": 7, "max": 7, "avg": 7.0,
        }

    def test_all_empty_finalize(self):
        assert PartialAggregate().finalize() == {
            "count": 0, "sum": 0, "min": None, "max": None, "avg": None,
        }

    def test_aggregate_matches_ground_truth(self):
        records = _corpus()
        for shards in (1, 2, 4, 8):
            engine = _sharded(shards, records)
            try:
                agg = engine.aggregate("year >= 1910", "year")
                years = [r["year"] for r in records if r["year"] >= 1910]
                assert agg == {
                    "count": len(years),
                    "sum": sum(years),
                    "min": min(years),
                    "max": max(years),
                    "avg": sum(years) / len(years),
                }
            finally:
                engine.close()
                engine.store.close()

    def test_aggregate_empty_filter(self):
        engine = _sharded(4)
        try:
            assert engine.aggregate("year > 9999", "year")["count"] == 0
        finally:
            engine.close()
            engine.store.close()

    def test_aggregate_rejects_non_numeric_field(self):
        engine = _sharded(2)
        try:
            with pytest.raises(QueryPlanError, match="numeric"):
                engine.aggregate("*", "name")
            with pytest.raises(QueryPlanError, match="unknown"):
                engine.aggregate("*", "nope")
        finally:
            engine.close()
            engine.store.close()

    def test_aggregate_rejects_presentation_clauses(self):
        engine = _sharded(2)
        try:
            with pytest.raises(QueryPlanError, match="bare filter"):
                engine.aggregate("* ORDER BY year", "year")
            with pytest.raises(QueryPlanError, match="bare filter"):
                engine.count("* LIMIT 5")
        finally:
            engine.close()
            engine.store.close()

"""Unit tests for RecordStore.update_where and learn_confusions."""

import pytest

from repro.errors import ValidationError
from repro.storage.store import IndexKind, RecordStore
from repro.storage.wal import WriteAheadLog
from repro.textproc.ocr import OCRNoiseModel, OCRRepairer, learn_confusions


def _fill(store, n=6):
    for i in range(n):
        store.insert({"id": i, "name": "old", "year": 1980 + i})


class TestUpdateWhere:
    def test_dict_changes(self, memory_store):
        _fill(memory_store)
        count = memory_store.update_where(lambda r: r["year"] >= 1983, {"name": "new"})
        assert count == 3
        assert [r["id"] for r in memory_store.find_by("name", "new")] == [3, 4, 5]

    def test_callable_changes(self, memory_store):
        _fill(memory_store)
        memory_store.update_where(
            lambda r: True, lambda r: {"year": r["year"] + 100}
        )
        assert all(r["year"] >= 2080 for r in memory_store.scan())

    def test_no_matches(self, memory_store):
        _fill(memory_store)
        assert memory_store.update_where(lambda r: False, {"name": "x"}) == 0

    def test_pk_change_rejected_before_logging(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            _fill(store, 3)
            with pytest.raises(ValidationError):
                store.update_where(lambda r: True, {"id": 999})
            # nothing landed: 3 puts only
            assert len(store) == 3
        entries = WriteAheadLog.replay_path(tmp_path / "db" / "store.wal")
        assert all(e.payload["op"] == "put" for e in entries)

    def test_validation_failure_atomic(self, memory_store):
        _fill(memory_store)
        with pytest.raises(ValidationError):
            memory_store.update_where(lambda r: True, {"year": "not-an-int"})
        assert all(isinstance(r["year"], int) for r in memory_store.scan())

    def test_single_wal_batch(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            _fill(store, 4)
            store.update_where(lambda r: True, {"name": "batched"})
        entries = WriteAheadLog.replay_path(tmp_path / "db" / "store.wal")
        assert entries[-1].payload["op"] == "batch"
        assert len(entries[-1].payload["ops"]) == 4

    def test_indexes_maintained(self, memory_store):
        memory_store.create_index("year", IndexKind.BTREE)
        _fill(memory_store)
        memory_store.update_where(lambda r: r["id"] == 0, {"year": 1999})
        assert [r["id"] for r in memory_store.range_by("year", 1999, None)] == [0]
        assert memory_store.range_by("year", 1980, 1980) == []


class TestLearnConfusions:
    def test_learns_substitution(self):
        table = learn_confusions(
            [("Herndon", "Hemdon"), ("Barnden", "Bamden")], min_count=2
        )
        assert ("rn", "m") in table

    def test_learns_deletion(self):
        table = learn_confusions(
            [("Johnson", "Johson"), ("Monson", "Moson")], min_count=2
        )
        assert ("n", "") in table

    def test_min_count_filters(self):
        table = learn_confusions([("Herndon", "Hemdon")], min_count=2)
        assert table == ()

    def test_identical_pairs_ignored(self):
        assert learn_confusions([("same", "same")], min_count=1) == ()

    def test_non_local_difference_skipped(self):
        table = learn_confusions([("abcdef", "azcdyf")], min_count=1)
        assert table == ()  # two separated edits: not a single substitution

    def test_ordered_by_frequency(self):
        table = learn_confusions(
            [("rna", "ma"), ("rnb", "mb"), ("rnc", "mc"), ("x1", "xl")],
            min_count=1,
        )
        assert table[0] == ("rn", "m")

    def test_learned_table_drives_repairer(self):
        corrections = [("Herndon", "Hemdon"), ("Warner", "Wamer")]
        table = learn_confusions(corrections, min_count=2)
        repairer = OCRRepairer(["Herndon", "Warner", "Turner"], confusions=table)
        assert repairer.repair("Hemdon") == "Herndon"
        assert repairer.repair("Tumer") == "Turner"

    def test_learned_table_drives_noise_model(self):
        import random

        table = learn_confusions([("rna", "ma"), ("rnb", "mb")], min_count=2)
        # ~1 expected edit per word: most corruptions are single confusions
        model = OCRNoiseModel(rate=25.0, rng=random.Random(1), confusions=table)
        noisy = [model.corrupt("barn") for _ in range(40)]
        assert any("bam" in n for n in noisy)

"""SLO engine: rule validation, burn-rate math, threshold sources."""

import json

import pytest

from repro.obs import logging as obs_logging
from repro.obs.slo import DEFAULT_RULES, SLOEngine, load_rules, validate_rules
from repro.obs.timeseries import TimeSeriesLog


def _seed(ts: TimeSeriesLog, epoch: float, counters: dict, gauges: dict | None = None):
    """Inject a sample at a controlled epoch (the ring keeps the object)."""
    record = ts.sample({"counters": counters, "gauges": gauges or {}, "histograms": {}})
    record["epoch"] = epoch
    return record


AVAILABILITY_RULE = {
    "name": "avail",
    "kind": "availability",
    "objective": 0.999,
    "total": "query.executions",
    "bad": "query.failures",
    "windows": [
        {"long_s": 3600, "short_s": 300, "burn": 14.4, "severity": "page"},
    ],
}


class TestValidation:
    def test_default_rules_validate(self):
        assert validate_rules(DEFAULT_RULES) is DEFAULT_RULES

    def test_accepts_slos_wrapper(self):
        assert validate_rules({"slos": [AVAILABILITY_RULE]}) == [AVAILABILITY_RULE]

    @pytest.mark.parametrize(
        "mutation, message",
        [
            ({"name": None}, "missing 'name'"),
            ({"kind": "nope"}, "'kind' must be"),
            ({"objective": 1.5}, "'objective' must be in"),
            ({"windows": []}, "'windows' must be a non-empty list"),
            ({"windows": [{"long_s": 10, "short_s": 5}]}, "positive 'burn'"),
            (
                {"windows": [{"long_s": 10, "short_s": 5, "burn": 2, "severity": "x"}]},
                "severity must be one of",
            ),
        ],
    )
    def test_availability_rule_errors(self, mutation, message):
        rule = {**AVAILABILITY_RULE, **mutation}
        with pytest.raises(ValueError, match=message):
            validate_rules([rule])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_rules([AVAILABILITY_RULE, dict(AVAILABILITY_RULE)])

    def test_threshold_rule_errors(self):
        with pytest.raises(ValueError, match="'source' must be one of"):
            validate_rules([{"name": "t", "kind": "threshold", "source": "nope"}])
        with pytest.raises(ValueError, match="needs 'window_s'"):
            validate_rules([{
                "name": "t", "kind": "threshold", "source": "rate",
                "metric": "m", "op": ">", "bound": 1,
            }])

    def test_load_rules_reports_bad_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_rules(path)

    def test_load_rules_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"slos": [AVAILABILITY_RULE]}), encoding="utf-8")
        assert load_rules(path)[0]["name"] == "avail"


class TestBurnRate:
    def _engine(self):
        ts = TimeSeriesLog()
        return ts, SLOEngine(ts, [AVAILABILITY_RULE])

    def test_fires_when_both_windows_burn(self):
        ts, engine = self._engine()
        # 2% failure rate against a 0.1% budget = 20x burn, sustained.
        _seed(ts, 1000.0, {"query.executions": 0, "query.failures": 0})
        _seed(ts, 4000.0, {"query.executions": 1000, "query.failures": 20})
        _seed(ts, 4300.0, {"query.executions": 2000, "query.failures": 40})
        result = engine.evaluate(now_epoch=4300.0)
        (state,) = result["firing"]
        assert state["name"] == "avail"
        assert state["severity"] == "page"
        window = state["windows"][0]
        assert window["burn_long"] == pytest.approx(20.0, rel=0.01)
        assert window["burn_short"] == pytest.approx(20.0, rel=0.01)
        assert "burn rate" in state["reason"]

    def test_quiet_short_window_resets_the_alert(self):
        ts, engine = self._engine()
        # An old burst, then a clean recent window: the long arm still
        # burns but the short arm is quiet, so the alert must NOT fire.
        _seed(ts, 1000.0, {"query.executions": 0, "query.failures": 0})
        _seed(ts, 3900.0, {"query.executions": 1000, "query.failures": 20})
        _seed(ts, 4000.0, {"query.executions": 1100, "query.failures": 20})
        _seed(ts, 4300.0, {"query.executions": 1200, "query.failures": 20})
        result = engine.evaluate(now_epoch=4300.0)
        assert result["firing"] == []
        assert not result["rules"][0]["no_data"]

    def test_no_data_without_samples(self):
        _, engine = self._engine()
        result = engine.evaluate(now_epoch=1000.0)
        state = result["rules"][0]
        assert state["no_data"] and not state["firing"]
        assert state["reason"] == "no data"

    def test_counter_reset_does_not_fire_spuriously(self):
        ts, engine = self._engine()
        # Process restart: totals drop.  The Prometheus reset rule takes
        # the delta from zero, so 1 failure / 1000 executions = 1x burn.
        _seed(ts, 4000.0, {"query.executions": 50_000, "query.failures": 500})
        _seed(ts, 4200.0, {"query.executions": 1000, "query.failures": 1})
        assert engine.evaluate(now_epoch=4200.0)["firing"] == []

    def test_transitions_logged(self):
        obs_logging.reset()
        ts, engine = self._engine()
        _seed(ts, 4000.0, {"query.executions": 0, "query.failures": 0})
        _seed(ts, 4200.0, {"query.executions": 100, "query.failures": 50})
        engine.evaluate(now_epoch=4200.0)
        assert obs_logging.tail(5, event="obs.slo.firing")
        # Bleeding stops: delta goes clean, the alert resolves.
        _seed(ts, 4250.0, {"query.executions": 200, "query.failures": 50})
        _seed(ts, 8000.0, {"query.executions": 300, "query.failures": 50})
        engine.evaluate(now_epoch=8000.0)
        resolved = obs_logging.tail(5, event="obs.slo.resolved")
        assert resolved and resolved[-1]["rule"] == "avail"


class TestThresholdSources:
    def test_gauge_threshold(self):
        ts = TimeSeriesLog()
        _seed(ts, 100.0, {}, gauges={"pool.pinned": 9})
        rule = {
            "name": "pinned", "kind": "threshold", "source": "gauge",
            "metric": "pool.pinned", "op": ">=", "bound": 5,
        }
        (state,) = SLOEngine(ts, [rule]).evaluate(now_epoch=100.0)["firing"]
        assert state["value"] == 9

    def test_gauge_max_over_labelled_family(self):
        # One rule covers the whole storage.shard.health{shard=...}
        # family: the worst shard's level is what fires the alert.
        ts = TimeSeriesLog()
        _seed(ts, 100.0, {}, gauges={
            "storage.shard.health{shard=0}": 0,
            "storage.shard.health{shard=1}": 2,
            "storage.shard.health{shard=2}": 1,
        })
        rule = {
            "name": "shard-quarantined", "kind": "threshold",
            "source": "gauge_max", "metric": "storage.shard.health",
            "op": ">=", "bound": 2, "severity": "page",
        }
        (state,) = SLOEngine(ts, [rule]).evaluate(now_epoch=100.0)["firing"]
        assert state["value"] == 2

    def test_gauge_max_quiet_when_fleet_healthy(self):
        ts = TimeSeriesLog()
        _seed(ts, 100.0, {}, gauges={
            "storage.shard.health{shard=0}": 0,
            "storage.shard.health{shard=1}": 1,
        })
        rule = {
            "name": "shard-quarantined", "kind": "threshold",
            "source": "gauge_max", "metric": "storage.shard.health",
            "op": ">=", "bound": 2,
        }
        result = SLOEngine(ts, [rule]).evaluate(now_epoch=100.0)
        assert result["firing"] == []
        (state,) = result["rules"]
        assert state["value"] == 1 and not state["no_data"]

    def test_gauge_max_no_data_without_family(self):
        ts = TimeSeriesLog()
        _seed(ts, 100.0, {}, gauges={"other.gauge": 3})
        rule = {
            "name": "shard-quarantined", "kind": "threshold",
            "source": "gauge_max", "metric": "storage.shard.health",
            "op": ">=", "bound": 2,
        }
        (state,) = SLOEngine(ts, [rule]).evaluate(now_epoch=100.0)["rules"]
        assert state["no_data"] is True and not state["firing"]

    def test_ratio_threshold_mean_latency(self):
        ts = TimeSeriesLog()
        _seed(ts, 100.0, {"query.seconds.sum": 0.0, "query.seconds.count": 0})
        _seed(ts, 160.0, {"query.seconds.sum": 30.0, "query.seconds.count": 100})
        rule = {
            "name": "latency", "kind": "threshold", "source": "ratio",
            "numerator": "query.seconds.sum", "denominator": "query.seconds.count",
            "op": ">", "bound": 0.250, "window_s": 300, "severity": "ticket",
        }
        (state,) = SLOEngine(ts, [rule]).evaluate(now_epoch=160.0)["firing"]
        assert state["value"] == pytest.approx(0.3)

    def test_counter_gap_wal_backlog(self):
        ts = TimeSeriesLog()
        _seed(ts, 100.0, {
            "storage.wal.append.bytes": 600,
            "storage.checkpoint.bytes_reclaimed": 100,
        })
        rule = {
            "name": "backlog", "kind": "threshold", "source": "counter_gap",
            "metric": "storage.wal.append.bytes",
            "minus": "storage.checkpoint.bytes_reclaimed",
            "op": ">", "bound": 400,
        }
        (state,) = SLOEngine(ts, [rule]).evaluate(now_epoch=100.0)["firing"]
        assert state["value"] == 500

    def test_staleness_fires_when_counter_stops_moving(self):
        ts = TimeSeriesLog()
        _seed(ts, 100.0, {"storage.checkpoint.count": 1})
        _seed(ts, 200.0, {"storage.checkpoint.count": 2})
        _seed(ts, 5000.0, {"storage.checkpoint.count": 2})
        rule = {
            "name": "stale", "kind": "threshold", "source": "staleness",
            "metric": "storage.checkpoint.count", "op": ">", "bound": 3600,
        }
        engine = SLOEngine(ts, [rule])
        (state,) = engine.evaluate(now_epoch=5000.0)["firing"]
        assert state["value"] == pytest.approx(4800.0)

    def test_staleness_is_no_data_when_op_never_ran(self):
        ts = TimeSeriesLog()
        _seed(ts, 100.0, {"storage.checkpoint.count": 0})
        _seed(ts, 5000.0, {"storage.checkpoint.count": 0})
        rule = {
            "name": "stale", "kind": "threshold", "source": "staleness",
            "metric": "storage.checkpoint.count", "op": ">", "bound": 3600,
        }
        state = SLOEngine(ts, [rule]).evaluate(now_epoch=5000.0)["rules"][0]
        assert state["no_data"] and not state["firing"]

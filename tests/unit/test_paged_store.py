"""Unit tests for the paged data format at the store layer.

Covers :class:`~repro.storage.paged_store.PagedRecordMap` (overlay
semantics over a base tree), :class:`StreamingChecksum` (must hash
exactly what :func:`records_checksum` hashes), and
:class:`RecordStore`/:class:`ShardedStore` running ``data_format="paged"``:
checkpoint → reopen identity, WAL replay on top of a pages file, lazy
secondary indexes, and migration in both directions.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecordNotFoundError
from repro.storage import (
    IndexKind,
    PagedBTree,
    RecordStore,
    ShardedStore,
    records_checksum,
)
from repro.storage.paged_store import (
    PagedRecordMap,
    StreamingChecksum,
    decode_record,
    encode_record,
)
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("name", FieldType.STRING),
        Field("year", FieldType.INT),
    ],
    primary_key="id",
)


def _rec(i: int, year: int | None = None) -> dict:
    return {"id": i, "name": f"rec-{i}", "year": 1990 + (i % 7 if year is None else year)}


def _base_map(tmp_path, n: int = 10) -> PagedRecordMap:
    tree = PagedBTree.bulk_build(
        tmp_path / "base.pages",
        iter((i, encode_record(_rec(i))) for i in range(n)),
    )
    return PagedRecordMap(tree)


class TestStreamingChecksum:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_matches_records_checksum(self, ids):
        records = [_rec(i) for i in ids]
        stream = StreamingChecksum()
        for record in records:
            stream.add(encode_record(record))
        assert stream.hexdigest() == records_checksum(records)
        assert stream.count == len(records)

    def test_unicode_records(self):
        records = [{"id": 1, "name": "Éskàpe — ünïcode", "year": 2000}]
        stream = StreamingChecksum()
        stream.add(encode_record(records[0]))
        assert stream.hexdigest() == records_checksum(records)


class TestEncoding:
    def test_round_trip_and_canonical_form(self):
        record = {"year": 1999, "id": 3, "name": "zyx"}
        raw = encode_record(record)
        assert decode_record(raw) == record
        assert raw == b'{"id":3,"name":"zyx","year":1999}'  # sorted, compact


class TestPagedRecordMap:
    def test_read_through_base(self, tmp_path):
        m = _base_map(tmp_path)
        assert len(m) == 10
        assert m[3] == _rec(3)
        assert m.get(99) is None
        assert 3 in m and 99 not in m
        assert m.overlay_size == 0
        m.close()

    def test_overlay_insert_update_delete(self, tmp_path):
        m = _base_map(tmp_path)
        m[20] = _rec(20)            # insert past the base
        m[3] = _rec(3, year=5)      # shadow a base record
        popped = m.pop(7)           # tombstone a base record
        assert popped == _rec(7)
        assert len(m) == 10
        assert m.overlay_size == 3
        assert m[3]["year"] == 1995
        assert 7 not in m
        with pytest.raises(KeyError):
            m[7]
        with pytest.raises(KeyError):
            m.pop(7)
        # reinsert after delete clears the tombstone
        m[7] = _rec(7, year=6)
        assert m[7]["year"] == 1996
        m.close()

    def test_iteration_is_pk_ordered_merge(self, tmp_path):
        m = _base_map(tmp_path)
        m[15] = _rec(15)
        m[-1] = _rec(-1)
        m.pop(4)
        keys = list(m)
        assert keys == [-1, 0, 1, 2, 3, 5, 6, 7, 8, 9, 15]
        assert [r["id"] for r in m.values()] == keys
        assert list(m.keys()) == keys
        m.close()

    def test_sorted_encoded_items_reuses_base_bytes(self, tmp_path):
        m = _base_map(tmp_path, n=5)
        m[2] = _rec(2, year=9)
        m.pop(4)
        pairs = list(m.sorted_encoded_items())
        assert [k for k, _ in pairs] == [0, 1, 2, 3]
        assert decode_record(dict(pairs)[2])["year"] == 1999
        # unmodified records pass through as the tree's stored bytes
        assert dict(pairs)[1] == m.tree.get(1)
        m.close()

    def test_update_mapping(self, tmp_path):
        m = _base_map(tmp_path, n=3)
        m.update({5: _rec(5), 6: _rec(6)})
        assert len(m) == 5
        m.close()


class TestPagedRecordStore:
    def test_checkpoint_reopen_identity(self, tmp_path):
        with RecordStore(SCHEMA, directory=tmp_path, data_format="paged") as store:
            for i in range(300):
                store.insert(_rec(i))
            store.checkpoint()
            assert store.is_paged
            assert store.data_format == "paged"
            before = sorted(store.scan(), key=lambda r: r["id"])
        manifest = json.loads((tmp_path / "snapshot.json").read_bytes())
        assert manifest["version"] == 3
        assert manifest["format"] == "paged"
        assert (tmp_path / manifest["pages"]).exists()
        assert "records" not in manifest
        with RecordStore(SCHEMA, directory=tmp_path, data_format="paged") as store:
            assert len(store) == 300
            assert sorted(store.scan(), key=lambda r: r["id"]) == before

    def test_wal_replay_on_top_of_pages(self, tmp_path):
        with RecordStore(SCHEMA, directory=tmp_path, data_format="paged") as store:
            for i in range(50):
                store.insert(_rec(i))
            store.checkpoint()
            store.insert(_rec(100))
            store.delete(3)
            store.update(5, {"year": 1999})
        with RecordStore(SCHEMA, directory=tmp_path, data_format="paged") as store:
            assert len(store) == 50  # +1 insert, -1 delete
            assert store.get(100) == _rec(100)
            with pytest.raises(RecordNotFoundError):
                store.get(3)
            assert store.get(5)["year"] == 1999
            assert store.overlay_size == 3  # replayed writes stay in overlay

    def test_overlay_drains_on_checkpoint(self, tmp_path):
        with RecordStore(SCHEMA, directory=tmp_path, data_format="paged") as store:
            for i in range(20):
                store.insert(_rec(i))
            store.checkpoint()
            store.insert(_rec(40))
            assert store.overlay_size == 1
            store.checkpoint()
            assert store.overlay_size == 0
            assert len(store) == 21

    def test_secondary_indexes_lazy_but_correct(self, tmp_path):
        with RecordStore(SCHEMA, directory=tmp_path, data_format="paged") as store:
            store.create_index("year", kind=IndexKind.BTREE)
            store.create_index("name", kind=IndexKind.HASH)
            for i in range(200):
                store.insert(_rec(i))
            store.checkpoint()
        with RecordStore(SCHEMA, directory=tmp_path, data_format="paged") as store:
            # writes before the first index read must land in the index
            store.insert(_rec(500, year=3))
            got = {r["id"] for r in store.find_by("year", 1993)}
            assert got == {i for i in range(200) if i % 7 == 3} | {500}
            assert [r["id"] for r in store.find_by("name", "rec-7")] == [7]
            ranged = store.range_by("year", 1990, 1991)
            assert {r["year"] for r in ranged} == {1990, 1991}

    def test_migrate_memory_to_paged_and_back(self, tmp_path):
        with RecordStore(SCHEMA, directory=tmp_path) as store:  # memory format
            for i in range(40):
                store.insert(_rec(i))
            store.checkpoint()
        assert json.loads((tmp_path / "snapshot.json").read_bytes())["version"] == 2

        with RecordStore(SCHEMA, directory=tmp_path, data_format="paged") as store:
            assert len(store) == 40
            store.checkpoint()  # upgrade
            assert store.is_paged
        assert json.loads((tmp_path / "snapshot.json").read_bytes())["version"] == 3
        assert list(tmp_path.glob("store.pages.*"))

        with RecordStore(SCHEMA, directory=tmp_path, data_format="memory") as store:
            assert len(store) == 40
            assert not store.is_paged or store.data_format == "memory"
            store.checkpoint()  # downgrade rewrites inline records
        assert json.loads((tmp_path / "snapshot.json").read_bytes())["version"] == 2
        assert not list(tmp_path.glob("store.pages.*"))
        with RecordStore(SCHEMA, directory=tmp_path) as store:
            assert sorted(r["id"] for r in store.scan()) == list(range(40))

    def test_checksum_identical_across_formats(self, tmp_path):
        mem_dir, paged_dir = tmp_path / "mem", tmp_path / "paged"
        for directory, fmt in ((mem_dir, "memory"), (paged_dir, "paged")):
            with RecordStore(SCHEMA, directory=directory, data_format=fmt) as store:
                for i in range(25):
                    store.insert(_rec(i))
                store.checkpoint()
        mem = json.loads((mem_dir / "snapshot.json").read_bytes())
        paged = json.loads((paged_dir / "snapshot.json").read_bytes())
        assert mem["checksum"] == paged["checksum"]
        assert mem["record_count"] == paged["record_count"]

    def test_invalid_data_format_rejected(self, tmp_path):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            RecordStore(SCHEMA, directory=tmp_path, data_format="parquet")

    def test_transactions_on_paged_store(self, tmp_path):
        with RecordStore(SCHEMA, directory=tmp_path, data_format="paged") as store:
            for i in range(10):
                store.insert(_rec(i))
            store.checkpoint()
            with store.transaction() as txn:
                txn.insert(_rec(50))
                txn.delete(2)
            assert store.get(50) == _rec(50)
            with pytest.raises(RecordNotFoundError):
                store.get(2)
            with pytest.raises(RuntimeError):
                with store.transaction() as txn:
                    txn.insert(_rec(60))
                    raise RuntimeError("rollback")
            with pytest.raises(RecordNotFoundError):
                store.get(60)


class TestShardedPaged:
    def test_sharded_paged_round_trip(self, tmp_path):
        with ShardedStore(SCHEMA, tmp_path, shards=3, data_format="paged") as store:
            store.put_many(_rec(i) for i in range(120))
            store.checkpoint()
        for shard_dir in sorted(tmp_path.glob("shard-*")):
            manifest = json.loads((shard_dir / "snapshot.json").read_bytes())
            assert manifest["version"] == 3
            assert (shard_dir / manifest["pages"]).exists()
        with ShardedStore(SCHEMA, tmp_path, data_format="paged") as store:
            assert len(store) == 120
            assert sorted(r["id"] for r in store.scan()) == list(range(120))

"""Unit tests for repro.query.parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.ast_nodes import And, Comparison, Not, Operator, Or, conjuncts
from repro.query.parser import parse_query


class TestComparisons:
    def test_equality(self):
        q = parse_query('name = "x"')
        assert q.where == Comparison("name", Operator.EQ, "x")

    def test_match(self):
        q = parse_query('tags:"coal"')
        assert q.where == Comparison("tags", Operator.MATCH, "coal")

    @pytest.mark.parametrize("op,operator", [
        ("!=", Operator.NE), ("<", Operator.LT), ("<=", Operator.LE),
        (">", Operator.GT), (">=", Operator.GE),
    ])
    def test_all_operators(self, op, operator):
        q = parse_query(f"year {op} 1980")
        assert q.where == Comparison("year", operator, 1980)

    def test_bareword_value_is_string(self):
        q = parse_query("name = smith")
        assert q.where == Comparison("name", Operator.EQ, "smith")

    def test_bool_value(self):
        q = parse_query("student = true")
        assert q.where == Comparison("student", Operator.EQ, True)

    def test_float_value(self):
        q = parse_query("score >= 0.5")
        assert q.where == Comparison("score", Operator.GE, 0.5)


class TestBooleanStructure:
    def test_and_left_assoc(self):
        q = parse_query("a = 1 AND b = 2 AND c = 3")
        assert isinstance(q.where, And)
        assert len(conjuncts(q.where)) == 3

    def test_or_binds_looser_than_and(self):
        q = parse_query("a = 1 OR b = 2 AND c = 3")
        assert isinstance(q.where, Or)
        assert isinstance(q.where.right, And)

    def test_parens_override(self):
        q = parse_query("(a = 1 OR b = 2) AND c = 3")
        assert isinstance(q.where, And)
        assert isinstance(q.where.left, Or)

    def test_not(self):
        q = parse_query("NOT a = 1")
        assert isinstance(q.where, Not)

    def test_double_not(self):
        q = parse_query("NOT NOT a = 1")
        assert isinstance(q.where, Not)
        assert isinstance(q.where.operand, Not)

    def test_star_selects_all(self):
        assert parse_query("*").where is None


class TestClauses:
    def test_order_by(self):
        q = parse_query("* ORDER BY year")
        assert q.order_by == "year"
        assert q.descending is False

    def test_order_by_desc(self):
        q = parse_query("* ORDER BY year DESC")
        assert q.descending is True

    def test_order_by_asc_explicit(self):
        q = parse_query("* ORDER BY year ASC")
        assert q.descending is False

    def test_limit(self):
        assert parse_query("* LIMIT 10").limit == 10

    def test_limit_zero(self):
        assert parse_query("* LIMIT 0").limit == 0

    def test_order_and_limit(self):
        q = parse_query('a = 1 ORDER BY b DESC LIMIT 3')
        assert (q.order_by, q.descending, q.limit) == ("b", True, 3)

    def test_negative_limit_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("* LIMIT -1")

    def test_float_limit_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("* LIMIT 1.5")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "AND", "a =", "= 1", "a = 1 AND", "(a = 1", "a = 1)",
        "a = 1 extra", "ORDER BY x", "* ORDER x", "a == 1",
        "* LIMIT", "NOT", "a : ", "a 1",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)


class TestEvaluate:
    def test_comparison_semantics(self):
        q = parse_query("year >= 1980")
        assert q.matches({"year": 1985})
        assert not q.matches({"year": 1975})
        assert not q.matches({})  # missing field never matches

    def test_match_on_list(self):
        q = parse_query('tags:"coal"')
        assert q.matches({"tags": ["coal", "tax"]})
        assert not q.matches({"tags": ["tax"]})

    def test_eq_on_list_means_membership(self):
        q = parse_query('tags = "coal"')
        assert q.matches({"tags": ["coal"]})

    def test_ne_on_list(self):
        q = parse_query('tags != "coal"')
        assert q.matches({"tags": ["tax"]})
        assert not q.matches({"tags": ["coal"]})

    def test_ordered_comparison_on_list_false(self):
        q = parse_query("tags > 1")
        assert not q.matches({"tags": ["a"]})

    def test_type_mismatch_is_false_not_error(self):
        q = parse_query("year > 1980")
        assert not q.matches({"year": "nineteen"})

    def test_not_and_or(self):
        q = parse_query("NOT (a = 1 OR b = 2)")
        assert q.matches({"a": 0, "b": 0})
        assert not q.matches({"a": 1, "b": 0})

    def test_select_all_matches_everything(self):
        assert parse_query("*").matches({})

"""Unit tests for the OR→IN planner rewrite."""

import pytest

from repro.query.ast_nodes import Membership
from repro.query.executor import QueryEngine
from repro.query.parser import parse_query
from repro.query.planner import (
    FullScan,
    IndexMultiLookup,
    _rewrite_or_of_equalities,
    plan_query,
)
from repro.storage.store import IndexKind


@pytest.fixture()
def engine(memory_store):
    for i, name in enumerate(["a", "b", "c", "a", "b"]):
        memory_store.insert({"id": i, "name": name, "year": 1980 + i})
    memory_store.create_index("name", IndexKind.HASH)
    return QueryEngine(memory_store)


class TestRewrite:
    def test_two_way_or(self):
        expr = parse_query('name = "a" OR name = "b"').where
        rewritten = _rewrite_or_of_equalities(expr)
        assert isinstance(rewritten, Membership)
        assert set(rewritten.values) == {"a", "b"}

    def test_nested_or_chain(self):
        expr = parse_query('name = "a" OR name = "b" OR name = "c"').where
        rewritten = _rewrite_or_of_equalities(expr)
        assert isinstance(rewritten, Membership)
        assert len(rewritten.values) == 3

    def test_or_with_in_merges(self):
        expr = parse_query('name = "a" OR name IN ("b", "c")').where
        rewritten = _rewrite_or_of_equalities(expr)
        assert isinstance(rewritten, Membership)
        assert set(rewritten.values) == {"a", "b", "c"}

    def test_duplicates_collapsed(self):
        expr = parse_query('name = "a" OR name = "a"').where
        rewritten = _rewrite_or_of_equalities(expr)
        assert rewritten.values == ("a",)

    def test_mixed_fields_untouched(self):
        expr = parse_query('name = "a" OR year = 1980').where
        assert _rewrite_or_of_equalities(expr) is expr

    def test_non_equality_untouched(self):
        expr = parse_query('name = "a" OR year >= 1980').where
        assert _rewrite_or_of_equalities(expr) is expr

    def test_nested_and_untouched(self):
        expr = parse_query('name = "a" OR (name = "b" AND year = 1)').where
        assert _rewrite_or_of_equalities(expr) is expr


class TestPlanning:
    def test_or_plans_as_multi_lookup(self, engine):
        plan = plan_query(parse_query('name = "a" OR name = "b"'), engine.store)
        assert isinstance(plan.access, IndexMultiLookup)
        assert plan.residual is None

    def test_or_on_unindexed_field_scans(self, engine):
        plan = plan_query(parse_query("year = 1980 OR year = 1981"), engine.store)
        assert isinstance(plan.access, FullScan)

    def test_conjunct_level_rewrite(self, engine):
        plan = plan_query(
            parse_query('(name = "a" OR name = "b") AND year >= 1982'), engine.store
        )
        assert isinstance(plan.access, IndexMultiLookup)
        assert "year" in str(plan.residual)


class TestExecution:
    def test_results_match_scan(self, engine):
        for query in (
            'name = "a" OR name = "b"',
            'name = "a" OR name = "a"',
            '(name = "a" OR name = "c") AND year >= 1981',
            'NOT (name = "a" OR name = "b")',
        ):
            planned = sorted(r["id"] for r in engine.execute(query))
            scanned = sorted(r["id"] for r in engine.execute_without_indexes(query))
            assert planned == scanned, query

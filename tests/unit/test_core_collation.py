"""Unit tests for repro.core.collation — the artifact's ordering rules."""

import pytest

from repro.core.collation import (
    CollationOptions,
    collation_key,
    naive_key,
    name_sort_key,
    sort_entries,
    surname_sort_key,
)
from repro.core.entry import PublicationRecord, explode


def entries_for(*author_citation_pairs):
    out = []
    for i, (author, citation) in enumerate(author_citation_pairs):
        record = PublicationRecord.create(i + 1, f"Title {i}", [author], citation)
        out.extend(explode(record))
    return out


def ordered_surnames(*author_citation_pairs, options=CollationOptions()):
    entries = sort_entries(entries_for(*author_citation_pairs), options)
    return [e.author.surname for e in entries]


class TestSurnameKeys:
    def test_case_insensitive(self):
        assert surname_sort_key("MCATEER") == surname_sort_key("McAteer")

    def test_apostrophe_ignored(self):
        assert surname_sort_key("O'Brien") == "obrien"

    def test_hyphen_is_word_break(self):
        assert surname_sort_key("Bates-Smith") == "bates smith"

    def test_space_kept_for_word_by_word_filing(self):
        assert surname_sort_key("Van Tol") == "van tol"
        assert surname_sort_key("Van Tol") < surname_sort_key("VanCamp")

    def test_mc_literal_by_default(self):
        assert surname_sort_key("McAteer") == "mcateer"

    def test_mc_as_mac_option(self):
        options = CollationOptions(mc_as_mac=True)
        assert surname_sort_key("McAteer", options) == "macateer"

    def test_mac_not_doubled(self):
        options = CollationOptions(mc_as_mac=True)
        assert surname_sort_key("MacLeod", options) == "macleod"


class TestArtifactOrdering:
    def test_mc_files_literally(self):
        # The printed artifact: Maxwell < McAteer < McBride < Meadows.
        got = ordered_surnames(
            ("Meadows, James D.", "85:969 (1983)"),
            ("McBride, Timothy B.", "90:731 (1988)"),
            ("Maxwell, Robert E.", "70:155 (1968)"),
            ("McAteer, J. Davitt", "80:397 (1978)"),
        )
        assert got == ["Maxwell", "McAteer", "McBride", "Meadows"]

    def test_mc_as_mac_changes_order(self):
        got = ordered_surnames(
            ("Maxwell, Robert E.", "70:155 (1968)"),
            ("McAteer, J. Davitt", "80:397 (1978)"),
            options=CollationOptions(mc_as_mac=True),
        )
        assert got == ["McAteer", "Maxwell"]

    def test_given_name_breaks_ties(self):
        entries = sort_entries(entries_for(
            ("Brown, Ronald R.", "69:327 (1967)"),
            ("Brown, Jay M.", "80:1 (1977)"),
            ("Brown, Kelley L.", "95:1091 (1993)"),
        ))
        assert [e.author.given for e in entries] == ["Jay M.", "Kelley L.", "Ronald R."]

    def test_honorific_ignored_in_ordering(self):
        entries = sort_entries(entries_for(
            ("Byrd, Ray A.", "71:416 (1969)"),
            ("Byrd, Hon. Robert C.", "90:727 (1988)"),
        ))
        # "Ray A." < "Robert C."; the Hon. must not sort under "h".
        assert [e.author.given for e in entries] == ["Ray A.", "Robert C."]

    def test_suffix_seniority_order(self):
        entries = sort_entries(entries_for(
            ("Smith, John, III", "70:1 (1968)"),
            ("Smith, John", "70:2 (1968)"),
            ("Smith, John, Jr.", "70:3 (1968)"),
            ("Smith, John, II", "70:4 (1968)"),
        ))
        assert [e.author.suffix for e in entries] == ["", "Jr.", "II", "III"]

    def test_citation_order_within_author(self):
        entries = sort_entries(entries_for(
            ("Cardi, Vincent P.", "95:913 (1993)"),
            ("Cardi, Vincent P.", "75:319 (1973)"),
            ("Cardi, Vincent P.", "77:401 (1975)"),
        ))
        assert [e.citation.volume for e in entries] == [75, 77, 95]

    def test_student_rows_after_nonstudent(self):
        records = [
            PublicationRecord.create(1, "Student note", ["Bryant, S. Benjamin*"], "79:610 (1977)"),
            PublicationRecord.create(2, "Article", ["Bryant, S. Benjamin"], "95:663 (1993)"),
        ]
        entries = sort_entries([e for r in records for e in explode(r)])
        assert [e.is_student_work for e in entries] == [False, True]

    def test_student_rule_can_be_disabled(self):
        records = [
            PublicationRecord.create(1, "Student note", ["Bryant, S. Benjamin*"], "79:610 (1977)"),
            PublicationRecord.create(2, "Article", ["Bryant, S. Benjamin"], "95:663 (1993)"),
        ]
        entries = sort_entries(
            [e for r in records for e in explode(r)],
            CollationOptions(ignore_student_flag=True),
        )
        # Without the rule, citation order puts the 1977 student note first.
        assert [e.is_student_work for e in entries] == [True, False]

    def test_diacritics_fold(self):
        got = ordered_surnames(
            ("Zúñiga, A.", "70:1 (1968)"),
            ("Zlotnick, David", "83:375 (1981)"),
        )
        assert got == ["Zlotnick", "Zúñiga"]

    def test_hyphenated_files_word_by_word(self):
        got = ordered_surnames(
            ("Bates-Smith, Pamela A.", "84:687 (1982)"),
            ("Bates, Zed", "70:1 (1968)"),
            ("Batessmith, Aaa", "70:2 (1968)"),
        )
        # Word-by-word filing: the hyphen break files before the run-on.
        assert got == ["Bates", "Bates-Smith", "Batessmith"]

    def test_van_block_matches_artifact(self):
        got = ordered_surnames(
            ("vanEgmond, Lee", "94:531 (1991)"),
            ("VanCamp, Stephen R.", "92:761 (1990)"),
            ("Van Tol, Joan E.", "91:1 (1988)"),
            ("Van Damme, Monique", "89:803 (1987)"),
        )
        assert got == ["Van Damme", "Van Tol", "VanCamp", "vanEgmond"]


class TestKeys:
    def test_name_sort_key_options(self):
        from repro.names.parser import parse_name

        name = parse_name("Smith, John, Jr.")
        full = name_sort_key(name)
        no_suffix = name_sort_key(name, CollationOptions(ignore_suffix=True))
        assert len(full) > len(no_suffix)

    def test_collation_key_deterministic(self, sample_records):
        entries = [e for r in sample_records for e in explode(r)]
        assert [collation_key(e) for e in entries] == [collation_key(e) for e in entries]

    def test_naive_key_differs_on_case(self):
        entries = entries_for(
            ("mcateer, J.", "70:1 (1968)"),
            ("Maxwell, R.", "70:2 (1968)"),
        )
        naive_sorted = sorted(entries, key=naive_key)
        proper_sorted = sort_entries(entries)
        # Raw string sort puts capital M before lowercase m (wrong);
        # proper collation folds case.
        assert [e.author.surname for e in naive_sorted] == ["Maxwell", "mcateer"]
        assert [e.author.surname for e in proper_sorted] == ["Maxwell", "mcateer"]

    def test_naive_key_wrong_on_apostrophe(self):
        entries = entries_for(
            ("O'Brien, A.", "70:1 (1968)"),
            ("Oakes, B.", "70:2 (1968)"),
        )
        naive_sorted = sorted(entries, key=naive_key)
        proper_sorted = sort_entries(entries)
        # Apostrophe (0x27) < 'a': naive puts O'Brien first; folded keys
        # compare obrien > oakes, so proper order is Oakes first.
        assert [e.author.surname for e in naive_sorted] == ["O'Brien", "Oakes"]
        assert [e.author.surname for e in proper_sorted] == ["Oakes", "O'Brien"]


class TestTotalOrder:
    def test_sort_is_permutation_invariant(self, sample_records):
        import random

        entries = [e for r in sample_records for e in explode(r)]
        baseline = sort_entries(entries)
        for seed in range(5):
            shuffled = entries[:]
            random.Random(seed).shuffle(shuffled)
            assert sort_entries(shuffled) == baseline

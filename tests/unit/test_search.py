"""Unit tests for the full-text search subsystem."""

import pytest

from repro.core.entry import PublicationRecord
from repro.search.engine import TitleSearchEngine, _parse_query
from repro.search.inverted import InvertedIndex, analyze


def rec(i, title, citation="90:1 (1987)"):
    return PublicationRecord.create(i, title, ["A, B."], citation)


class TestAnalyze:
    def test_stopwords_hold_positions(self):
        assert analyze("The Law of Coal") == [("law", 1), ("coal", 3)]

    def test_folding(self):
        assert analyze("COAL Mining") == [("coal", 0), ("mining", 1)]

    def test_punctuation_stripped(self):
        assert analyze('"Takes" Private!') == [("takes", 0), ("private", 1)]

    def test_empty(self):
        assert analyze("") == []

    def test_all_stopwords(self):
        assert analyze("the of and") == []


class TestInvertedIndex:
    @pytest.fixture()
    def index(self):
        idx = InvertedIndex()
        idx.add(1, "The Law of Coal")
        idx.add(2, "Coal Mining Law")
        idx.add(3, "Water Rights in Appalachia")
        return idx

    def test_search_or(self, index):
        assert index.search_or(["coal", "water"]) == {1, 2, 3}

    def test_search_and(self, index):
        assert index.search_and(["coal", "law"]) == {1, 2}
        assert index.search_and(["coal", "water"]) == set()

    def test_search_and_missing_term(self, index):
        assert index.search_and(["coal", "uranium"]) == set()

    def test_case_insensitive_queries(self, index):
        assert index.search_and(["COAL"]) == {1, 2}

    def test_phrase_adjacent(self, index):
        assert index.search_phrase(["coal", "mining"]) == [2]

    def test_phrase_spanning_stopword(self, index):
        # "Law of Coal": law@1, coal@3 — one stopword between.
        assert index.search_phrase(["law", "coal"]) == [1]

    def test_phrase_wrong_order(self, index):
        assert index.search_phrase(["mining", "coal"]) == []

    def test_phrase_too_far_apart(self):
        idx = InvertedIndex()
        idx.add(1, "coal one two three four five mining")
        assert idx.search_phrase(["coal", "mining"]) == []

    def test_frequencies(self, index):
        assert index.document_frequency("coal") == 2
        assert index.document_frequency("uranium") == 0
        assert index.term_frequency("coal", 1) == 1

    def test_repeated_term_frequency(self):
        idx = InvertedIndex()
        idx.add(1, "coal coal coal")
        assert idx.term_frequency("coal", 1) == 3

    def test_remove(self, index):
        assert index.remove(2) is True
        assert index.search_and(["mining"]) == set()
        assert index.document_count == 2
        assert index.remove(2) is False

    def test_readd_replaces(self, index):
        index.add(1, "Entirely New Topic")
        assert 1 not in index.search_or(["coal"])
        assert index.search_and(["topic"]) == {1}

    def test_vocabulary(self, index):
        assert "coal" in index.vocabulary()
        assert index.vocabulary() == sorted(index.vocabulary())

    def test_document_length(self, index):
        assert index.document_length(1) == 2  # law, coal
        assert index.document_length(99) == 0


class TestQueryParsing:
    def test_terms_and_phrases_split(self):
        terms, phrases = _parse_query('water "black lung" benefits')
        assert terms == ["water", "benefits"]
        assert phrases == [["black", "lung"]]

    def test_empty_phrase_ignored(self):
        terms, phrases = _parse_query('coal ""')
        assert terms == ["coal"]
        assert phrases == []

    def test_stopword_only_query(self):
        assert _parse_query("the of") == ([], [])


class TestEngine:
    @pytest.fixture()
    def engine(self):
        return TitleSearchEngine([
            rec(1, "The Law of Coal"),
            rec(2, "Coal Mining Law and More Coal"),
            rec(3, "Black Lung Benefits Reform"),
            rec(4, "A Very Long Title About Coal Among Many Many Other Topics Entirely"),
        ])

    def test_and_semantics(self, engine):
        assert {h.record_id for h in engine.search("coal law")} == {1, 2}

    def test_phrase_filters(self, engine):
        assert [h.record_id for h in engine.search('"coal mining"')] == [2]

    def test_ranking_prefers_higher_tf(self, engine):
        hits = engine.search("coal")
        assert hits[0].record_id == 2  # two "coal" occurrences

    def test_length_normalization(self, engine):
        hits = engine.search("coal")
        ids = [h.record_id for h in hits]
        assert ids.index(1) < ids.index(4)  # short title beats long one

    def test_rare_term_scores_higher(self, engine):
        lung = engine.search("lung")[0].score
        coal = max(h.score for h in engine.search("coal"))
        assert lung > 0 and coal > 0

    def test_k_limits(self, engine):
        assert len(engine.search("coal", k=1)) == 1

    def test_empty_query(self, engine):
        assert engine.search("") == []
        assert engine.search("the of") == []

    def test_no_hits(self, engine):
        assert engine.search("uranium") == []


class TestRepositoryIntegration:
    def test_search_titles(self, reference_records):
        from repro.repository import PublicationRepository

        repo = PublicationRepository()
        repo.add_all(reference_records)
        hits = repo.search_titles('"black lung"', k=5)
        assert hits
        assert all("Lung" in h.title for h in hits)

    def test_cache_invalidated_on_write(self, reference_records):
        from repro.repository import PublicationRepository

        repo = PublicationRepository()
        repo.add_all(reference_records[:10])
        assert repo.search_titles("zymurgy") == []
        repo.add(rec(999, "Advanced Zymurgy Law", "95:1400 (1993)"))
        hits = repo.search_titles("zymurgy")
        assert [h.record_id for h in hits] == [999]

    def test_cache_reused_when_clean(self, reference_records):
        from repro.repository import PublicationRepository

        repo = PublicationRepository()
        repo.add_all(reference_records[:10])
        repo.search_titles("coal")
        engine_one = repo._search_cache[1]
        repo.search_titles("water")
        assert repo._search_cache[1] is engine_one

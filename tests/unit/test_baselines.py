"""Unit tests for repro.baselines.naive."""

from repro.baselines.naive import NaiveIndexBuilder, naive_build
from repro.core.builder import build_index
from repro.core.diffing import diff_indexes
from repro.core.entry import PublicationRecord


class TestNaiveBuilder:
    def test_explodes_like_real_builder(self, sample_records):
        naive = naive_build(sample_records)
        proper = build_index(sample_records)
        assert {e.row_key() for e in naive} == {e.row_key() for e in proper}

    def test_no_dedup(self):
        dup = [
            PublicationRecord.create(1, "T", ["A, X."], "70:1 (1968)"),
            PublicationRecord.create(2, "T", ["A, X."], "70:1 (1968)"),
        ]
        assert len(naive_build(dup)) == 2
        assert len(build_index(dup)) == 1

    def test_raw_sort_misorders_apostrophes(self):
        recs = [
            PublicationRecord.create(1, "A", ["O'Brien, A."], "70:1 (1968)"),
            PublicationRecord.create(2, "B", ["Oakes, B."], "70:2 (1968)"),
        ]
        naive = naive_build(recs)
        proper = build_index(recs)
        assert [e.author.surname for e in naive] == ["O'Brien", "Oakes"]
        assert [e.author.surname for e in proper] == ["Oakes", "O'Brien"]

    def test_measurable_gap_on_reference_corpus(self, reference_records):
        naive = naive_build(reference_records)
        proper = build_index(reference_records)
        diff = diff_indexes(naive, proper)
        # Same universe of rows modulo the duplicates naive keeps...
        assert len(diff.missing) == 0
        # ...but the ordering disagrees somewhere (case folding,
        # apostrophes, honorifics).
        assert diff.inversion_distance > 0

    def test_chaining_interface(self, sample_records):
        builder = NaiveIndexBuilder()
        assert builder.add_record(sample_records[0]) is builder
        assert builder.add_records(sample_records[1:]) is builder
        assert len(builder.build()) > 0

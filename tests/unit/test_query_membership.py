"""Unit tests for the IN operator and query-driven deletes."""

import pytest

from repro.errors import QueryPlanError, QuerySyntaxError
from repro.query.ast_nodes import Membership
from repro.query.executor import QueryEngine
from repro.query.parser import parse_query
from repro.query.planner import IndexMultiLookup, plan_query
from repro.storage.store import IndexKind


@pytest.fixture()
def engine(memory_store):
    rows = [
        {"id": 1, "name": "smith", "year": 1980, "tags": ["coal"]},
        {"id": 2, "name": "jones", "year": 1985, "tags": ["tax"]},
        {"id": 3, "name": "li", "year": 1990, "tags": ["coal", "tort"]},
        {"id": 4, "name": "garcia", "year": 1995, "tags": []},
    ]
    for row in rows:
        memory_store.insert(row)
    memory_store.create_index("name", IndexKind.HASH)
    return QueryEngine(memory_store)


def ids(rows):
    return sorted(r["id"] for r in rows)


class TestParsing:
    def test_in_list_parsed(self):
        q = parse_query('name IN ("a", "b", "c")')
        assert q.where == Membership("name", ("a", "b", "c"))

    def test_single_value_list(self):
        q = parse_query("year IN (1980)")
        assert q.where == Membership("year", (1980,))

    def test_mixed_with_and(self):
        q = parse_query('name IN ("a", "b") AND year >= 1980')
        assert "IN" in str(q.where)

    @pytest.mark.parametrize("bad", [
        "name IN ()",
        "name IN (1,)",
        "name IN 1, 2",
        "name IN (1 2)",
        "IN (1)",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)


class TestEvaluation:
    def test_scalar_membership(self):
        q = parse_query("year IN (1980, 1990)")
        assert q.matches({"year": 1980})
        assert q.matches({"year": 1990})
        assert not q.matches({"year": 1985})
        assert not q.matches({})

    def test_list_field_membership(self):
        q = parse_query('tags IN ("coal", "tax")')
        assert q.matches({"tags": ["tort", "tax"]})
        assert not q.matches({"tags": ["tort"]})

    def test_negated(self):
        q = parse_query("NOT year IN (1980)")
        assert q.matches({"year": 1990})


class TestPlanning:
    def test_multi_lookup_chosen(self, engine):
        plan = plan_query(parse_query('name IN ("smith", "li")'), engine.store)
        assert plan.access == IndexMultiLookup(
            field="name", values=("smith", "li"), kind="hash"
        )
        assert plan.residual is None

    def test_single_equality_preferred_over_in(self, engine):
        plan = plan_query(
            parse_query('name = "smith" AND name IN ("smith", "li")'), engine.store
        )
        assert plan.access.__class__.__name__ == "IndexLookup"

    def test_unindexed_in_scans(self, engine):
        plan = plan_query(parse_query("year IN (1980, 1990)"), engine.store)
        assert plan.access.__class__.__name__ == "FullScan"

    def test_explain(self, engine):
        assert engine.explain('name IN ("smith", "li")').startswith(
            "INDEX MULTI-LOOKUP (hash)"
        )


class TestExecution:
    def test_multi_probe_results(self, engine):
        assert ids(engine.execute('name IN ("smith", "li")')) == [1, 3]

    def test_no_duplicates_across_probes(self, engine):
        rows = engine.execute('name IN ("smith", "smith")')
        assert ids(rows) == [1]

    def test_equivalence_with_scan(self, engine):
        query = 'name IN ("smith", "li", "nobody") AND year >= 1985'
        assert ids(engine.execute(query)) == ids(engine.execute_without_indexes(query))

    def test_in_over_list_field(self, engine):
        assert ids(engine.execute('tags IN ("coal")')) == [1, 3]


class TestDelete:
    def test_delete_matching(self, engine):
        deleted = engine.delete("year >= 1990")
        assert deleted == 2
        assert ids(engine.execute("*")) == [1, 2]

    def test_delete_none(self, engine):
        assert engine.delete('name = "nobody"') == 0
        assert len(engine.execute("*")) == 4

    def test_delete_all(self, engine):
        assert engine.delete("*") == 4
        assert engine.execute("*") == []

    def test_delete_rejects_presentation_clauses(self, engine):
        with pytest.raises(QueryPlanError):
            engine.delete("year >= 1980 LIMIT 1")
        with pytest.raises(QueryPlanError):
            engine.delete("* ORDER BY year")
        with pytest.raises(QueryPlanError):
            engine.delete("* GROUP BY name")

    def test_delete_updates_indexes(self, engine):
        engine.delete('name = "smith"')
        assert engine.execute('name IN ("smith")') == []

    def test_delete_is_atomic_in_wal(self, simple_schema, tmp_path):
        from repro.storage.store import RecordStore
        from repro.storage.wal import WriteAheadLog

        with RecordStore(simple_schema, tmp_path / "db") as store:
            for i in range(4):
                store.insert({"id": i, "name": "x", "year": 1990 + i})
            engine = QueryEngine(store)
            assert engine.delete("year >= 1992") == 2
        entries = WriteAheadLog.replay_path(tmp_path / "db" / "store.wal")
        assert entries[-1].payload["op"] == "batch"
        with RecordStore(simple_schema, tmp_path / "db") as store:
            assert sorted(store.keys()) == [0, 1]

"""Unit tests for composite-index planning in the query engine."""

import pytest

from repro.query.executor import QueryEngine
from repro.query.parser import parse_query
from repro.query.planner import (
    CompositeLookup,
    CompositeRange,
    FullScan,
    IndexLookup,
    plan_query,
)
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.store import IndexKind, RecordStore


@pytest.fixture()
def store():
    schema = Schema(
        [
            Field("id", FieldType.INT),
            Field("volume", FieldType.INT),
            Field("page", FieldType.INT),
            Field("year", FieldType.INT),
        ],
        primary_key="id",
    )
    s = RecordStore(schema)
    i = 0
    for volume in range(69, 96):
        for page in range(1, 40):
            s.insert({"id": i, "volume": volume, "page": page, "year": 1897 + volume})
            i += 1
    s.create_composite_index(("volume", "page"))
    return s


def plan(store, text):
    return plan_query(parse_query(text), store)


class TestPlanChoice:
    def test_full_equality_uses_composite_lookup(self, store):
        p = plan(store, "volume = 95 AND page = 10")
        assert p.access == CompositeLookup(fields=("volume", "page"), values=(95, 10))
        assert p.residual is None

    def test_prefix_plus_range_uses_composite_range(self, store):
        p = plan(store, "volume = 95 AND page >= 10 AND page < 20")
        assert p.access == CompositeRange(
            fields=("volume", "page"),
            prefix=(95,),
            low=10,
            high=20,
            include_low=True,
            include_high=False,
        )
        assert p.residual is None

    def test_prefix_only_equality_falls_to_scan_without_other_index(self, store):
        # one equality on the leading field alone: rule 1 has no index and
        # the composite prefix rule requires >= 2 fixed fields
        p = plan(store, "volume = 95")
        assert isinstance(p.access, FullScan)

    def test_range_on_leading_field_not_served(self, store):
        p = plan(store, "volume >= 90 AND page = 3")
        assert isinstance(p.access, FullScan)

    def test_equality_on_trailing_field_only_not_served(self, store):
        p = plan(store, "page = 3")
        assert isinstance(p.access, FullScan)

    def test_composite_beats_single_field_index(self, store):
        store.create_index("volume", IndexKind.HASH)
        p = plan(store, "volume = 95 AND page = 10")
        assert isinstance(p.access, CompositeLookup)

    def test_single_index_used_when_composite_inapplicable(self, store):
        store.create_index("year", IndexKind.HASH)
        p = plan(store, "year = 1992 AND page >= 30")
        assert isinstance(p.access, IndexLookup)
        assert "page" in str(p.residual)

    def test_residual_keeps_other_clauses(self, store):
        p = plan(store, "volume = 95 AND page = 10 AND year = 1992")
        assert isinstance(p.access, CompositeLookup)
        assert "year" in str(p.residual)

    def test_explain_output(self, store):
        engine = QueryEngine(store)
        assert engine.explain("volume = 95 AND page = 10").startswith(
            "COMPOSITE LOOKUP (volume+page)"
        )
        assert engine.explain("volume = 95 AND page > 5").startswith(
            "COMPOSITE RANGE (volume+page)"
        )


class TestExecutionEquivalence:
    QUERIES = [
        "volume = 95 AND page = 10",
        "volume = 95 AND page >= 10 AND page < 20",
        "volume = 95 AND page > 38",
        "volume = 69 AND page <= 3 ORDER BY page",
        "volume = 95 AND page = 10 AND year = 1992",
        "volume = 95 AND page = 10 AND year = 1800",  # residual kills all
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_scan(self, store, query):
        engine = QueryEngine(store)
        planned = sorted(r["id"] for r in engine.execute(query))
        scanned = sorted(r["id"] for r in engine.execute_without_indexes(query))
        assert planned == scanned

    def test_three_field_composite(self):
        schema = Schema(
            [
                Field("id", FieldType.INT),
                Field("a", FieldType.INT),
                Field("b", FieldType.INT),
                Field("c", FieldType.INT),
            ],
            primary_key="id",
        )
        store = RecordStore(schema)
        i = 0
        for a in range(3):
            for b in range(3):
                for c in range(3):
                    store.insert({"id": i, "a": a, "b": b, "c": c})
                    i += 1
        store.create_composite_index(("a", "b", "c"))
        engine = QueryEngine(store)

        p = plan_query(parse_query("a = 1 AND b = 2 AND c = 0"), store)
        assert isinstance(p.access, CompositeLookup)

        p = plan_query(parse_query("a = 1 AND b = 2 AND c >= 1"), store)
        assert isinstance(p.access, CompositeRange)
        assert p.access.prefix == (1, 2)

        p = plan_query(parse_query("a = 1 AND b = 2"), store)
        assert isinstance(p.access, CompositeRange)  # bare 2-field prefix scan

        for query in ("a = 1 AND b = 2 AND c = 0", "a = 1 AND b = 2 AND c >= 1", "a = 1 AND b = 2"):
            planned = sorted(r["id"] for r in engine.execute(query))
            scanned = sorted(r["id"] for r in engine.execute_without_indexes(query))
            assert planned == scanned

"""Unit tests for the repro.textproc package."""

import random

import pytest

from repro.textproc.hyphenation import count_word_breaks, join_hyphen_wraps, unwrap_lines
from repro.textproc.ocr import OCRNoiseModel, OCRRepairer
from repro.textproc.tokenize import sentence_case, tokenize, word_shape


class TestTokenize:
    def test_simple_words(self):
        assert tokenize("The Law of Coal") == ["The", "Law", "of", "Coal"]

    def test_quotes_peeled(self):
        assert tokenize('"Takes" Private') == ['"', "Takes", '"', "Private"]

    def test_parens(self):
        assert tokenize("(1982)") == ["(", "1982", ")"]

    def test_abbreviations_keep_periods(self):
        assert tokenize("U.S. v. Smith") == ["U.S.", "v.", "Smith"]

    def test_hyphenated_kept_whole(self):
        assert "Due-on-Sale" in tokenize('The "Due-on-Sale" Clause')

    def test_empty(self):
        assert tokenize("") == []

    def test_trailing_punctuation(self):
        assert tokenize("reform?") == ["reform", "?"]


class TestWordShape:
    @pytest.mark.parametrize("token,shape", [
        ("McAteer", "XxXx"),
        ("AUTHOR", "X"),
        ("95:1365", "9:9"),
        ("abc", "x"),
        ("A.", "X."),
        ("", ""),
    ])
    def test_shapes(self, token, shape):
        assert word_shape(token) == shape


class TestSentenceCase:
    def test_shouting_normalized(self):
        assert sentence_case("THE LAW OF COAL") == "The Law of Coal"

    def test_minor_words_lowered(self):
        assert sentence_case("the future of the coal industry") == (
            "The Future of the Coal Industry"
        )

    def test_acronym_preserved_in_mixed_case(self):
        assert sentence_case("fifty years of the NLRB") == "Fifty Years of the NLRB"

    def test_mixed_case_word_preserved(self):
        assert "McAteer" in sentence_case("a tribute to McAteer today")

    def test_first_and_last_always_capitalized(self):
        out = sentence_case("of mice and of")
        assert out.startswith("Of")
        assert out.endswith("Of")

    def test_empty(self):
        assert sentence_case("") == ""


class TestHyphenation:
    def test_word_break_joined(self):
        joined, was_break = join_hyphen_wraps("First to Sur-", "vive an Attack")
        assert joined == "First to Survive an Attack"
        assert was_break is True

    def test_compound_kept(self):
        joined, was_break = join_hyphen_wraps("the Employer-", "Employee Relationship")
        assert joined == "the Employer-Employee Relationship"
        assert was_break is False

    def test_no_hyphen_space_join(self):
        joined, was_break = join_hyphen_wraps("line one", "line two")
        assert joined == "line one line two"
        assert was_break is False

    def test_empty_continuation(self):
        joined, _ = join_hyphen_wraps("word-", "")
        assert joined == "word"

    def test_unicode_hyphen(self):
        joined, was_break = join_hyphen_wraps("Sur‐", "vive")
        assert joined == "Survive"
        assert was_break is True

    def test_unwrap_lines_full_title(self):
        lines = [
            "The Federal Surface Mining Control and",
            "Reclamation Act of 1977-First to Sur-",
            "vive a Direct Tenth Amendment Attack",
        ]
        assert unwrap_lines(lines) == (
            "The Federal Surface Mining Control and Reclamation Act of "
            "1977-First to Survive a Direct Tenth Amendment Attack"
        )

    def test_unwrap_empty(self):
        assert unwrap_lines([]) == ""

    def test_unwrap_single(self):
        assert unwrap_lines(["only line"]) == "only line"

    def test_count_word_breaks(self):
        lines = ["a Sur-", "vive b", "Employer-", "Employee"]
        assert count_word_breaks(lines) == 1


class TestOCRNoiseModel:
    def test_deterministic_given_seed(self):
        a = OCRNoiseModel(rate=10.0, rng=random.Random(3)).corrupt("Johnson, Edward")
        b = OCRNoiseModel(rate=10.0, rng=random.Random(3)).corrupt("Johnson, Edward")
        assert a == b

    def test_zero_rate_no_change_mostly(self):
        model = OCRNoiseModel(rate=0.0, rng=random.Random(1))
        assert model.corrupt("Johnson") == "Johnson"

    def test_high_rate_changes_text(self):
        model = OCRNoiseModel(rate=50.0, rng=random.Random(1))
        texts = ["Johnson, Edward P." for _ in range(5)]
        assert any(model.corrupt(t) != t for t in texts)

    def test_empty_text(self):
        model = OCRNoiseModel(rate=50.0, rng=random.Random(1))
        assert model.corrupt("") == ""

    def test_damage_is_small_edits(self):
        from repro.names.similarity import damerau_levenshtein

        model = OCRNoiseModel(rate=2.0, rng=random.Random(7))
        original = "Herndon, Judith Raymond"
        for _ in range(20):
            noisy = model.corrupt(original)
            assert damerau_levenshtein(original, noisy) <= 4


class TestOCRRepairer:
    def test_clean_token_unchanged(self):
        repairer = OCRRepairer(["Johnson"])
        assert repairer.repair("Johnson") == "Johnson"

    def test_confusion_reversed(self):
        repairer = OCRRepairer(["Johnson", "Herndon"])
        assert repairer.repair("Johson") == "Johnson"
        assert repairer.repair("Hemdon") == "Herndon"

    def test_dropped_char_restored(self):
        repairer = OCRRepairer(["Maxwell"])
        assert repairer.repair("Maxwll") == "Maxwell"

    def test_swap_undone(self):
        repairer = OCRRepairer(["Maxwell"])
        assert repairer.repair("Mawxell") == "Maxwell"

    def test_unknown_token_left_alone(self):
        repairer = OCRRepairer(["Johnson"])
        assert repairer.repair("Zebra") == "Zebra"

    def test_ambiguity_leaves_unchanged(self):
        # "Smth" could be Smith or Smyth: ambiguous, so unchanged.
        repairer = OCRRepairer(["Smith", "Smyth"])
        assert repairer.repair("Smth") == "Smth"

    def test_case_folded_lookup(self):
        repairer = OCRRepairer(["Johnson"])
        assert repairer.repair("johnson") == "Johnson"

    def test_repair_text_tokenwise(self):
        repairer = OCRRepairer(["Johnson", "Edward"])
        assert repairer.repair_text("Johson Edwad") == "Johnson Edward"

    def test_contains(self):
        repairer = OCRRepairer(["Johnson"])
        assert "Johnson" in repairer
        assert "Nope" not in repairer

"""Unit tests for repro.core.diffing."""

from repro.baselines.naive import naive_build
from repro.core.builder import build_index
from repro.core.diffing import _count_inversions, diff_indexes
from repro.core.entry import PublicationRecord


def records(n=6):
    return [
        PublicationRecord.create(i + 1, f"Title {i}", [f"Author{i:02d}, A."], f"90:{i+1} (1987)")
        for i in range(n)
    ]


class TestCountInversions:
    def test_sorted(self):
        assert _count_inversions([1, 2, 3, 4]) == 0

    def test_reversed(self):
        assert _count_inversions([4, 3, 2, 1]) == 6

    def test_single_swap(self):
        assert _count_inversions([1, 3, 2]) == 1

    def test_empty_and_single(self):
        assert _count_inversions([]) == 0
        assert _count_inversions([7]) == 0

    def test_matches_bruteforce(self):
        import random

        rng = random.Random(9)
        for _ in range(20):
            seq = [rng.randrange(50) for _ in range(30)]
            brute = sum(
                1
                for i in range(len(seq))
                for j in range(i + 1, len(seq))
                if seq[i] > seq[j]
            )
            assert _count_inversions(seq) == brute


class TestDiffIndexes:
    def test_identical(self):
        a = build_index(records())
        b = build_index(records())
        diff = diff_indexes(a, b)
        assert diff.is_identical
        assert diff.order_fidelity == 1.0
        assert diff.common_count == 6

    def test_missing_entries(self):
        full = build_index(records(6))
        partial = build_index(records(4))
        diff = diff_indexes(partial, full)
        assert len(diff.missing) == 2
        assert len(diff.extra) == 0
        assert not diff.is_identical

    def test_extra_entries(self):
        full = build_index(records(6))
        partial = build_index(records(4))
        diff = diff_indexes(full, partial)
        assert len(diff.extra) == 2
        assert len(diff.missing) == 0

    def test_order_disagreement_measured(self):
        # The naive baseline mis-handles apostrophes, producing inversions
        # relative to proper collation.
        recs = [
            PublicationRecord.create(1, "A", ["O'Brien, A."], "70:1 (1968)"),
            PublicationRecord.create(2, "B", ["Oakes, B."], "70:2 (1968)"),
            PublicationRecord.create(3, "C", ["Osborne, C."], "70:3 (1968)"),
        ]
        proper = build_index(recs)
        naive = naive_build(recs)
        diff = diff_indexes(naive, proper)
        assert diff.common_count == 3
        assert diff.inversion_distance > 0
        assert diff.order_fidelity < 1.0

    def test_summary_text(self):
        diff = diff_indexes(build_index(records()), build_index(records()))
        assert "common=6" in diff.summary()
        assert "order_fidelity=1.0000" in diff.summary()

    def test_empty_indexes(self):
        diff = diff_indexes(build_index([]), build_index([]))
        assert diff.is_identical

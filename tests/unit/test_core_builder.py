"""Unit tests for repro.core.builder."""

import pytest

from repro.core.builder import AuthorIndexBuilder, build_index
from repro.core.collation import CollationOptions
from repro.core.entry import PublicationRecord
from repro.errors import RenderError
from repro.names.resolution import NameResolver


class TestBuilder:
    def test_empty_build(self):
        index = AuthorIndexBuilder().build()
        assert len(index) == 0
        assert index.groups() == []

    def test_add_record_chaining(self, sample_records):
        builder = AuthorIndexBuilder()
        assert builder.add_record(sample_records[0]) is builder
        assert builder.record_count == 1

    def test_add_records(self, sample_records):
        builder = AuthorIndexBuilder().add_records(sample_records)
        assert builder.record_count == len(sample_records)

    def test_explodes_coauthors(self, sample_records):
        index = build_index(sample_records)
        surnames = [e.author.surname for e in index]
        assert surnames.count("Galloway") == 1
        assert surnames.count("McAteer") == 1
        assert surnames.count("Webb") == 1

    def test_entries_sorted(self, sample_records):
        from repro.core.collation import collation_key

        index = build_index(sample_records)
        keys = [collation_key(e) for e in index]
        assert keys == sorted(keys)

    def test_duplicate_rows_deduped(self):
        record = PublicationRecord.create(1, "T", ["A, X."], "70:1 (1968)")
        same_again = PublicationRecord.create(2, "T", ["A, X."], "70:1 (1968)")
        index = build_index([record, same_again])
        assert len(index) == 1

    def test_same_title_different_citation_kept(self):
        a = PublicationRecord.create(1, "T", ["A, X."], "70:1 (1968)")
        b = PublicationRecord.create(2, "T", ["A, X."], "71:1 (1969)")
        assert len(build_index([a, b])) == 2

    def test_build_is_repeatable(self, sample_records):
        builder = AuthorIndexBuilder().add_records(sample_records)
        first = builder.build()
        second = builder.build()
        assert list(first) == list(second)

    def test_options_respected(self, sample_records):
        default = build_index(sample_records)
        mc_as_mac = build_index(
            sample_records, options=CollationOptions(mc_as_mac=True)
        )
        default_names = [e.author.surname for e in default]
        mac_names = [e.author.surname for e in mc_as_mac]
        assert default_names != mac_names  # McAteer moves before Maxwell


class TestGroups:
    def test_groups_consecutive_same_author(self):
        records = [
            PublicationRecord.create(1, "One", ["Cardi, Vincent P."], "75:319 (1973)"),
            PublicationRecord.create(2, "Two", ["Cardi, Vincent P."], "77:401 (1975)"),
            PublicationRecord.create(3, "Other", ["Adler, Mortimer J."], "84:1 (1981)"),
        ]
        groups = build_index(records).groups()
        assert [g.heading for g in groups] == ["Adler, Mortimer J.", "Cardi, Vincent P."]
        assert [len(g.entries) for g in groups] == [1, 2]

    def test_student_and_nonstudent_separate_headings(self):
        records = [
            PublicationRecord.create(1, "Note", ["Bryant, S. Benjamin*"], "79:610 (1977)"),
            PublicationRecord.create(2, "Article", ["Bryant, S. Benjamin"], "95:663 (1993)"),
        ]
        groups = build_index(records).groups()
        assert len(groups) == 2
        assert groups[0].entries[0].is_student_work is False
        assert groups[1].entries[0].is_student_work is True

    def test_authors_listing(self, sample_records):
        index = build_index(sample_records)
        authors = index.authors()
        assert len(authors) == len(index.groups())


class TestResolution:
    def test_variants_merge_into_one_heading(self):
        records = [
            PublicationRecord.create(1, "One", ["Herdon, Judith*"], "69:302 (1967)"),
            PublicationRecord.create(2, "Two", ["Hemdon, Judith*"], "69:239 (1967)"),
        ]
        plain = build_index(records)
        resolved = build_index(records, resolve_variants=True)
        assert len(plain.groups()) == 2
        assert len(resolved.groups()) == 1

    def test_custom_resolver(self):
        records = [
            PublicationRecord.create(1, "One", ["Herdon, Judith"], "69:302 (1967)"),
            PublicationRecord.create(2, "Two", ["Hemdon, Judith"], "69:239 (1967)"),
        ]
        strict = AuthorIndexBuilder(resolver=NameResolver(threshold=0.999))
        index = strict.add_records(records).build()
        assert len(index.groups()) == 2  # threshold too strict to merge


class TestRenderDispatch:
    def test_unknown_format(self, sample_records):
        index = build_index(sample_records)
        with pytest.raises(RenderError):
            index.render("docx")

    @pytest.mark.parametrize("fmt", ["text", "markdown", "html", "latex", "json"])
    def test_all_formats_render(self, sample_records, fmt):
        output = build_index(sample_records).render(fmt)
        assert "McAteer" in output

"""Unit tests for repro.query.lexer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.lexer import TokenType, tokenize_query


def types(text: str) -> list[str]:
    return [t.type.name for t in tokenize_query(text)]


def values(text: str) -> list:
    return [t.value for t in tokenize_query(text)][:-1]  # drop EOF


class TestTokens:
    def test_empty(self):
        assert types("") == ["EOF"]

    def test_whitespace_only(self):
        assert types("   \t ") == ["EOF"]

    def test_identifiers(self):
        assert types("author surname_x a.b c-d") == ["IDENT"] * 4 + ["EOF"]

    def test_numbers(self):
        assert values("1980 3.5 -7") == [1980, 3.5, -7]

    def test_number_types(self):
        v = values("1980 3.5")
        assert isinstance(v[0], int)
        assert isinstance(v[1], float)

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">=", ":"])
    def test_operators(self, op):
        tokens = tokenize_query(f"a {op} 1")
        assert tokens[1].type is TokenType.OP
        assert tokens[1].value == op

    def test_le_not_split(self):
        tokens = tokenize_query("a<=1")
        assert tokens[1].value == "<="

    def test_double_quoted_string(self):
        assert values('"hello world"') == ["hello world"]

    def test_single_quoted_string(self):
        assert values("'hello'") == ["hello"]

    def test_escaped_quote(self):
        assert values(r'"a \" b"') == ['a " b']

    def test_booleans(self):
        assert values("true FALSE") == [True, False]

    def test_keywords_case_insensitive(self):
        assert types("AND and Or NOT order BY LIMIT asc DESC") == [
            "AND", "AND", "OR", "NOT", "ORDER", "BY", "LIMIT", "ASC", "DESC", "EOF",
        ]

    def test_parens_and_star(self):
        assert types("( * )") == ["LPAREN", "STAR", "RPAREN", "EOF"]

    def test_positions(self):
        tokens = tokenize_query("ab = 12")
        assert [t.position for t in tokens] == [0, 3, 5, 7]

    @pytest.mark.parametrize("bad", ["@", "#", "a & b", "£"])
    def test_junk_raises(self, bad):
        with pytest.raises(QuerySyntaxError):
            tokenize_query(bad)

    def test_error_carries_position(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            tokenize_query("abc @")
        assert excinfo.value.position == 4

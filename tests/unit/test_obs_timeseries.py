"""Time-series sampling: ring retention, persistence, windowed rates."""

import json
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesLog, TimeSeriesRecorder


def _sample(ts: TimeSeriesLog, counters: dict, epoch: float | None = None):
    record = ts.sample({"counters": counters, "gauges": {}, "histograms": {}})
    if epoch is not None:
        record["epoch"] = epoch
    return record


class TestSampling:
    def test_sample_shape(self):
        ts = TimeSeriesLog()
        record = _sample(ts, {"a.count": 3})
        assert record["counters"] == {"a.count": 3}
        assert record["ts"].endswith("Z")
        assert isinstance(record["epoch"], float)

    def test_samples_from_default_registry(self):
        ts = TimeSeriesLog()
        record = ts.sample()
        assert "counters" in record and "gauges" in record

    def test_ring_bounded(self):
        ts = TimeSeriesLog(capacity=3)
        for i in range(6):
            _sample(ts, {"i": i})
        assert [s["counters"]["i"] for s in ts.samples()] == [3, 4, 5]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesLog(capacity=1)


class TestRates:
    def test_rates_difference_counters(self):
        ts = TimeSeriesLog()
        _sample(ts, {"q.count": 100}, epoch=1000.0)
        _sample(ts, {"q.count": 160, "new.count": 5}, epoch=1010.0)
        rates = ts.rates(3600, now_epoch=1010.0)
        assert rates["samples"] == 2
        assert rates["deltas"]["q.count"] == 60
        assert rates["rates"]["q.count"] == 6.0
        # A counter absent from the first sample counts from zero.
        assert rates["deltas"]["new.count"] == 5

    def test_window_excludes_old_samples(self):
        ts = TimeSeriesLog()
        _sample(ts, {"q.count": 0}, epoch=0.0)
        _sample(ts, {"q.count": 50}, epoch=1000.0)
        _sample(ts, {"q.count": 60}, epoch=1010.0)
        rates = ts.rates(60, now_epoch=1010.0)
        assert rates["samples"] == 2
        assert rates["deltas"]["q.count"] == 10

    def test_counter_reset_counts_from_zero(self):
        ts = TimeSeriesLog()
        _sample(ts, {"q.count": 500}, epoch=1000.0)
        _sample(ts, {"q.count": 20}, epoch=1010.0)  # process restarted
        rates = ts.rates(3600, now_epoch=1010.0)
        assert rates["deltas"]["q.count"] == 20

    def test_too_few_samples_yields_empty_rates(self):
        ts = TimeSeriesLog()
        _sample(ts, {"q.count": 1}, epoch=1000.0)
        rates = ts.rates(60, now_epoch=1000.0)
        assert rates["samples"] == 1
        assert rates["rates"] == {}


class TestPersistence:
    def test_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        first = TimeSeriesLog(path)
        _sample(first, {"a": 1})
        _sample(first, {"a": 2})
        second = TimeSeriesLog(path)
        assert [s["counters"]["a"] for s in second.samples()] == [1, 2]

    def test_file_compaction_bounds_growth(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        ts = TimeSeriesLog(path, capacity=4)
        for i in range(30):
            _sample(ts, {"i": i})
        lines = [l for l in path.read_text(encoding="utf-8").splitlines() if l]
        assert len(lines) <= 2 * 4
        # Reload sees exactly the retained ring tail.
        reloaded = TimeSeriesLog(path, capacity=4)
        assert [s["counters"]["i"] for s in reloaded.samples()][-1] == 29

    def test_torn_tail_line_skipped_on_load(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        ts = TimeSeriesLog(path)
        _sample(ts, {"a": 1})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"ts": "torn...')
        reloaded = TimeSeriesLog(path)
        assert len(reloaded.samples()) == 1


class TestRecorder:
    def test_recorder_samples_periodically(self):
        registry = MetricsRegistry()
        registry.counter("r.count").inc()
        ts = TimeSeriesLog()
        recorder = TimeSeriesRecorder(ts, interval_s=0.02)
        with recorder:
            time.sleep(0.1)
        # Initial sample + >=1 interval tick + final stop() sample.
        assert len(ts.samples()) >= 3

    def test_recorder_interval_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(TimeSeriesLog(), interval_s=0)

    def test_double_start_rejected(self):
        recorder = TimeSeriesRecorder(TimeSeriesLog(), interval_s=10)
        recorder.start()
        try:
            with pytest.raises(RuntimeError):
                recorder.start()
        finally:
            recorder.stop()

    def test_stop_is_idempotent(self):
        recorder = TimeSeriesRecorder(TimeSeriesLog(), interval_s=10)
        recorder.start()
        recorder.stop()
        recorder.stop()

"""Cross-shard trace propagation: one query, one span tree, one trace id.

The contract under stress here (PR 9's tentpole): work fanned out to
pool threads — scatter-gather queries, sharded ingest, sharded
checkpoint — must join the *caller's* trace, not start trees of its
own.  Concretely:

* a profiled sharded query finishes exactly ONE root span
  (``query.scatter``) whose children are ``query.shard`` spans with
  shard attributes — never N orphan roots from the worker threads;
* the same trace id appears on the span tree, on every correlated log
  line, and on the slow-log entry (three surfaces, one id);
* per-shard buffer-pool page stats attribute to the query that touched
  them even with concurrent queries in flight.
"""

import threading

import pytest

from repro.obs import logging as obs_logging
from repro.obs import metrics, tracing
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import TraceContext, get_default_tracer
from repro.query import ShardedQueryEngine
from repro.storage import ShardedStore
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("year", FieldType.INT),
        Field("name", FieldType.STRING),
    ],
    primary_key="id",
)


def _corpus(n: int = 300) -> list[dict]:
    return [
        {"id": i, "year": 1900 + (i % 25), "name": f"n{i:04d}"} for i in range(n)
    ]


@pytest.fixture(autouse=True)
def clean_obs():
    metrics.reset()
    tracing.reset()
    obs_logging.reset()
    tracing.get_default_tracer().enable()
    yield
    tracing.reset()
    obs_logging.reset()


def _scatter_roots():
    """Finished roots named query.scatter, and everything else."""
    roots = tracing.finished_spans()
    scatter = [r for r in roots if r.name == "query.scatter"]
    other = [r for r in roots if r.name != "query.scatter"]
    return scatter, other


class TestScatterSpanTree:
    def test_one_root_with_shard_children(self):
        with ShardedStore(SCHEMA, shards=4) as store:
            store.put_many(_corpus())
            with ShardedQueryEngine(store) as engine:
                engine.execute("year >= 1910 ORDER BY year LIMIT 10")
        scatter, _ = _scatter_roots()
        assert len(scatter) == 1
        root = scatter[0]
        shard_children = [c for c in root.children if c.name == "query.shard"]
        assert len(shard_children) == 4
        assert sorted(c.attributes["shard"] for c in shard_children) == [0, 1, 2, 3]
        for child in shard_children:
            assert child.attributes["rows"] >= 0
            assert child.attributes["seconds"] >= 0.0

    def test_no_orphan_roots_from_worker_threads(self):
        with ShardedStore(SCHEMA, shards=4) as store:
            store.put_many(_corpus())
            with ShardedQueryEngine(store) as engine:
                for _ in range(5):
                    engine.execute("* ORDER BY year LIMIT 7")
        scatter, other = _scatter_roots()
        assert len(scatter) == 5
        # Worker spans must be children of their scatter, never roots.
        assert [r.name for r in other if r.name == "query.shard"] == []

    def test_trace_id_spans_logs_and_slow_log_agree(self):
        slow = SlowQueryLog(threshold_s=0.0)  # record everything
        with ShardedStore(SCHEMA, shards=3) as store:
            store.put_many(_corpus())
            with ShardedQueryEngine(store, slow_log=slow) as engine:
                engine.execute("year >= 1905 ORDER BY year LIMIT 5")
        (root,), _ = _scatter_roots()
        trace_id = root.attributes["trace_id"]
        assert trace_id
        # One slow-log entry for the whole fan-out, same trace id.
        entries = slow.entries()
        assert len(entries) == 1
        assert entries[0]["trace_id"] == trace_id
        # Every query.* log line of this execution carries the same id.
        query_events = [
            r for r in obs_logging.tail(100, event="query")
            if r.get("trace_id") is not None
        ]
        assert query_events
        assert {r["trace_id"] for r in query_events} == {trace_id}

    def test_profiled_scatter_reports_per_shard_rows_and_pages(self, tmp_path):
        with ShardedStore(
            SCHEMA, tmp_path / "paged", shards=3, data_format="paged"
        ) as store:
            store.put_many(_corpus())
            store.checkpoint()  # push records into pages files
        with ShardedStore(
            SCHEMA, tmp_path / "paged", shards=3, data_format="paged"
        ) as store:
            with ShardedQueryEngine(store) as engine:
                profile = engine.execute("* ORDER BY id", profile=True)
        assert profile.root.op == "scatter"
        shard_ops = [c for c in profile.root.children if c.op == "shard"]
        assert len(shard_ops) == 3
        assert sum(c.rows_returned for c in shard_ops) == 300
        # A full scan over a freshly opened paged store must touch the
        # pool: the per-query page accounting cannot be all zeros.
        assert profile.page_hits + profile.page_misses > 0
        rendered = profile.render()
        assert "pages:" in rendered and "shard 0" in rendered


class TestConcurrentQueries:
    def test_interleaved_queries_keep_trees_separate(self):
        """8 threads x 5 queries: every scatter keeps exactly its own
        shard children and its own trace id — no cross-talk through the
        shared worker pool."""
        with ShardedStore(SCHEMA, shards=4) as store:
            store.put_many(_corpus())
            with ShardedQueryEngine(store) as engine:
                errors: list[BaseException] = []

                def worker():
                    try:
                        for _ in range(5):
                            engine.execute("year >= 1908 ORDER BY year LIMIT 9")
                    except BaseException as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [threading.Thread(target=worker) for _ in range(8)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        assert errors == []
        scatter, other = _scatter_roots()
        # The tracer ring may retain fewer than 40 roots, but every
        # retained scatter must be complete and self-consistent.
        assert scatter
        assert [r.name for r in other if r.name == "query.shard"] == []
        trace_ids = set()
        for root in scatter:
            children = [c for c in root.children if c.name == "query.shard"]
            assert sorted(c.attributes["shard"] for c in children) == [0, 1, 2, 3]
            trace_ids.add(root.attributes["trace_id"])
        assert len(trace_ids) == len(scatter)  # distinct queries, distinct ids


class TestTraceContext:
    def test_capture_attach_adopts_parent_span(self):
        tracer = get_default_tracer()
        tracer.enable()
        with tracing.span("outer") as outer:
            ctx = TraceContext.capture()
            result = {}

            def worker():
                with ctx.attach():
                    with tracing.span("inner"):
                        result["parent"] = tracer.current_span()

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        roots = tracing.finished_spans()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert outer.children[0].name == "inner"

    def test_attach_is_noop_on_same_thread(self):
        tracer = get_default_tracer()
        tracer.enable()
        with tracing.span("solo"):
            ctx = TraceContext.capture()
            with ctx.attach():  # already current: must not re-push
                with tracing.span("child"):
                    pass
        (root,) = tracing.finished_spans()
        assert root.name == "solo"
        assert [c.name for c in root.children] == ["child"]

    def test_attach_restores_trace_id_on_worker(self):
        with obs_logging.trace() as trace_id:
            ctx = TraceContext.capture()
        seen = {}

        def worker():
            with ctx.attach():
                seen["id"] = obs_logging.current_trace_id()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["id"] == trace_id

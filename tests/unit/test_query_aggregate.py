"""Unit tests for GROUP BY aggregation and COUNT in the query engine."""

import pytest

from repro.errors import QueryPlanError, QuerySyntaxError
from repro.query.executor import QueryEngine
from repro.query.parser import parse_query
from repro.storage.store import IndexKind


@pytest.fixture()
def engine(memory_store):
    rows = [
        {"id": 1, "name": "smith", "year": 1980, "tags": ["coal"]},
        {"id": 2, "name": "jones", "year": 1980, "tags": ["coal", "tax"]},
        {"id": 3, "name": "smith", "year": 1985, "tags": []},
        {"id": 4, "name": "li", "year": 1990, "tags": ["coal"]},
    ]
    for row in rows:
        memory_store.insert(row)
    memory_store.create_index("year", IndexKind.BTREE)
    return QueryEngine(memory_store)


class TestParsing:
    def test_group_by_parsed(self):
        q = parse_query("* GROUP BY volume")
        assert q.group_by == "volume"

    def test_group_by_with_everything(self):
        q = parse_query("year >= 1980 GROUP BY name ORDER BY count DESC LIMIT 2")
        assert (q.group_by, q.order_by, q.descending, q.limit) == (
            "name", "count", True, 2,
        )

    def test_group_requires_by(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("* GROUP volume")

    def test_group_before_order_enforced(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("* ORDER BY year GROUP BY name")


class TestExecution:
    def test_counts_scalar_field(self, engine):
        rows = engine.execute("* GROUP BY name")
        assert rows == [
            {"name": "jones", "count": 1},
            {"name": "li", "count": 1},
            {"name": "smith", "count": 2},
        ]

    def test_counts_respect_filter(self, engine):
        rows = engine.execute("year >= 1985 GROUP BY name")
        assert rows == [{"name": "li", "count": 1}, {"name": "smith", "count": 1}]

    def test_list_field_counts_elements(self, engine):
        rows = engine.execute("* GROUP BY tags")
        assert rows == [{"tags": "coal", "count": 3}, {"tags": "tax", "count": 1}]

    def test_order_by_count(self, engine):
        rows = engine.execute("* GROUP BY tags ORDER BY count DESC")
        assert rows[0] == {"tags": "coal", "count": 3}

    def test_order_by_group_field(self, engine):
        rows = engine.execute("* GROUP BY year ORDER BY year DESC")
        assert [r["year"] for r in rows] == [1990, 1985, 1980]

    def test_limit_applies_after_grouping(self, engine):
        rows = engine.execute("* GROUP BY name ORDER BY count DESC LIMIT 1")
        assert rows == [{"name": "smith", "count": 2}]

    def test_group_by_unknown_field(self, engine):
        with pytest.raises(QueryPlanError):
            engine.execute("* GROUP BY bogus")

    def test_order_by_non_group_field_rejected(self, engine):
        with pytest.raises(QueryPlanError):
            engine.execute("* GROUP BY name ORDER BY year")

    def test_explain_shows_grouping(self, engine):
        assert "GROUP BY name (COUNT)" in engine.explain("* GROUP BY name")

    def test_uses_index_access_path(self, engine):
        plan = engine.explain("year >= 1985 GROUP BY name")
        assert plan.startswith("INDEX RANGE")


class TestCount:
    def test_count_all(self, engine):
        assert engine.count("*") == 4

    def test_count_filtered(self, engine):
        assert engine.count("year >= 1985") == 2

    def test_count_ignores_limit(self, engine):
        assert engine.count("* LIMIT 1") == 4

    def test_count_none_matching(self, engine):
        assert engine.count('name = "nobody"') == 0


class TestReferenceCorpus:
    def test_volume_histogram_matches_statistics(self, reference_records):
        from repro.core.builder import build_index
        from repro.corpus.wvlr import PUBLICATION_SCHEMA, populate_store
        from repro.storage.store import RecordStore

        store = RecordStore(PUBLICATION_SCHEMA)
        populate_store(store, reference_records)
        engine = QueryEngine(store)
        grouped = {
            r["volume"]: r["count"] for r in engine.execute("* GROUP BY volume")
        }
        # statistics() counts exploded per-author rows; GROUP BY volume on
        # records counts articles — compare against the record corpus.
        from collections import Counter

        expected = Counter(r.citation.volume for r in reference_records)
        assert grouped == dict(expected)

"""Prometheus exposition rendering, validated with a small format parser.

``parse_exposition`` is a strict-enough parser for the text exposition
format (0.0.4) that the integration telemetry-server test reuses to
assert ``/metrics`` output is well-formed — the acceptance criterion is
parser-based, not substring-based.
"""

import math
import re

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import (
    escape_label_value,
    prometheus_name,
    render_prometheus,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def parse_exposition(text: str):
    """Parse Prometheus text exposition; raises ValueError on malformed
    input.  Returns ``{metric_name: {"type": ..., "samples": [(name,
    labels, value), ...]}}``."""
    metrics: dict[str, dict] = {}
    current: str | None = None
    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: bad type {kind!r}")
            if name in metrics:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            metrics[name] = {"type": kind, "samples": []}
            current = name
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample_name = match.group("name")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for pair in re.split(r",(?=[a-zA-Z_])", match.group("labels")):
                label_match = _LABEL_RE.match(pair)
                if not label_match:
                    raise ValueError(f"line {lineno}: malformed label {pair!r}")
                labels[label_match.group("key")] = label_match.group("value")
        value = float(match.group("value"))
        if current is None or not (
            sample_name == current or sample_name.startswith(current + "_")
        ):
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} outside its TYPE block"
            )
        metrics[current]["samples"].append((sample_name, labels, value))
    return metrics


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestNameSanitization:
    def test_dots_become_underscores_with_namespace(self):
        assert (
            prometheus_name("storage.wal.fsync.count")
            == "repro_storage_wal_fsync_count"
        )

    def test_invalid_chars_replaced(self):
        assert prometheus_name("a-b c/d") == "repro_a_b_c_d"

    def test_no_namespace(self):
        assert prometheus_name("x.y", namespace="") == "x_y"

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestRendering:
    def test_counter_gets_total_suffix(self, registry):
        registry.counter("query.executions").inc(3)
        parsed = parse_exposition(render_prometheus(registry.snapshot()))
        metric = parsed["repro_query_executions_total"]
        assert metric["type"] == "counter"
        assert metric["samples"] == [("repro_query_executions_total", {}, 3.0)]

    def test_gauge_rendered_plain(self, registry):
        registry.gauge("store.records").set(271)
        parsed = parse_exposition(render_prometheus(registry.snapshot()))
        metric = parsed["repro_store_records"]
        assert metric["type"] == "gauge"
        assert metric["samples"][0][2] == 271.0

    def test_labeled_series_grouped_under_one_type_line(self, registry):
        registry.counter("plan.chosen", access="full-scan").inc()
        registry.counter("plan.chosen", access="index-range").inc(2)
        text = render_prometheus(registry.snapshot())
        assert text.count("# TYPE repro_plan_chosen_total counter") == 1
        parsed = parse_exposition(text)
        samples = parsed["repro_plan_chosen_total"]["samples"]
        assert sorted((s[1]["access"], s[2]) for s in samples) == [
            ("full-scan", 1.0),
            ("index-range", 2.0),
        ]

    def test_histogram_buckets_sum_count(self, registry):
        hist = registry.histogram("query.seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        parsed = parse_exposition(render_prometheus(registry.snapshot()))
        metric = parsed["repro_query_seconds"]
        assert metric["type"] == "histogram"
        by_name: dict[str, list] = {}
        for name, labels, value in metric["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        buckets = {
            labels["le"]: value
            for labels, value in by_name["repro_query_seconds_bucket"]
        }
        # Buckets are cumulative and end with +Inf == count.
        assert buckets["0.1"] == 1.0
        assert buckets["1.0"] == 2.0
        assert buckets["+Inf"] == 3.0
        assert by_name["repro_query_seconds_count"][0][1] == 3.0
        assert math.isclose(by_name["repro_query_seconds_sum"][0][1], 5.55)

    def test_label_values_escaped(self, registry):
        registry.counter("odd.labels", detail='say "hi"\\now').inc()
        text = render_prometheus(registry.snapshot())
        parsed = parse_exposition(text)
        ((_, labels, _),) = parsed["repro_odd_labels_total"]["samples"]
        assert labels["detail"] == 'say \\"hi\\"\\\\now'

    def test_empty_snapshot_renders_empty(self, registry):
        assert render_prometheus(registry.snapshot()) == ""

    def test_output_is_deterministic(self, registry):
        registry.counter("b.second").inc()
        registry.counter("a.first").inc()
        registry.gauge("z.gauge").set(1)
        snap = registry.snapshot()
        assert render_prometheus(snap) == render_prometheus(snap)
        # Names sorted within each section.
        text = render_prometheus(snap)
        assert text.index("repro_a_first_total") < text.index("repro_b_second_total")

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("not a metric line\n")
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x bogus-kind\n")

"""Unit tests for repro.export (BibTeX and CSV interchange)."""

import pytest

from repro.core.entry import PublicationRecord
from repro.errors import ParseError
from repro.export.bibtex import format_bibtex, parse_bibtex, record_to_bibtex
from repro.export.csvio import dumps_csv, read_csv, write_csv


class TestBibtexWrite:
    def test_entry_shape(self, sample_records):
        out = record_to_bibtex(sample_records[0], journal="W. Va. L. Rev.")
        assert out.startswith("@article{fox1967v69p293,")
        assert "title   = {Habeas Corpus in West Virginia}" in out
        assert "year    = {1967}" in out

    def test_student_note_field(self, sample_records):
        out = record_to_bibtex(sample_records[0])
        assert "note    = {student work}" in out

    def test_multiple_authors_joined_with_and(self, sample_records):
        out = record_to_bibtex(sample_records[1])
        assert "Galloway, L. Thomas and McAteer, J. Davitt and Webb, Richard L." in out

    def test_format_many(self, sample_records):
        out = format_bibtex(sample_records)
        assert out.count("@article{") == len(sample_records)


class TestBibtexRoundTrip:
    def test_roundtrip_preserves_content(self, sample_records):
        parsed = parse_bibtex(format_bibtex(sample_records))
        assert len(parsed) == len(sample_records)
        for original, back in zip(sample_records, parsed):
            assert back.title == original.title
            assert back.citation == original.citation
            assert back.is_student_work == original.is_student_work
            assert [a.identity_key() for a in back.authors] == [
                a.identity_key() for a in original.authors
            ]

    def test_reference_corpus_roundtrip(self, reference_records):
        parsed = parse_bibtex(format_bibtex(reference_records))
        assert len(parsed) == len(reference_records)
        assert [r.citation for r in parsed] == [r.citation for r in reference_records]


class TestBibtexParse:
    def test_quoted_values(self):
        text = '@article{k, author = "Olson, Dale P.", title = "Thin Copyrights", ' \
               'volume = "95", pages = "147", year = "1992"}'
        [record] = parse_bibtex(text)
        assert record.title == "Thin Copyrights"

    def test_bare_numeric_values(self):
        text = "@article{k, author = {A, B.}, title = {T}, volume = 95, pages = 147, year = 1992}"
        [record] = parse_bibtex(text)
        assert record.citation.volume == 95

    def test_direct_form_authors(self):
        text = "@article{k, author = {Dale Olson and Jane Moran}, title = {T}, " \
               "volume = {95}, pages = {1}, year = {1992}}"
        [record] = parse_bibtex(text)
        assert [a.surname for a in record.authors] == ["Olson", "Moran"]

    def test_nested_braces_in_title(self):
        text = "@article{k, author = {A, B.}, title = {The {UCC} Revisited}, " \
               "volume = {95}, pages = {1}, year = {1992}}"
        [record] = parse_bibtex(text)
        assert "{UCC}" in record.title

    def test_non_article_entries_skipped(self):
        text = "@book{k, title = {Ignored}}\n" \
               "@article{j, author = {A, B.}, title = {Kept}, volume = {1}, pages = {1}, year = {1990}}"
        records = parse_bibtex(text)
        assert [r.title for r in records] == ["Kept"]

    def test_page_ranges_take_first(self):
        text = "@article{k, author = {A, B.}, title = {T}, volume = {95}, " \
               "pages = {147--210}, year = {1992}}"
        [record] = parse_bibtex(text)
        assert record.citation.page == 147

    def test_missing_required_field_raises(self):
        with pytest.raises(ParseError):
            parse_bibtex("@article{k, title = {T}, volume = {1}, pages = {1}, year = {1990}}")

    def test_unbalanced_braces_raise(self):
        with pytest.raises(ParseError):
            parse_bibtex("@article{k, author = {A, B.")

    def test_record_ids_sequential(self):
        text = "\n".join(
            f"@article{{k{i}, author = {{A, B.}}, title = {{T{i}}}, "
            f"volume = {{1}}, pages = {{{i+1}}}, year = {{1990}}}}"
            for i in range(3)
        )
        records = parse_bibtex(text, first_record_id=10)
        assert [r.record_id for r in records] == [10, 11, 12]


class TestCsv:
    def test_roundtrip_string(self, sample_records):
        import io

        back = read_csv(io.StringIO(dumps_csv(sample_records)))
        assert len(back) == len(sample_records)
        for original, parsed in zip(sample_records, back):
            assert parsed.record_id == original.record_id
            assert parsed.title == original.title
            assert parsed.citation == original.citation
            assert parsed.is_student_work == original.is_student_work

    def test_roundtrip_file(self, sample_records, tmp_path):
        path = tmp_path / "corpus.csv"
        assert write_csv(sample_records, path) == len(sample_records)
        assert len(read_csv(path)) == len(sample_records)

    def test_titles_with_commas_and_quotes(self, tmp_path):
        record = PublicationRecord.create(
            1, 'Bankruptcy, "Takes", and Property', ["A, B."], "84:687 (1982)"
        )
        path = tmp_path / "c.csv"
        write_csv([record], path)
        [back] = read_csv(path)
        assert back.title == 'Bankruptcy, "Takes", and Property'

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,title\n1,x\n")
        with pytest.raises(ParseError):
            read_csv(path)

    def test_bad_row_raises_with_row_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "id,title,authors,volume,page,year,student\n"
            "1,T,\"A, B.\",95,1,1992,true\n"
            "oops,T,\"A, B.\",95,1,1992,true\n"
        )
        with pytest.raises(ParseError) as excinfo:
            read_csv(path)
        assert "row 3" in str(excinfo.value)

    def test_reference_corpus_roundtrip(self, reference_records, tmp_path):
        path = tmp_path / "ref.csv"
        write_csv(reference_records, path)
        back = read_csv(path)
        assert [r.citation for r in back] == [r.citation for r in reference_records]
        assert sum(r.is_student_work for r in back) == sum(
            r.is_student_work for r in reference_records
        )

"""Unit tests for repro.corpus.merge."""

import pytest

from repro.core.entry import PublicationRecord
from repro.corpus.merge import (
    ConflictPolicy,
    merge_corpora,
    renumber,
)
from repro.errors import ValidationError


def rec(i, title="T", citation="69:1 (1966)"):
    return PublicationRecord.create(i, title, ["A, B."], citation)


class TestMerge:
    def test_disjoint_ids_append(self):
        result = merge_corpora([rec(1)], [rec(2, "U"), rec(3, "V")])
        assert [r.record_id for r in result.records] == [1, 2, 3]
        assert result.added == 2
        assert result.conflict_count == 0

    def test_identical_reimport_is_noop(self):
        result = merge_corpora([rec(1)], [rec(1)])
        assert len(result.records) == 1
        assert result.unchanged == 1
        assert result.added == 0

    def test_conflict_error_policy(self):
        with pytest.raises(ValidationError):
            merge_corpora([rec(1, "Old")], [rec(1, "New")])

    def test_conflict_keep_existing(self):
        result = merge_corpora(
            [rec(1, "Old")], [rec(1, "New")],
            on_conflict=ConflictPolicy.KEEP_EXISTING,
        )
        assert result.records[0].title == "Old"
        assert result.conflicts[0].resolution == "kept-existing"

    def test_conflict_replace(self):
        result = merge_corpora(
            [rec(1, "Old")], [rec(1, "New")],
            on_conflict=ConflictPolicy.REPLACE,
        )
        assert result.records[0].title == "New"
        assert result.conflicts[0].resolution == "replaced"

    def test_order_preserved_on_replace(self):
        result = merge_corpora(
            [rec(1, "Old"), rec(2, "Keep")],
            [rec(1, "New")],
            on_conflict=ConflictPolicy.REPLACE,
        )
        assert [r.record_id for r in result.records] == [1, 2]

    def test_base_not_mutated(self):
        base = [rec(1)]
        merge_corpora(base, [rec(2)])
        assert len(base) == 1

    def test_summary(self):
        result = merge_corpora([rec(1)], [rec(2)])
        assert "1 added" in result.summary()

    def test_volume_addition_scenario(self, reference_records):
        """The real workflow: add a synthetic 'volume 96' to the corpus."""
        new_volume = [
            PublicationRecord.create(
                1000 + i, f"New Piece {i}", ["Author, New Q."], f"96:{i * 40 + 1} (1993)"
            )
            for i in range(10)
        ]
        result = merge_corpora(reference_records, new_volume)
        assert result.added == 10
        from repro.core import build_index, build_toc

        toc = build_toc(result.records)
        assert toc.volume(96).article_count == 10
        index = build_index(result.records)
        assert len(index) == 343 + 10


class TestRenumber:
    def test_sequential_ids(self):
        records = renumber([rec(99), rec(42)], start=5)
        assert [r.record_id for r in records] == [5, 6]

    def test_content_preserved(self):
        [renumbered] = renumber([rec(99, "Kept Title")])
        assert renumbered.title == "Kept Title"
        assert renumbered.record_id == 1

    def test_enables_conflict_free_merge(self):
        a = [rec(1, "From A")]
        b = [rec(1, "From B")]
        b2 = renumber(b, start=2)
        result = merge_corpora(a, b2)
        assert result.added == 1
        assert result.conflict_count == 0

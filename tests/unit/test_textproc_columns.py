"""Unit tests for repro.textproc.columns."""

import pytest

from repro.textproc.columns import detect_gutter, split_columns

TWO_COLUMN = (
    "Abdalla, Tarek F.*        Lorensen, Willard D.\n"
    "Abramovsky, Deborah       Lynd, Alice\n"
    "Adler, Mortimer J.        Lynd, Staughton\n"
    "Areen, Judith             MacLeod, John A.\n"
)

ONE_COLUMN = (
    "Abdalla, Tarek F.* Allegheny-Pittsburgh Coal Co. 91:973 (1989)\n"
    "Abramovsky, Deborah Confidentiality Dilemmas 85:929 (1983)\n"
    "Adler, Mortimer J. Ideas of Relevance to Law 84:1 (1981)\n"
)


class TestDetectGutter:
    def test_detects_two_columns(self):
        gutter = detect_gutter(TWO_COLUMN)
        assert gutter is not None
        assert 18 <= gutter <= 26

    def test_single_column_none(self):
        assert detect_gutter(ONE_COLUMN) is None

    def test_too_few_lines_none(self):
        assert detect_gutter("ab    cd\nxy    zw\n") is None

    def test_right_margin_is_not_gutter(self):
        text = "short line      \nanother one     \na third line    \n"
        assert detect_gutter(text) is None

    def test_one_long_line_blocks_gutter(self):
        # A single line crossing the would-be gutter must veto the split
        # (strict occupancy) so no characters are ever chopped.
        text = TWO_COLUMN + "An Extremely Long Left Entry Crossing Everything Here Fully\n"
        assert detect_gutter(text) is None

    def test_narrow_gap_not_gutter(self):
        text = "ab cd\nxy zw\npq rs\n"
        assert detect_gutter(text) is None


class TestSplitColumns:
    def test_two_column_split(self):
        split = split_columns(TWO_COLUMN)
        assert split.is_two_column
        assert split.left == [
            "Abdalla, Tarek F.*",
            "Abramovsky, Deborah",
            "Adler, Mortimer J.",
            "Areen, Judith",
        ]
        assert split.right == [
            "Lorensen, Willard D.",
            "Lynd, Alice",
            "Lynd, Staughton",
            "MacLeod, John A.",
        ]

    def test_single_column_untouched(self):
        split = split_columns(ONE_COLUMN)
        assert not split.is_two_column
        assert split.right == []
        assert len(split.left) == 3

    def test_merged_preserves_reading_order(self):
        split = split_columns(TWO_COLUMN)
        merged = split.merged().splitlines()
        assert merged[0].startswith("Abdalla")
        assert merged[4].startswith("Lorensen")

    def test_blank_lines_survive(self):
        text = TWO_COLUMN.replace(
            "Adler, Mortimer J.        Lynd, Staughton\n",
            "\nAdler, Mortimer J.        Lynd, Staughton\n",
        )
        split = split_columns(text)
        assert split.is_two_column
        assert "" in split.left

    def test_empty_input(self):
        split = split_columns("")
        assert not split.is_two_column
        assert split.left == []


class TestEndToEndWithIngest:
    def test_split_then_ingest(self):
        two_col = (
            "Areen, Judith Gene Therapy 88:153 (1985)      Olson, Dale P. Thin Copyrights 95:147 (1992)\n"
            "Farmer, Guy NLRB Overview 88:1 (1985)         Tushnet, Mark The State 86:1077 (1984)\n"
            "Gelb, Harvey Rule 10b-5 Facts 87:189 (1984)   Wald, Hon. Patricia M. Thoughts 87:1 (1984)\n"
        )
        from repro.corpus.ingest import parse_index_text
        from repro.textproc.columns import split_columns

        split = split_columns(two_col)
        assert split.is_two_column
        report = parse_index_text(split.merged())
        assert report.record_count == 6
        surnames = [r.authors[0].surname for r in report.records]
        assert surnames == ["Areen", "Farmer", "Gelb", "Olson", "Tushnet", "Wald"]

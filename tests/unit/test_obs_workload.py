"""WorkloadTable / KeyUsageTable aggregation, eviction, and exposition."""

import threading

import pytest

from repro.obs import metrics
from repro.obs.workload import (
    DEFAULT_EXPOSITION_LIMIT,
    KeyUsageTable,
    WorkloadTable,
    render_prometheus_workload,
)
from tests.unit.test_obs_promexport import parse_exposition


@pytest.fixture(autouse=True)
def clean_metrics():
    metrics.reset()
    yield
    metrics.reset()


class TestWorkloadTable:
    def test_record_aggregates_per_fingerprint(self):
        table = WorkloadTable()
        table.record("aa", "year >= ?", rows_returned=10, cpu_ns=100, wall_ns=200)
        table.record("aa", "year >= ?", rows_returned=5, cpu_ns=50, wall_ns=70,
                     plan_cached=True)
        table.record("bb", "volume = ?", rows_returned=1)
        (top,) = table.top(1)
        assert top["fingerprint"] == "aa"
        assert top["calls"] == 2
        assert top["rows_returned"] == 15
        assert top["cpu_ns"] == 150
        assert top["wall_ns"] == 270
        assert top["plan_cache_hits"] == 1
        assert len(table) == 2

    def test_interruption_kinds_count_separately(self):
        table = WorkloadTable()
        for kind in ("timeout", "timeout", "cancelled", "budget"):
            table.record("aa", "t", interrupted=kind)
        table.record("aa", "t", shed=True)
        (row,) = table.top(1)
        assert row["deadline_exceeded"] == 2
        assert row["cancelled"] == 1
        assert row["budget_exceeded"] == 1
        assert row["shed"] == 1

    def test_operator_breakdown_rolls_up(self):
        table = WorkloadTable()
        nodes = [
            {"op": "filter", "rows_in": 10, "rows_out": 4, "cpu_ns": 5,
             "wall_ns": 9, "bytes": 100},
            {"op": "seq-scan", "rows_in": 10, "rows_out": 10, "cpu_ns": 7,
             "wall_ns": 11, "bytes": 100},
        ]
        table.record("aa", "t", operators=nodes)
        table.record("aa", "t", operators=nodes[:1])
        (row,) = table.top(1)
        assert row["operators"]["filter"] == {
            "calls": 2, "rows_in": 20, "rows_out": 8, "cpu_ns": 10,
            "wall_ns": 18, "bytes": 200,
        }
        assert row["operators"]["seq-scan"]["calls"] == 1

    def test_topk_evicts_coldest_and_counts_it(self):
        table = WorkloadTable(maxsize=2)
        table.record("hot", "h")
        table.record("hot", "h")
        table.record("warm", "w")
        table.record("cold", "c")  # evicts warm (fewest calls, not cold itself)
        fingerprints = {row["fingerprint"] for row in table.top(10)}
        assert fingerprints == {"hot", "cold"}
        assert table.evicted_fingerprints == 1
        assert table.evicted_calls == 1
        snap = table.snapshot()
        assert snap["evicted_fingerprints"] == 1
        assert snap["tracked"] == 2

    def test_top_sort_keys_validated(self):
        table = WorkloadTable()
        with pytest.raises(ValueError, match="sort_by"):
            table.top(5, sort_by="nope")

    def test_disabled_table_records_nothing(self):
        table = WorkloadTable()
        table.enabled = False
        table.record("aa", "t")
        assert len(table) == 0

    def test_concurrent_records_lose_nothing(self):
        table = WorkloadTable()
        n, threads = 500, 8

        def hammer(fingerprint: str) -> None:
            for _ in range(n):
                table.record(fingerprint, "t", rows_returned=1, cpu_ns=2)

        workers = [
            threading.Thread(target=hammer, args=(f"fp{i % 2}",))
            for i in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        rows = {r["fingerprint"]: r for r in table.top(4)}
        assert rows["fp0"]["calls"] == n * threads // 2
        assert rows["fp1"]["calls"] == n * threads // 2
        assert rows["fp0"]["cpu_ns"] == n * threads  # 2 ns × calls


class TestKeyUsageTable:
    def test_probe_counts_and_histogram(self):
        table = KeyUsageTable()
        table.record("year", 1978, rows=3)
        table.record("year", 1978, rows=2)
        table.record("year", 1990, rows=1)
        hist = table.histogram("year")
        assert hist["probes"] == 3
        assert hist["rows"] == 6
        assert hist["tracked_keys"] == 2
        assert hist["top_keys"][0] == {"key": "1978", "probes": 2, "rows": 5}
        assert hist["top_key_row_share"] == round(5 / 6, 4)

    def test_unseen_field_is_none(self):
        assert KeyUsageTable().histogram("nope") is None

    def test_bounded_keys_evict_least_probed(self):
        table = KeyUsageTable(keys_per_field=2)
        table.record("f", "a")
        table.record("f", "a")
        table.record("f", "b")
        table.record("f", "c")  # evicts b
        labels = {k["key"] for k in table.histogram("f")["top_keys"]}
        assert labels == {"a", "c"}
        # Totals keep counting what the bounded key map forgot.
        assert table.histogram("f")["probes"] == 4

    def test_long_keys_are_truncated(self):
        table = KeyUsageTable()
        table.record("f", "x" * 200)
        (key,) = table.histogram("f")["top_keys"]
        assert len(key["key"]) == 64
        assert key["key"].endswith("...")


class TestPrometheusExposition:
    def test_empty_table_renders_empty(self):
        assert render_prometheus_workload(WorkloadTable()) == ""

    def test_exposition_parses_and_is_bounded(self):
        table = WorkloadTable()
        for i in range(DEFAULT_EXPOSITION_LIMIT + 5):
            for _ in range(i + 1):  # distinct call counts: stable top-K
                table.record(f"fp{i:02}", "t", cpu_ns=1_000_000, rows_returned=2)
        text = render_prometheus_workload(table)
        families = parse_exposition(text)
        calls = families["repro_workload_calls_total"]
        assert calls["type"] == "counter"
        assert len(calls["samples"]) == DEFAULT_EXPOSITION_LIMIT
        labels = {s[1]["fingerprint"] for s in calls["samples"]}
        assert "fp00" not in labels  # coldest fell outside the cap
        seconds = families["repro_workload_cpu_seconds_total"]
        assert all(value > 0 for _, _, value in seconds["samples"])

"""Unit tests for the LIKE operator."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.ast_nodes import Like
from repro.query.executor import QueryEngine
from repro.query.parser import parse_query
from repro.query.planner import FullScan, IndexRange, plan_query
from repro.storage.store import IndexKind


@pytest.fixture()
def engine(memory_store):
    rows = [
        {"id": 1, "name": "McAteer", "year": 1978, "tags": ["coal mining"]},
        {"id": 2, "name": "McBride", "year": 1988, "tags": []},
        {"id": 3, "name": "Maxwell", "year": 1968, "tags": ["mining"]},
        {"id": 4, "name": "Meadows", "year": 1983, "tags": []},
        {"id": 5, "name": "macleod", "year": 1986, "tags": []},
    ]
    for row in rows:
        memory_store.insert(row)
    memory_store.create_index("name", IndexKind.BTREE)
    return QueryEngine(memory_store)


def ids(rows):
    return sorted(r["id"] for r in rows)


class TestParsing:
    def test_like_parsed(self):
        q = parse_query('name LIKE "Mc%"')
        assert q.where == Like("name", "Mc%")

    def test_like_requires_string(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("name LIKE 42")

    def test_like_composes(self):
        q = parse_query('name LIKE "Mc%" AND year >= 1980')
        assert "LIKE" in str(q.where)


class TestEvaluation:
    @pytest.mark.parametrize("pattern,value,matches", [
        ("Mc%", "McAteer", True),
        ("Mc%", "Maxwell", False),
        ("%ing", "coal mining", True),
        ("%ing", "mine", False),
        ("%oa%", "coal", True),
        ("McAteer", "McAteer", True),     # no wildcard = exact
        ("McAteer", "McAteers", False),
        ("%", "anything", True),
        ("mc%", "McAteer", False),         # case-sensitive
    ])
    def test_patterns(self, pattern, value, matches):
        assert Like("f", pattern).evaluate({"f": value}) is matches

    def test_missing_field_false(self):
        assert not Like("f", "%").evaluate({})

    def test_non_string_false(self):
        assert not Like("f", "%").evaluate({"f": 42})

    def test_list_field_any_element(self):
        assert Like("f", "coal%").evaluate({"f": ["tax", "coal mining"]})

    def test_regex_specials_are_literal(self):
        assert Like("f", "a.c%").evaluate({"f": "a.cd"})
        assert not Like("f", "a.c%").evaluate({"f": "abcd"})

    def test_prefix_property(self):
        assert Like("f", "Mc%").prefix == "Mc"
        assert Like("f", "%Mc").prefix is None
        assert Like("f", "M%c%").prefix is None
        assert Like("f", "exact").prefix is None


class TestPlanning:
    def test_prefix_like_becomes_range(self, engine):
        plan = plan_query(parse_query('name LIKE "Mc%"'), engine.store)
        assert isinstance(plan.access, IndexRange)
        assert plan.access.low == "Mc"
        assert plan.residual is not None  # pattern re-checked exactly

    def test_non_prefix_like_scans(self, engine):
        plan = plan_query(parse_query('name LIKE "%teer"'), engine.store)
        assert isinstance(plan.access, FullScan)

    def test_unindexed_field_scans(self, engine):
        plan = plan_query(parse_query('tags LIKE "coal%"'), engine.store)
        assert isinstance(plan.access, FullScan)

    def test_bare_percent_scans(self, engine):
        plan = plan_query(parse_query('name LIKE "%"'), engine.store)
        assert isinstance(plan.access, FullScan)


class TestExecution:
    def test_prefix_results(self, engine):
        assert ids(engine.execute('name LIKE "Mc%"')) == [1, 2]

    def test_case_sensitivity_respected_via_range(self, engine):
        # "macleod" must not surface from the Mc range.
        rows = engine.execute('name LIKE "Mc%"')
        assert all(r["name"].startswith("Mc") for r in rows)

    def test_equivalence_with_scan(self, engine):
        for query in ('name LIKE "Mc%"', 'name LIKE "%e%"', 'name LIKE "M%l"'):
            assert ids(engine.execute(query)) == ids(
                engine.execute_without_indexes(query)
            )

    def test_combined_with_range(self, engine):
        rows = engine.execute('name LIKE "M%" AND year >= 1980')
        assert ids(rows) == [2, 4]

"""CLI surface of the resilience layer: ``--timeout-ms`` / ``--max-rows``.

A violated bound exits with a *distinct* nonzero code (3 for
interrupted, 4 for budget) and prints exactly one structured JSON line
on stderr, so scripts can branch on the failure class without parsing
prose.
"""

import json

from repro.cli import EXIT_BUDGET_EXCEEDED, EXIT_QUERY_INTERRUPTED, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestQueryBounds:
    def test_generous_bounds_change_nothing(self, capsys):
        code, out, _ = run(capsys, "query", "year >= 1985 LIMIT 3")
        code2, out2, _ = run(
            capsys, "query", "year >= 1985 LIMIT 3",
            "--timeout-ms", "60000", "--max-rows", "1000000",
        )
        assert code == code2 == 0
        assert out == out2

    def test_timeout_exits_3_with_one_json_line(self, capsys):
        code, out, err = run(
            capsys, "query", "year >= 1900", "--timeout-ms", "0.000001"
        )
        assert code == EXIT_QUERY_INTERRUPTED == 3
        assert out == ""
        lines = err.strip().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["error"] == "QueryTimeout"
        assert "rows_examined" in payload
        assert "elapsed_s" in payload

    def test_budget_exits_4_with_one_json_line(self, capsys):
        code, out, err = run(
            capsys, "query", "year >= 1900", "--max-rows", "1"
        )
        assert code == EXIT_BUDGET_EXCEEDED == 4
        assert out == ""
        lines = err.strip().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["error"] == "budget-exceeded"
        assert payload["budget"] == "rows"
        assert payload["limit"] == 1
        assert payload["used"] == 2

    def test_exit_codes_are_distinct_from_generic_errors(self, capsys):
        # A plain bad query stays on the generic error path (exit 1).
        code, _, err = run(capsys, "query", "year >>>> nonsense")
        assert code == 1
        assert code not in (EXIT_QUERY_INTERRUPTED, EXIT_BUDGET_EXCEEDED)
        assert err.startswith("error:")

    def test_profiled_query_honors_bounds_too(self, capsys):
        code, _, err = run(
            capsys, "query", "year >= 1900", "--profile", "--max-rows", "1"
        )
        assert code == EXIT_BUDGET_EXCEEDED
        assert json.loads(err.strip())["error"] == "budget-exceeded"

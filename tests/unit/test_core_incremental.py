"""Unit tests for repro.core.incremental."""

import pytest

from repro.core.builder import build_index
from repro.core.collation import CollationOptions
from repro.core.entry import PublicationRecord
from repro.core.incremental import IncrementalIndexer
from repro.errors import RecordNotFoundError, ValidationError


def rec(i, title="T", author="Zed, A.", citation="90:1 (1987)"):
    return PublicationRecord.create(i, title, [author], citation)


def rows(index):
    return [e.row_key() for e in index]


class TestAdd:
    def test_insert_keeps_order(self, sample_records):
        indexer = IncrementalIndexer()
        for record in sample_records:
            indexer.add(record)
        assert rows(indexer.snapshot()) == rows(build_index(sample_records))

    def test_equivalent_regardless_of_insertion_order(self, sample_records):
        forward = IncrementalIndexer()
        forward.add_all(sample_records)
        backward = IncrementalIndexer()
        backward.add_all(reversed(sample_records))
        assert rows(forward.snapshot()) == rows(backward.snapshot())

    def test_duplicate_record_id_rejected(self):
        indexer = IncrementalIndexer()
        indexer.add(rec(1))
        with pytest.raises(ValidationError):
            indexer.add(rec(1, title="Other"))

    def test_duplicate_rows_shown_once(self):
        indexer = IncrementalIndexer()
        indexer.add(rec(1, title="Same"))
        indexer.add(rec(2, title="Same"))
        assert len(indexer) == 1
        assert indexer.record_count == 2

    def test_coauthors_exploded(self):
        indexer = IncrementalIndexer()
        indexer.add(
            PublicationRecord.create(1, "T", ["A, X.", "B, Y."], "90:1 (1987)")
        )
        assert len(indexer) == 2


class TestRemove:
    def test_remove_restores_previous_state(self, sample_records):
        indexer = IncrementalIndexer()
        indexer.add_all(sample_records[:3])
        before = rows(indexer.snapshot())
        indexer.add(sample_records[3])
        indexer.remove(sample_records[3].record_id)
        assert rows(indexer.snapshot()) == before

    def test_remove_missing_raises(self):
        with pytest.raises(RecordNotFoundError):
            IncrementalIndexer().remove(42)

    def test_remove_keeps_shared_duplicate_row(self):
        indexer = IncrementalIndexer()
        indexer.add(rec(1, title="Same"))
        indexer.add(rec(2, title="Same"))
        indexer.remove(1)
        assert len(indexer) == 1  # record 2 still contributes the row
        indexer.remove(2)
        assert len(indexer) == 0

    def test_contains(self):
        indexer = IncrementalIndexer()
        indexer.add(rec(1))
        assert 1 in indexer
        indexer.remove(1)
        assert 1 not in indexer


class TestReplace:
    def test_replace_swaps_content(self):
        indexer = IncrementalIndexer()
        indexer.add(rec(1, author="Zed, A."))
        indexer.replace(rec(1, author="Abel, B."))
        assert [e.author.surname for e in indexer.snapshot()] == ["Abel"]

    def test_replace_absent_acts_as_add(self):
        indexer = IncrementalIndexer()
        indexer.replace(rec(1))
        assert len(indexer) == 1


class TestEquivalenceUnderChurn:
    def test_random_churn_matches_rebuild(self, synthetic_records):
        import random

        rng = random.Random(99)
        pool = list(synthetic_records[:150])
        indexer = IncrementalIndexer()
        live: dict[int, PublicationRecord] = {}
        for step in range(300):
            if live and rng.random() < 0.35:
                victim = rng.choice(list(live))
                indexer.remove(victim)
                del live[victim]
            else:
                candidates = [r for r in pool if r.record_id not in live]
                if not candidates:
                    continue
                record = rng.choice(candidates)
                indexer.add(record)
                live[record.record_id] = record
            if step % 60 == 0:
                assert rows(indexer.snapshot()) == rows(build_index(live.values()))
        assert rows(indexer.snapshot()) == rows(build_index(live.values()))

    def test_custom_options(self, sample_records):
        options = CollationOptions(mc_as_mac=True)
        indexer = IncrementalIndexer(options=options)
        indexer.add_all(sample_records)
        assert rows(indexer.snapshot()) == rows(
            build_index(sample_records, options=options)
        )


class TestBatchedAddAll:
    def test_add_all_equals_repeated_add(self, synthetic_records):
        pool = synthetic_records[:150]
        batched = IncrementalIndexer()
        batched.add_all(pool)
        serial = IncrementalIndexer()
        for record in pool:
            serial.add(record)
        assert rows(batched.snapshot()) == rows(serial.snapshot())
        assert len(batched) == len(serial)
        assert batched.record_count == serial.record_count

    def test_add_all_accepts_any_iterable(self, sample_records):
        indexer = IncrementalIndexer()
        indexer.add_all(reversed(sample_records))
        assert rows(indexer.snapshot()) == rows(build_index(sample_records))

    def test_duplicate_in_batch_aborts_cleanly(self, sample_records):
        indexer = IncrementalIndexer()
        with pytest.raises(ValidationError):
            indexer.add_all(list(sample_records) + [sample_records[0]])
        assert len(indexer) == 0
        assert indexer.record_count == 0
        # a clean retry still works
        indexer.add_all(sample_records)
        assert rows(indexer.snapshot()) == rows(build_index(sample_records))

    def test_already_indexed_aborts_cleanly(self, sample_records):
        indexer = IncrementalIndexer()
        indexer.add(sample_records[0])
        before = rows(indexer.snapshot())
        with pytest.raises(ValidationError):
            indexer.add_all(sample_records)
        assert rows(indexer.snapshot()) == before

    def test_batched_then_incremental_mutation(self, synthetic_records):
        pool = synthetic_records[:80]
        indexer = IncrementalIndexer()
        indexer.add_all(pool[:60])
        for record in pool[60:]:
            indexer.add(record)
        indexer.remove(pool[10].record_id)
        live = [r for r in pool if r.record_id != pool[10].record_id]
        assert rows(indexer.snapshot()) == rows(build_index(live))

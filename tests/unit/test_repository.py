"""Unit tests for the PublicationRepository facade."""

import pytest

from repro.core.entry import PublicationRecord
from repro.errors import DuplicateKeyError, RecordNotFoundError
from repro.repository import PublicationRepository


@pytest.fixture()
def repo(sample_records):
    repository = PublicationRepository()
    repository.add_all(sample_records)
    return repository


class TestCrud:
    def test_add_get_roundtrip(self, repo, sample_records):
        record = repo.get(1)
        assert isinstance(record, PublicationRecord)
        assert record.title == sample_records[0].title

    def test_len_and_contains(self, repo, sample_records):
        assert len(repo) == len(sample_records)
        assert 1 in repo
        assert 999 not in repo

    def test_add_duplicate_rejected(self, repo, sample_records):
        with pytest.raises(DuplicateKeyError):
            repo.add(sample_records[0])

    def test_remove(self, repo):
        repo.remove(1)
        assert 1 not in repo
        with pytest.raises(RecordNotFoundError):
            repo.get(1)

    def test_replace(self, repo):
        updated = PublicationRecord.create(
            1, "Replaced Title", ["Fox, Fred L., II*"], "69:293 (1967)"
        )
        repo.replace(updated)
        assert repo.get(1).title == "Replaced Title"

    def test_all_yields_records(self, repo, sample_records):
        assert sum(1 for _ in repo.all()) == len(sample_records)

    def test_add_all_atomic(self, sample_records):
        repo = PublicationRepository()
        repo.add(sample_records[0])
        with pytest.raises(DuplicateKeyError):
            repo.add_all(sample_records)  # record 1 collides mid-batch
        assert len(repo) == 1  # nothing from the failed batch landed


class TestTypedLookups:
    def test_by_surname(self, repo):
        records = repo.by_surname("McAteer")
        assert len(records) == 1
        assert records[0].title == "A Miner's Bill of Rights"

    def test_by_volume_in_page_order(self, repo):
        records = repo.by_volume(69)
        assert [r.citation.page for r in records] == [293]

    def test_between_years(self, repo):
        records = repo.between_years(1978, 1983)
        assert {r.citation.year for r in records} <= set(range(1978, 1984))
        assert len(records) == 3

    def test_search_language(self, repo):
        records = repo.search('student = true ORDER BY year')
        assert all(r.is_student_work for r in records)

    def test_count(self, repo, sample_records):
        assert repo.count() == len(sample_records)
        assert repo.count("volume = 69") == 1

    def test_lookups_use_indexes(self, repo):
        assert repo.engine.explain('surnames:"McAteer"').startswith("INDEX LOOKUP")
        assert repo.engine.explain("volume = 80 AND page = 397").startswith(
            "COMPOSITE LOOKUP"
        )


class TestIndexProducts:
    def test_author_index(self, repo, sample_records):
        index = repo.author_index()
        assert len(index) == 8  # 6 records, one with 3 authors
        assert index.groups()[0].heading == "Brotherton, Hon. W.T., Jr."

    def test_title_index(self, repo, sample_records):
        title_index = repo.title_index()
        assert len(title_index) == len(sample_records)

    def test_subject_index(self, repo):
        kwic = repo.subject_index(min_group_size=1)
        assert kwic.group("habeas") is not None

    def test_table_of_contents(self, repo):
        toc = repo.table_of_contents()
        assert toc.volume(80).article_count == 1

    def test_resolution_option(self):
        repo = PublicationRepository()
        repo.add_all([
            PublicationRecord.create(1, "A", ["Herdon, Judith"], "69:302 (1967)"),
            PublicationRecord.create(2, "B", ["Hemdon, Judith"], "69:239 (1967)"),
        ])
        assert len(repo.author_index().groups()) == 2
        assert len(repo.author_index(resolve_variants=True).groups()) == 1


class TestDurability:
    def test_durable_roundtrip(self, tmp_path, sample_records):
        with PublicationRepository(tmp_path / "db") as repo:
            repo.add_all(sample_records)
            repo.snapshot()
        with PublicationRepository(tmp_path / "db") as reopened:
            assert len(reopened) == len(sample_records)
            assert reopened.by_surname("McAteer")

    def test_reference_corpus_workload(self, reference_records):
        repo = PublicationRepository()
        assert repo.add_all(reference_records) == 271
        assert len(repo.by_surname("Cardi")) == 4
        assert repo.count("year >= 1990") > 30
        assert len(repo.author_index()) == 343
        assert repo.by_volume(95)[0].citation.page == 1

"""Unit tests for cursor pagination."""

import pytest

from repro.errors import QueryPlanError
from repro.query.executor import QueryEngine
from repro.storage.store import IndexKind


@pytest.fixture()
def engine(memory_store):
    for i in range(25):
        memory_store.insert(
            {"id": i, "name": f"n{i % 5}", "year": 1970 + (i % 7)}
        )
    memory_store.create_index("year", IndexKind.BTREE)
    return QueryEngine(memory_store)


def drain(engine, query, page_size):
    pages = []
    cursor = None
    while True:
        page = engine.execute_paged(query, page_size=page_size, cursor=cursor)
        pages.append(page)
        if not page.has_more:
            return pages
        cursor = page.next_cursor


class TestPaging:
    def test_pages_cover_everything_once(self, engine):
        pages = drain(engine, "*", 7)
        ids = [r["id"] for p in pages for r in p.rows]
        assert sorted(ids) == list(range(25))
        assert len(ids) == len(set(ids))

    def test_page_sizes(self, engine):
        pages = drain(engine, "*", 7)
        assert [len(p.rows) for p in pages] == [7, 7, 7, 4]

    def test_last_page_has_no_cursor(self, engine):
        pages = drain(engine, "*", 7)
        assert pages[-1].next_cursor is None
        assert all(p.next_cursor for p in pages[:-1])

    def test_default_order_is_primary_key(self, engine):
        page = engine.execute_paged("*", page_size=5)
        assert [r["id"] for r in page.rows] == [0, 1, 2, 3, 4]

    def test_explicit_order_with_tiebreak(self, engine):
        pages = drain(engine, "* ORDER BY year", 6)
        rows = [r for p in pages for r in p.rows]
        keys = [(r["year"], r["id"]) for r in rows]
        assert keys == sorted(keys)

    def test_descending_order(self, engine):
        pages = drain(engine, "* ORDER BY year DESC", 6)
        rows = [r for p in pages for r in p.rows]
        years = [r["year"] for r in rows]
        assert years == sorted(years, reverse=True)
        assert sorted(r["id"] for r in rows) == list(range(25))

    def test_filter_applies(self, engine):
        pages = drain(engine, "year >= 1975", 4)
        rows = [r for p in pages for r in p.rows]
        assert all(r["year"] >= 1975 for r in rows)

    def test_exact_multiple_of_page_size(self, engine):
        pages = drain(engine, "*", 5)
        assert [len(p.rows) for p in pages] == [5, 5, 5, 5, 5]
        assert pages[-1].next_cursor is None

    def test_no_skip_when_row_deleted_between_pages(self, engine):
        first = engine.execute_paged("*", page_size=10)
        engine.store.delete(first.rows[-1]["id"])  # delete the cursor row
        second = engine.execute_paged("*", page_size=10, cursor=first.next_cursor)
        assert [r["id"] for r in second.rows] == list(range(10, 20))

    def test_insert_between_pages_does_not_duplicate(self, engine):
        first = engine.execute_paged("*", page_size=10)
        engine.store.insert({"id": 100, "name": "new", "year": 1999})
        remaining = drain_ids = []
        cursor = first.next_cursor
        while cursor is not None:
            page = engine.execute_paged("*", page_size=10, cursor=cursor)
            drain_ids.extend(r["id"] for r in page.rows)
            cursor = page.next_cursor
        ids = [r["id"] for r in first.rows] + drain_ids
        assert len(ids) == len(set(ids))
        assert 100 in ids  # inserted beyond the cursor: seen exactly once


class TestValidation:
    def test_page_size_positive(self, engine):
        with pytest.raises(QueryPlanError):
            engine.execute_paged("*", page_size=0)

    def test_limit_rejected(self, engine):
        with pytest.raises(QueryPlanError):
            engine.execute_paged("* LIMIT 5", page_size=5)

    def test_group_by_rejected(self, engine):
        with pytest.raises(QueryPlanError):
            engine.execute_paged("* GROUP BY name", page_size=5)

    def test_malformed_cursor(self, engine):
        with pytest.raises(QueryPlanError):
            engine.execute_paged("*", page_size=5, cursor="not-a-cursor")

    def test_unknown_order_field(self, engine):
        with pytest.raises(QueryPlanError):
            engine.execute_paged("* ORDER BY bogus", page_size=5)

"""Docs stay true: fenced examples run, intra-repo links resolve.

Three layers of enforcement, run by the CI ``docs`` job:

* every fenced ```` ```python ```` block in the Markdown docs must at
  least compile; blocks written as doctest sessions (``>>>``) are
  executed and their outputs checked;
* every docstring doctest in the storage modules runs (the WAL and
  transaction docstrings carry executable examples);
* every relative Markdown link in the docs points at a file that exists.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: Markdown files under the docs contract (repo-relative).
DOC_FILES = sorted(
    [Path("README.md"), *(p.relative_to(REPO) for p in (REPO / "docs").glob("*.md"))]
)

_FENCE_RE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _python_blocks(markdown_path: Path) -> list[tuple[int, str]]:
    """``(line_number, code)`` for each ```python fence in the file."""
    text = (REPO / markdown_path).read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 2  # first code line
        blocks.append((line, match.group(1)))
    return blocks


_ALL_BLOCKS = [
    pytest.param(path, line, code, id=f"{path}:{line}")
    for path in DOC_FILES
    for line, code in _python_blocks(path)
]


@pytest.mark.parametrize("path,line,code", _ALL_BLOCKS)
def test_python_fence_is_valid(path: Path, line: int, code: str):
    if ">>>" in code:
        # A doctest session: execute it and check the shown outputs.
        results = doctest.testmod(
            _as_module(path, line, code), verbose=False, report=True
        )
        assert results.failed == 0, f"doctest failure in {path}:{line}"
    else:
        # Plain example: must compile (running it may need live state).
        compile(code, f"{path}:{line}", "exec")


def _as_module(path: Path, line: int, code: str):
    import types

    module = types.ModuleType(f"docblock_{path.stem}_{line}")
    module.__doc__ = code
    return module


DOCTEST_MODULES = [
    "repro.storage.wal",
    "repro.storage.store",
    "repro.storage.transactions",
    "repro.storage.faultfs",
    "repro.storage.fsck",
    "repro.storage.pages",
    "repro.storage.bufferpool",
    "repro.storage.paged_btree",
    "repro.storage.paged_store",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_docstring_examples(module_name: str, tmp_path, monkeypatch):
    import importlib

    monkeypatch.chdir(tmp_path)  # any doctest side effects land in tmp
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"doctest failure in {module_name}"


@pytest.mark.parametrize("path", DOC_FILES, ids=str)
def test_relative_links_resolve(path: Path):
    text = (REPO / path).read_text(encoding="utf-8")
    base = (REPO / path).parent
    broken = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (base / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert broken == [], f"broken links in {path}: {broken}"


def test_docs_index_lists_every_doc():
    index = (REPO / "docs" / "README.md").read_text(encoding="utf-8")
    for doc in (REPO / "docs").glob("*.md"):
        if doc.name == "README.md":
            continue
        assert f"({doc.name})" in index, f"docs/README.md does not list {doc.name}"

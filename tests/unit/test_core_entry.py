"""Unit tests for repro.core.entry."""

import pytest

from repro.citation.model import Citation
from repro.core.entry import IndexEntry, PublicationRecord, explode
from repro.errors import ValidationError
from repro.names.parser import parse_name


class TestPublicationRecord:
    def test_create_parses_everything(self):
        rec = PublicationRecord.create(
            1, "Some Title", ["Fox, Fred L., II*"], "69:293 (1967)"
        )
        assert rec.authors[0].surname == "Fox"
        assert rec.citation == Citation(volume=69, page=293, year=1967)
        assert rec.is_student_work is True

    def test_student_flag_explicit_overrides(self):
        rec = PublicationRecord.create(
            1, "T", ["Fox, Fred L.*"], "69:1 (1967)", is_student_work=False
        )
        assert rec.is_student_work is False

    def test_student_from_any_author(self):
        rec = PublicationRecord.create(
            1, "T", ["Clean, A.", "Marked, B.*"], "69:1 (1967)"
        )
        assert rec.is_student_work is True

    def test_accepts_preparsed_values(self):
        name = parse_name("Areen, Judith")
        citation = Citation(volume=88, page=153, year=1985)
        rec = PublicationRecord.create(1, "T", [name], citation)
        assert rec.authors == (name,)
        assert rec.citation is citation

    def test_title_required(self):
        with pytest.raises(ValidationError):
            PublicationRecord.create(1, "   ", ["A, B."], "69:1 (1967)")

    def test_authors_required(self):
        with pytest.raises(ValidationError):
            PublicationRecord.create(1, "T", [], "69:1 (1967)")

    def test_title_stripped(self):
        rec = PublicationRecord.create(1, "  T  ", ["A, B."], "69:1 (1967)")
        assert rec.title == "T"


class TestStoreRoundTrip:
    def test_roundtrip(self, sample_records):
        for rec in sample_records:
            back = PublicationRecord.from_store_dict(rec.to_store_dict())
            assert back.record_id == rec.record_id
            assert back.title == rec.title
            assert back.citation == rec.citation
            assert back.is_student_work == rec.is_student_work
            assert [a.identity_key() for a in back.authors] == [
                a.identity_key() for a in rec.authors
            ]

    def test_store_dict_shape(self):
        rec = PublicationRecord.create(
            7, "T", ["Galloway, L. Thomas", "Webb, Richard L."], "80:397 (1978)"
        )
        d = rec.to_store_dict()
        assert d["id"] == 7
        assert d["surnames"] == ["Galloway", "Webb"]
        assert (d["volume"], d["page"], d["year"]) == (80, 397, 1978)

    def test_store_dict_validates_against_schema(self, sample_records):
        from repro.corpus.wvlr import PUBLICATION_SCHEMA

        for rec in sample_records:
            PUBLICATION_SCHEMA.validate(rec.to_store_dict())


class TestExplode:
    def test_one_entry_per_author(self):
        rec = PublicationRecord.create(
            1, "T", ["A, X.", "B, Y.", "C, Z."], "80:1 (1978)"
        )
        entries = explode(rec)
        assert [e.author.surname for e in entries] == ["A", "B", "C"]

    def test_entries_share_record_fields(self):
        rec = PublicationRecord.create(1, "T", ["A, X.", "B, Y."], "80:1 (1978)")
        for entry in explode(rec):
            assert entry.title == "T"
            assert entry.citation == rec.citation
            assert entry.record_id == 1

    def test_student_flag_propagates(self):
        rec = PublicationRecord.create(1, "T", ["A, X.*", "B, Y."], "80:1 (1978)")
        assert all(e.is_student_work for e in explode(rec))


class TestIndexEntry:
    def test_row_key_identity(self):
        a = IndexEntry(parse_name("Smith, A."), "T", Citation(69, 1, 1967))
        b = IndexEntry(parse_name("smith, a."), "t", Citation(69, 1, 1967))
        assert a.row_key() == b.row_key()

    def test_row_key_differs_on_citation(self):
        a = IndexEntry(parse_name("Smith, A."), "T", Citation(69, 1, 1967))
        b = IndexEntry(parse_name("Smith, A."), "T", Citation(69, 2, 1967))
        assert a.row_key() != b.row_key()

    def test_str_contains_marker(self):
        entry = IndexEntry(
            parse_name("Smith, A."), "T", Citation(69, 1, 1967), is_student_work=True
        )
        assert "*" in str(entry)

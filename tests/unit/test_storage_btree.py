"""Unit tests for repro.storage.btree."""

import random

import pytest

from repro.storage.btree import BTree


class TestBasics:
    def test_empty(self):
        tree = BTree()
        assert len(tree) == 0
        assert tree.search(1) == []
        assert 1 not in tree

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BTree(order=2)

    def test_insert_search(self):
        tree = BTree(order=4)
        tree.insert(5, "a")
        assert tree.search(5) == ["a"]
        assert 5 in tree

    def test_duplicate_key_values(self):
        tree = BTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.search(1) == ["a", "b"]
        assert len(tree) == 2
        assert tree.distinct_keys == 1

    def test_min_max(self):
        tree = BTree(order=4)
        for k in [5, 2, 8, 1, 9]:
            tree.insert(k, k)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_min_max_empty_raise(self):
        with pytest.raises(KeyError):
            BTree().min_key()
        with pytest.raises(KeyError):
            BTree().max_key()

    def test_items_sorted(self):
        tree = BTree(order=4)
        keys = list(range(100))
        random.Random(1).shuffle(keys)
        for k in keys:
            tree.insert(k, f"v{k}")
        assert [k for k, _ in tree.items()] == list(range(100))

    def test_keys_distinct_sorted(self):
        tree = BTree(order=4)
        for k in [3, 1, 3, 2, 1]:
            tree.insert(k, k)
        assert list(tree.keys()) == [1, 2, 3]

    def test_height_grows(self):
        tree = BTree(order=4)
        assert tree.height == 1
        for k in range(100):
            tree.insert(k, k)
        assert tree.height > 1
        tree.validate()


class TestRange:
    @pytest.fixture()
    def tree(self) -> BTree:
        t = BTree(order=4)
        for k in range(0, 100, 2):  # evens 0..98
            t.insert(k, f"v{k}")
        return t

    def test_inclusive_range(self, tree):
        assert [k for k, _ in tree.range(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self, tree):
        got = [k for k, _ in tree.range(10, 20, include_low=False, include_high=False)]
        assert got == [12, 14, 16, 18]

    def test_open_low(self, tree):
        assert [k for k, _ in tree.range(None, 6)] == [0, 2, 4, 6]

    def test_open_high(self, tree):
        assert [k for k, _ in tree.range(94, None)] == [94, 96, 98]

    def test_full_range(self, tree):
        assert len(list(tree.range())) == 50

    def test_bounds_between_keys(self, tree):
        assert [k for k, _ in tree.range(11, 15)] == [12, 14]

    def test_empty_range(self, tree):
        assert list(tree.range(11, 11)) == []

    def test_single_key_range(self, tree):
        assert [k for k, _ in tree.range(10, 10)] == [10]

    def test_inverted_range(self, tree):
        assert list(tree.range(20, 10)) == []

    def test_duplicates_in_range(self):
        tree = BTree(order=4)
        tree.insert(5, "a")
        tree.insert(5, "b")
        tree.insert(6, "c")
        assert [(k, v) for k, v in tree.range(5, 6)] == [(5, "a"), (5, "b"), (6, "c")]


class TestRemove:
    def test_remove_missing(self):
        tree = BTree(order=4)
        assert tree.remove(1) is False

    def test_remove_one_value(self):
        tree = BTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1, "a") is True
        assert tree.search(1) == ["b"]
        assert len(tree) == 1

    def test_remove_missing_value(self):
        tree = BTree(order=4)
        tree.insert(1, "a")
        assert tree.remove(1, "zzz") is False
        assert len(tree) == 1

    def test_remove_last_value_removes_key(self):
        tree = BTree(order=4)
        tree.insert(1, "a")
        assert tree.remove(1, "a") is True
        assert 1 not in tree
        assert tree.distinct_keys == 0

    def test_remove_whole_key(self):
        tree = BTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1) is True
        assert len(tree) == 0

    def test_remove_all_descending(self):
        tree = BTree(order=4)
        for k in range(64):
            tree.insert(k, k)
        for k in reversed(range(64)):
            assert tree.remove(k) is True
            tree.validate()
        assert len(tree) == 0
        assert tree.height == 1

    def test_remove_all_ascending(self):
        tree = BTree(order=5)
        for k in range(64):
            tree.insert(k, k)
        for k in range(64):
            assert tree.remove(k)
        tree.validate()
        assert list(tree.items()) == []

    @pytest.mark.parametrize("order", [3, 4, 5, 8, 32])
    def test_mixed_workload_validates(self, order):
        rng = random.Random(order)
        tree = BTree(order=order)
        reference: dict[int, list[int]] = {}
        for _ in range(800):
            key = rng.randrange(80)
            if rng.random() < 0.6:
                value = rng.randrange(1000)
                tree.insert(key, value)
                reference.setdefault(key, []).append(value)
            elif reference:
                key = rng.choice(list(reference))
                tree.remove(key)
                del reference[key]
        tree.validate()
        assert list(tree.keys()) == sorted(reference)
        for key, values in reference.items():
            assert sorted(tree.search(key)) == sorted(values)


class TestNonIntegerKeys:
    def test_string_keys(self):
        tree = BTree(order=4)
        for name in ["mcateer", "maxwell", "meadows", "abdalla"]:
            tree.insert(name, name)
        assert list(tree.keys()) == ["abdalla", "maxwell", "mcateer", "meadows"]

    def test_tuple_keys(self):
        tree = BTree(order=4)
        tree.insert((95, 691), "a")
        tree.insert((95, 1), "b")
        tree.insert((69, 293), "c")
        assert [k for k, _ in tree.items()] == [(69, 293), (95, 1), (95, 691)]

"""Unit tests for repro.storage.pages: the on-disk page grammar.

The property tests pin the contract ``docs/storage_format.md`` promises:
pack → unpack → pack is **byte-identical** for every node kind and every
key type the codec supports, and any single flipped bit anywhere in a
page is caught by the CRC on first read.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.pages import (
    HEADER_SIZE,
    PAGE_SIZE,
    PT_FREE,
    PT_LEAF,
    InternalNode,
    LeafNode,
    OverflowRef,
    PageCorruptionError,
    PageFile,
    PageOverflowError,
    finalize_page,
    pack_key,
    page_type,
    unpack_key,
    verify_page,
)

# -- key strategies -----------------------------------------------------------

_scalar_keys = st.one_of(
    st.booleans(),
    st.integers(),  # covers i64 and the bigint escape hatch beyond it
    st.text(max_size=40),
    st.floats(allow_nan=False),
)
_keys = st.one_of(
    _scalar_keys,
    st.tuples(_scalar_keys),
    st.tuples(_scalar_keys, _scalar_keys),
    st.tuples(_scalar_keys, _scalar_keys, _scalar_keys),
)


class TestKeyCodec:
    @given(_keys)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_value_and_bytes(self, key):
        raw = pack_key(key)
        back, offset = unpack_key(raw)
        assert back == key
        assert type(back) is type(key)
        assert offset == len(raw)
        # pack -> unpack -> pack is byte-identical
        assert pack_key(back) == raw

    @given(_keys, _keys)
    @settings(max_examples=100, deadline=None)
    def test_concatenated_keys_decode_in_sequence(self, first, second):
        buf = pack_key(first) + pack_key(second)
        a, offset = unpack_key(buf)
        b, end = unpack_key(buf, offset)
        assert (a, b) == (first, second)
        assert end == len(buf)

    def test_bool_is_not_int(self):
        # bool subclasses int; the codec must keep the distinction.
        assert pack_key(True) != pack_key(1)
        assert unpack_key(pack_key(True))[0] is True
        assert unpack_key(pack_key(1))[0] == 1

    def test_bigint_beyond_i64(self):
        huge = 2**200 + 7
        assert unpack_key(pack_key(huge))[0] == huge
        assert unpack_key(pack_key(-huge))[0] == -huge

    def test_unpackable_types_rejected(self):
        with pytest.raises(StorageError):
            pack_key([1, 2])
        with pytest.raises(StorageError):
            pack_key(None)

    def test_oversized_string_rejected(self):
        with pytest.raises(StorageError):
            pack_key("x" * 70_000)


# -- node layouts -------------------------------------------------------------

_values = st.one_of(
    st.binary(max_size=60),
    st.builds(
        OverflowRef,
        head=st.integers(min_value=1, max_value=2**32 - 1),
        length=st.integers(min_value=0, max_value=2**32 - 1),
    ),
)


@st.composite
def _leaf_nodes(draw):
    keys = sorted(
        draw(st.sets(st.integers(min_value=-(2**40), max_value=2**40),
                     max_size=20))
    )
    values = [draw(_values) for _ in keys]
    return LeafNode(
        keys=keys,
        values=values,
        prev_leaf=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        next_leaf=draw(st.integers(min_value=0, max_value=2**32 - 1)),
    )


@st.composite
def _internal_nodes(draw):
    keys = sorted(
        draw(st.sets(st.integers(min_value=-(2**40), max_value=2**40),
                     max_size=30))
    )
    children = [
        draw(st.integers(min_value=1, max_value=2**32 - 1))
        for _ in range(len(keys) + 1)
    ]
    return InternalNode(keys=keys, children=children)


class TestNodePacking:
    @given(_leaf_nodes())
    @settings(max_examples=100, deadline=None)
    def test_leaf_pack_unpack_pack_byte_identical(self, node):
        page = node.pack()
        assert len(page) == PAGE_SIZE
        verify_page(page, 1)  # pack() stamps a valid CRC
        back = LeafNode.unpack(page)
        assert back.keys == node.keys
        assert back.values == node.values
        assert back.prev_leaf == node.prev_leaf
        assert back.next_leaf == node.next_leaf
        assert back.pack() == page

    @given(_internal_nodes())
    @settings(max_examples=100, deadline=None)
    def test_internal_pack_unpack_pack_byte_identical(self, node):
        page = node.pack()
        back = InternalNode.unpack(page)
        assert back.keys == node.keys
        assert back.children == node.children
        assert back.pack() == page

    def test_packed_size_matches_pack(self):
        node = LeafNode(keys=[1, "two"], values=[b"a", b"bb"], next_leaf=9)
        packed = node.pack(page_size=node.packed_size())
        assert len(packed) == node.packed_size()
        assert LeafNode.unpack(packed).keys == [1, "two"]

    def test_leaf_overflow_raises(self):
        node = LeafNode(keys=[1], values=[b"x" * 300])
        with pytest.raises(PageOverflowError):
            node.pack(page_size=256)

    def test_internal_child_count_mismatch_rejected(self):
        with pytest.raises(StorageError):
            InternalNode(keys=[1, 2], children=[3, 4]).pack()

    def test_wrong_page_type_rejected(self):
        leaf_page = LeafNode(keys=[], values=[]).pack()
        with pytest.raises(StorageError):
            InternalNode.unpack(leaf_page)


class TestPageChecksum:
    @given(
        _leaf_nodes(),
        st.integers(min_value=0, max_value=PAGE_SIZE - 1),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_flipped_bit_is_detected(self, node, byte_index, bit):
        page = bytearray(node.pack())
        page[byte_index] ^= 1 << bit
        with pytest.raises(PageCorruptionError) as excinfo:
            verify_page(bytes(page), 42)
        assert excinfo.value.page_id == 42

    def test_short_page_rejected(self):
        with pytest.raises(PageCorruptionError):
            verify_page(b"\x00" * 100, 0)


# -- the pager ----------------------------------------------------------------


class TestPageFile:
    def test_create_and_reopen_meta(self, tmp_path):
        path = tmp_path / "p.pages"
        with PageFile(path, create=True) as pf:
            pid = pf.allocate()
            pf.write_page(pid, LeafNode(keys=[1], values=[b"v"]).pack())
            pf.meta.root = pid
            pf.meta.entry_count = 1
            pf.meta.data_crc = 0xDEADBEEF
            pf.write_meta()
            pf.fsync()
        with PageFile(path) as pf:
            assert pf.meta.root == pid
            assert pf.meta.entry_count == 1
            assert pf.meta.data_crc == 0xDEADBEEF
            assert LeafNode.unpack(pf.read_page(pid)).keys == [1]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            PageFile(tmp_path / "absent.pages")

    def test_allocate_prefers_free_list(self, tmp_path):
        with PageFile(tmp_path / "p.pages", create=True) as pf:
            pids = [pf.allocate() for _ in range(4)]
            for pid in pids:
                pf.write_page(pid, LeafNode(keys=[], values=[]).pack())
            pf.free(pids[1])
            pf.free(pids[3])
            assert list(pf.free_list()) == [pids[3], pids[1]]  # head insertion
            assert pf.allocate() == pids[3]
            assert pf.allocate() == pids[1]
            # list drained: next allocation extends the file
            assert pf.allocate() == pf.meta.page_count - 1

    def test_free_page_zero_rejected(self, tmp_path):
        with PageFile(tmp_path / "p.pages", create=True) as pf:
            with pytest.raises(StorageError):
                pf.free(0)

    def test_read_detects_disk_corruption(self, tmp_path):
        path = tmp_path / "p.pages"
        with PageFile(path, create=True) as pf:
            pid = pf.allocate()
            pf.write_page(pid, LeafNode(keys=[5], values=[b"v"]).pack())
            pf.write_meta()
        raw = bytearray(path.read_bytes())
        raw[pid * PAGE_SIZE + HEADER_SIZE + 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with PageFile(path) as pf:
            with pytest.raises(PageCorruptionError) as excinfo:
                pf.read_page(pid)
            assert excinfo.value.page_id == pid

    def test_free_list_cycle_detected(self, tmp_path):
        path = tmp_path / "p.pages"
        with PageFile(path, create=True) as pf:
            a, b = pf.allocate(), pf.allocate()
            pf.write_page(a, LeafNode(keys=[], values=[]).pack())
            pf.write_page(b, LeafNode(keys=[], values=[]).pack())
            pf.free(a)
            pf.free(b)  # list: b -> a
            # hand-corrupt a's next pointer back to b
            page = bytearray(PAGE_SIZE)
            struct.pack_into("<BBHII", page, 0, PT_FREE, 0, 0, 0, b)
            pf.write_page(a, finalize_page(page))
            with pytest.raises(PageCorruptionError):
                list(pf.free_list())

    def test_page_type_helper(self):
        assert page_type(LeafNode(keys=[], values=[]).pack()) == PT_LEAF

"""Unit tests for repro.core.toc."""

from repro.core.entry import PublicationRecord
from repro.core.toc import build_toc


def rec(i, title, citation, authors=("A, B.",)):
    return PublicationRecord.create(i, title, list(authors), citation)


class TestBuildToc:
    def test_volumes_ascending(self):
        toc = build_toc([
            rec(1, "C", "71:1 (1969)"),
            rec(2, "A", "69:1 (1966)"),
            rec(3, "B", "70:1 (1967)"),
        ])
        assert [v.volume for v in toc] == [69, 70, 71]

    def test_pages_ascending_within_volume(self):
        toc = build_toc([
            rec(1, "Late", "70:163 (1967)"),
            rec(2, "Early", "70:20 (1967)"),
        ])
        assert [r.citation.page for r in toc.volume(70).records] == [20, 163]

    def test_year_label_single(self):
        toc = build_toc([rec(1, "A", "70:1 (1967)")])
        assert toc.volume(70).year_label == "1967"

    def test_year_label_span(self):
        toc = build_toc([
            rec(1, "A", "70:1 (1967)"),
            rec(2, "B", "70:400 (1968)"),
        ])
        assert toc.volume(70).year_label == "1967-1968"

    def test_volume_lookup_missing(self):
        toc = build_toc([rec(1, "A", "70:1 (1967)")])
        assert toc.volume(99) is None

    def test_article_count(self):
        toc = build_toc([rec(1, "A", "70:1 (1967)"), rec(2, "B", "70:2 (1967)")])
        assert toc.volume(70).article_count == 2

    def test_empty(self):
        toc = build_toc([])
        assert len(toc) == 0
        assert list(toc) == []

    def test_render_text(self):
        toc = build_toc([
            rec(1, "Criminal Venue in West Virginia", "70:163 (1967)",
                authors=("Lorensen, Willard D.",)),
        ])
        out = toc.render_text()
        assert "VOLUME 70 (1967)" in out
        assert "Lorensen, Willard D." in out
        assert "163" in out

    def test_reference_corpus(self, reference_records):
        toc = build_toc(reference_records)
        assert len(toc) == 27
        assert toc.volume(69).year_label in ("1966-1967", "1966-1968")
        total = sum(v.article_count for v in toc)
        assert total == len(reference_records)

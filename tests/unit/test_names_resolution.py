"""Unit tests for repro.names.resolution."""

import pytest

from repro.names.model import PersonName
from repro.names.parser import parse_name
from repro.names.resolution import NameResolver, UnionFind, resolve_names


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(3)
        assert len({uf.find(i) for i in range(3)}) == 3

    def test_union_merges(self):
        uf = UnionFind(3)
        assert uf.union(0, 1) is True
        assert uf.find(0) == uf.find(1)
        assert uf.find(2) != uf.find(0)

    def test_union_idempotent(self):
        uf = UnionFind(2)
        uf.union(0, 1)
        assert uf.union(0, 1) is False

    def test_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_groups(self):
        uf = UnionFind(4)
        uf.union(0, 2)
        groups = uf.groups()
        assert sorted(map(sorted, groups.values())) == [[0, 2], [1], [3]]


def _names(*raw: str) -> list[PersonName]:
    return [parse_name(r) for r in raw]


class TestResolver:
    def test_distinct_names_stay_apart(self):
        report = resolve_names(_names("Areen, Judith", "Bagge, Carl E."))
        assert len(report.clusters) == 2

    def test_ocr_variants_merge(self):
        report = resolve_names(_names("Herdon, Judith", "Hemdon, Judith"))
        assert len(report.clusters) == 1

    def test_different_people_same_surname(self):
        report = resolve_names(
            _names("Johnson, Earl, Jr.", "Johnson, Edward P.", "Johnson, Ben")
        )
        assert len(report.clusters) == 3

    def test_assignments_align_with_input(self):
        names = _names("Herdon, Judith", "Bagge, Carl E.", "Hemdon, Judith")
        report = NameResolver().resolve(names)
        assert len(report.assignments) == 3
        assert report.assignments[0] == report.assignments[2]
        assert report.assignments[0] != report.assignments[1]

    def test_canonical_prefers_frequent_spelling(self):
        names = _names("Johnson, Edward P.", "Johnson, Edward P.", "Johson, Edward P.")
        report = NameResolver().resolve(names)
        assert len(report.clusters) == 1
        assert report.clusters[0].canonical.surname == "Johnson"

    def test_cluster_of_lookup(self):
        names = _names("Herdon, Judith", "Hemdon, Judith")
        report = NameResolver().resolve(names)
        cluster = report.cluster_of(names[1])
        assert cluster is not None
        assert cluster.variant_count == 2

    def test_cluster_of_missing(self):
        report = resolve_names(_names("Areen, Judith"))
        assert report.cluster_of(parse_name("Zed, Q.")) is None

    def test_empty_input(self):
        report = resolve_names([])
        assert report.clusters == []
        assert report.input_count == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            NameResolver(threshold=0.0)
        with pytest.raises(ValueError):
            NameResolver(threshold=1.5)

    def test_higher_threshold_merges_less(self):
        names = _names("Herdon, Judith", "Hemdon, Judith")
        loose = NameResolver(threshold=0.85).resolve(names)
        strict = NameResolver(threshold=0.999).resolve(names)
        assert len(loose.clusters) <= len(strict.clusters)

    def test_clusters_sorted_by_surname(self):
        report = resolve_names(
            _names("Zlotnick, David", "Areen, Judith", "McAteer, J. Davitt")
        )
        surnames = [c.canonical.surname for c in report.clusters]
        assert surnames == ["Areen", "McAteer", "Zlotnick"]

    def test_pair_counters(self):
        names = _names("Herdon, Judith", "Hemdon, Judith", "Areen, Judith")
        report = NameResolver().resolve(names)
        assert report.pairs_merged == 1
        assert report.pairs_scored >= 1


class TestScoring:
    def test_perfect_resolution_scores_one(self):
        names = _names("Herdon, Judith", "Hemdon, Judith", "Bagge, Carl E.")
        truth = [[0, 1], [2]]
        report = NameResolver().resolve(names)
        precision, recall = report.score_against(truth)
        assert precision == 1.0
        assert recall == 1.0

    def test_under_merge_hurts_recall_not_precision(self):
        names = _names("Herdon, Judith", "Hemdon, Judith")
        report = NameResolver(threshold=0.9999).resolve(names)
        precision, recall = report.score_against([[0, 1]])
        assert precision == 1.0
        assert recall == 0.0

    def test_no_truth_pairs(self):
        names = _names("Areen, Judith", "Bagge, Carl E.")
        report = NameResolver().resolve(names)
        precision, recall = report.score_against([[0], [1]])
        assert precision == 1.0
        assert recall == 1.0


class TestSyntheticGroundTruth:
    def test_planted_noise_recall(self):
        from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig

        corpus = SyntheticCorpus(SyntheticCorpusConfig(size=100, seed=5, author_pool=40))
        names, truth = corpus.noisy_variants(noise_rate=2.0)
        report = NameResolver().resolve(names)
        precision, recall = report.score_against(truth)
        assert precision >= 0.98
        assert recall >= 0.85

"""Unit tests for repro.core.kwic."""

import pytest

from repro.core.entry import PublicationRecord
from repro.core.kwic import (
    KwicIndexBuilder,
    build_kwic_index,
    significant_words,
    _rotate,
)


def rec(i, title, citation="90:1 (1987)"):
    return PublicationRecord.create(i, title, ["A, B."], citation)


class TestSignificantWords:
    def test_stopwords_removed(self):
        assert significant_words("The Law of Coal in West Virginia") == [
            "law", "coal", "west", "virginia",
        ]

    def test_short_tokens_removed(self):
        assert "ad" not in significant_words("Ad Valorem Taxation")
        assert significant_words("Ad Valorem Taxation") == ["valorem", "taxation"]

    def test_punctuation_stripped(self):
        assert significant_words('"Takes" Private Property?') == [
            "takes", "private", "property",
        ]

    def test_duplicates_dropped(self):
        assert significant_words("Coal and Coal Again") == ["coal", "again"]

    def test_case_folded(self):
        assert significant_words("COAL Mining") == ["coal", "mining"]

    def test_numeric_only_tokens_dropped(self):
        assert "1977" not in significant_words("The Act of 1977")

    def test_empty_title(self):
        assert significant_words("") == []


class TestRotate:
    def test_leading_keyword_unrotated(self):
        assert _rotate("Coal Mining Law", "coal") == "Coal Mining Law"

    def test_mid_keyword_rotates(self):
        assert _rotate("The Law of Coal", "coal") == "Coal | The Law of"

    def test_keyword_with_punctuation(self):
        assert _rotate("Strip Mining, Reclamation", "mining") == (
            "Mining, Reclamation | Strip"
        )

    def test_missing_keyword_returns_title(self):
        assert _rotate("Hyphen-Compound Title", "compound") == "Hyphen-Compound Title"


class TestBuilder:
    def test_groups_alphabetical(self):
        idx = build_kwic_index([rec(1, "Zebra Law"), rec(2, "Apple Law")])
        assert idx.keywords() == ["apple", "law", "zebra"]

    def test_group_contains_all_titles(self):
        idx = build_kwic_index([
            rec(1, "The Law of Coal"),
            rec(2, "Coal and Energy", "91:5 (1988)"),
        ])
        group = idx.group("coal")
        assert group is not None
        assert len(group.entries) == 2
        assert group.heading == "COAL"

    def test_group_lookup_missing(self):
        idx = build_kwic_index([rec(1, "Coal")])
        assert idx.group("uranium") is None

    def test_entries_in_citation_order(self):
        idx = build_kwic_index([
            rec(1, "Coal Late", "92:5 (1989)"),
            rec(2, "Coal Early", "70:5 (1967)"),
        ])
        volumes = [e.citation.volume for e in idx.group("coal").entries]
        assert volumes == [70, 92]

    def test_min_group_size_filters(self):
        records = [rec(1, "Coal Alpha"), rec(2, "Coal Beta", "91:1 (1988)")]
        all_groups = build_kwic_index(records)
        filtered = build_kwic_index(records, min_group_size=2)
        assert "alpha" in all_groups.keywords()
        assert filtered.keywords() == ["coal"]

    def test_min_group_size_validation(self):
        with pytest.raises(ValueError):
            KwicIndexBuilder(min_group_size=0)

    def test_extra_stopwords(self):
        idx = build_kwic_index(
            [rec(1, "West Virginia Coal")], extra_stopwords={"west", "virginia"}
        )
        assert idx.keywords() == ["coal"]

    def test_len_counts_lines(self):
        idx = build_kwic_index([rec(1, "Coal Mining Law")])
        assert len(idx) == 3  # coal, mining, law

    def test_duplicate_citation_title_collapses(self):
        idx = build_kwic_index([rec(1, "Coal Coal Mining")])
        assert len(idx.group("coal").entries) == 1


class TestRendering:
    def test_text_has_headings_and_citations(self):
        idx = build_kwic_index([rec(1, "The Law of Coal")])
        out = idx.render_text()
        assert "COAL" in out
        assert "90:1 (1987)" in out
        assert "Coal | The Law of" in out

    def test_reference_corpus_coal_heading(self, reference_records):
        idx = build_kwic_index(reference_records, min_group_size=2)
        coal = idx.group("coal")
        assert coal is not None
        assert len(coal.entries) >= 20  # it is a coal-heavy corpus

"""Graceful degradation in scatter-gather: partial mode vs strict mode.

The contract under test (``ShardedQueryEngine.execute(partial=True)``):
quarantined shards are skipped up front, failing workers are retried
then skipped, and the result says exactly which shards are missing —
while strict mode stays all-or-nothing and refuses quarantined shards.
"""

import json

import pytest

from repro.errors import ShardUnavailableError
from repro.query import PartialResult, ShardedQueryEngine
from repro.query.executor import QueryProfile
from repro.storage import QUARANTINED, ShardedStore
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("year", FieldType.INT),
        Field("name", FieldType.STRING),
    ],
    primary_key="id",
)


def _corpus(n: int = 200) -> list[dict]:
    return [
        {"id": i, "year": 1900 + (i % 10), "name": f"n{i:04d}"} for i in range(n)
    ]


@pytest.fixture
def engine():
    store = ShardedStore(SCHEMA, shards=4)
    store.put_many(_corpus())
    engine = ShardedQueryEngine(store)
    yield engine
    engine.close()
    store.close()


def _canon(rows):
    return sorted(json.dumps(r, sort_keys=True) for r in rows)


class TestPartialMode:
    def test_all_healthy_returns_complete_partial_result(self, engine):
        rows = engine.execute("* ORDER BY id", partial=True)
        assert isinstance(rows, PartialResult)
        assert rows.partial is False
        assert rows.shards_failed == ()
        assert len(rows) == 200

    def test_quarantined_shard_is_skipped(self, engine):
        engine.store.quarantine(2, "test damage")
        rows = engine.execute("* ORDER BY id", partial=True)
        assert rows.partial is True
        assert rows.shards_failed == (2,)
        # Exactly the healthy shards' rows, still correctly merged.
        expected = [
            r
            for r in _corpus()
            if engine.store.shard_for(r["id"]) != 2
        ]
        assert list(rows) == sorted(expected, key=lambda r: r["id"])

    def test_execute_partial_alias(self, engine):
        engine.store.quarantine(0, "test")
        rows = engine.execute_partial("year >= 1905 ORDER BY id")
        assert rows.partial and rows.shards_failed == (0,)

    def test_profile_carries_degradation_metadata(self, engine):
        engine.store.quarantine(1, "test")
        profile = engine.execute("* ORDER BY id", partial=True, profile=True)
        assert isinstance(profile, QueryProfile)
        assert profile.partial is True
        assert profile.shards_failed == (1,)
        rendered = profile.render()
        assert "SKIPPED" in rendered

    def test_worker_failure_is_skipped_not_fatal(self, engine, monkeypatch):
        # Break one shard's worker below the health layer: partial mode
        # must return the three healthy shards and name the casualty.
        bad = engine._engines[3]
        monkeypatch.setattr(
            bad,
            "_candidates",
            lambda *a, **k: (_ for _ in ()).throw(OSError(5, "dead disk")),
        )
        rows = engine.execute("* ORDER BY id", partial=True)
        assert rows.partial is True
        assert rows.shards_failed == (3,)
        expected = [
            r for r in _corpus() if engine.store.shard_for(r["id"]) != 3
        ]
        assert _canon(rows) == _canon(expected)

    def test_readmit_restores_full_results(self, engine):
        engine.store.quarantine(2, "test")
        assert engine.execute("*", partial=True).shards_failed == (2,)
        engine.store.readmit(2)
        rows = engine.execute("* ORDER BY id", partial=True)
        assert rows.partial is False
        assert len(rows) == 200

    def test_aggregates_degrade_too(self, engine):
        engine.store.quarantine(0, "test")
        rows = engine.execute("* GROUP BY year", partial=True)
        assert rows.partial is True
        missing = sum(
            1 for r in _corpus() if engine.store.shard_for(r["id"]) == 0
        )
        assert sum(r["count"] for r in rows) == 200 - missing


class TestStrictMode:
    def test_strict_raises_on_quarantined_shard(self, engine):
        engine.store.quarantine(2, "bit rot")
        with pytest.raises(ShardUnavailableError) as err:
            engine.execute("* ORDER BY id")
        assert err.value.shard == 2
        assert err.value.state == QUARANTINED

    def test_strict_propagates_worker_failure(self, engine, monkeypatch):
        bad = engine._engines[1]
        monkeypatch.setattr(
            bad,
            "_candidates",
            lambda *a, **k: (_ for _ in ()).throw(OSError(5, "dead disk")),
        )
        with pytest.raises(OSError):
            engine.execute("* ORDER BY id")

    def test_strict_returns_plain_list_when_healthy(self, engine):
        rows = engine.execute("* ORDER BY id")
        assert not isinstance(rows, PartialResult)
        assert len(rows) == 200

"""Unit tests for repro.core.pagination."""

import pytest

from repro.core.builder import build_index
from repro.core.entry import PublicationRecord
from repro.core.pagination import Page, PageLayout, paginate


def make_index(n: int):
    return build_index([
        PublicationRecord.create(i + 1, f"Title {i}", [f"Author{i:03d}, A."], f"90:{i+1} (1987)")
        for i in range(n)
    ])


class TestPaginate:
    def test_empty_index(self):
        assert paginate(make_index(0)) == []

    def test_exact_multiple(self):
        pages = paginate(make_index(26), PageLayout(first_page=1, entries_per_page=13))
        assert [len(p.entries) for p in pages] == [13, 13]

    def test_remainder_page(self):
        pages = paginate(make_index(30), PageLayout(first_page=1, entries_per_page=13))
        assert [len(p.entries) for p in pages] == [13, 13, 4]

    def test_page_numbers_sequential(self):
        pages = paginate(make_index(30), PageLayout(first_page=1365, entries_per_page=13))
        assert [p.number for p in pages] == [1365, 1366, 1367]

    def test_entries_preserved_in_order(self):
        index = make_index(30)
        pages = paginate(index, PageLayout(entries_per_page=7))
        flattened = [e for p in pages for e in p.entries]
        assert flattened == list(index.entries)

    def test_invalid_entries_per_page(self):
        with pytest.raises(ValueError):
            paginate(make_index(5), PageLayout(entries_per_page=0))

    def test_accepts_plain_iterable(self):
        index = make_index(5)
        pages = paginate(list(index), PageLayout(entries_per_page=2))
        assert len(pages) == 3


class TestHeaders:
    def test_recto_header(self):
        layout = PageLayout(volume=95, year=1993, first_page=1365)
        header = layout.header_for(1367)
        assert header.startswith("1993]")
        assert "AUTHOR INDEX" in header
        assert header.endswith("1367")

    def test_verso_header(self):
        layout = PageLayout(volume=95, year=1993, first_page=1365)
        header = layout.header_for(1366)
        assert header.startswith("1366")
        assert "WEST VIRGINIA LAW REVIEW" in header
        assert header.endswith("[Vol. 95:1365")

    def test_is_recto(self):
        page = Page(number=1367, entries=(), header="", column_head="")
        assert page.is_recto is True
        page = Page(number=1366, entries=(), header="", column_head="")
        assert page.is_recto is False

    def test_column_head(self):
        head = PageLayout().column_head()
        assert "AUTHOR" in head
        assert "ARTICLE" in head
        assert "W. VA. L. REV." in head

    def test_headers_attached_to_pages(self):
        pages = paginate(make_index(3), PageLayout(first_page=1365, entries_per_page=2))
        assert "AUTHOR INDEX" in pages[0].header  # 1365 is recto
        assert "WEST VIRGINIA LAW REVIEW" in pages[1].header

    def test_header_fits_width(self):
        layout = PageLayout(width=78)
        assert len(layout.header_for(1365)) <= 78
        assert len(layout.header_for(1366)) <= 78

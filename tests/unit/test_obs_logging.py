"""Structured logging: levels, ring tail, rate limiting, trace context."""

import io
import json
import threading

import pytest

from repro.obs import logging as obs_logging
from repro.obs.logging import (
    JsonLogger,
    current_trace_id,
    format_event,
    new_trace_id,
    read_jsonl,
    trace,
)


class TestEmission:
    def test_record_shape(self):
        logger = JsonLogger()
        logger.info("unit.event", rows=3, cached=True)
        (record,) = logger.tail()
        assert record["event"] == "unit.event"
        assert record["level"] == "info"
        assert record["rows"] == 3
        assert record["cached"] is True
        # ISO-8601 UTC with milliseconds and a Z suffix.
        assert record["ts"].endswith("Z")
        assert "T" in record["ts"]

    def test_level_filtering(self):
        logger = JsonLogger(level="warn")
        logger.debug("unit.debug")
        logger.info("unit.info")
        logger.warn("unit.warn")
        logger.error("unit.error")
        assert [r["event"] for r in logger.tail()] == ["unit.warn", "unit.error"]

    def test_set_level(self):
        logger = JsonLogger(level="info")
        logger.debug("unit.before")
        logger.set_level("debug")
        logger.debug("unit.after")
        assert [r["event"] for r in logger.tail()] == ["unit.after"]
        assert logger.level == "debug"

    def test_unknown_level_rejected(self):
        logger = JsonLogger()
        with pytest.raises(ValueError, match="unknown level"):
            logger.log("unit.event", level="loud")
        with pytest.raises(ValueError, match="unknown level"):
            JsonLogger(level="loud")
        with pytest.raises(ValueError, match="unknown level"):
            logger.set_level("loud")

    def test_disabled_logger_emits_nothing(self):
        logger = JsonLogger(enabled=False)
        logger.error("unit.event")
        assert logger.tail() == []
        logger.enable()
        logger.error("unit.event")
        assert len(logger.tail()) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            JsonLogger(capacity=0)


class TestRingBuffer:
    def test_ring_evicts_oldest(self):
        logger = JsonLogger(capacity=3)
        for i in range(10):
            logger.info("unit.event", i=i)
        assert [r["i"] for r in logger.tail()] == [7, 8, 9]

    def test_tail_filters(self):
        logger = JsonLogger(level="debug")
        logger.debug("storage.wal.rotate", seal=1)
        logger.info("storage.checkpoint")
        logger.warn("query.slow")
        assert [r["event"] for r in logger.tail(event="storage")] == [
            "storage.wal.rotate",
            "storage.checkpoint",
        ]
        assert [r["event"] for r in logger.tail(level="info")] == [
            "storage.checkpoint",
            "query.slow",
        ]
        assert [r["event"] for r in logger.tail(1)] == ["query.slow"]

    def test_tail_event_prefix_is_dotted(self):
        logger = JsonLogger()
        logger.info("storage.checkpoint")
        logger.info("storagex.other")
        assert [r["event"] for r in logger.tail(event="storage")] == [
            "storage.checkpoint"
        ]
        # A trailing dot means the same prefix, not a literal match.
        assert [r["event"] for r in logger.tail(event="storage.")] == [
            "storage.checkpoint"
        ]

    def test_tail_by_trace_id(self):
        logger = JsonLogger()
        with trace() as tid_a:
            logger.info("unit.a")
        with trace() as tid_b:
            logger.info("unit.b")
        assert [r["event"] for r in logger.tail(trace_id=tid_a)] == ["unit.a"]
        assert [r["event"] for r in logger.tail(trace_id=tid_b)] == ["unit.b"]

    def test_reset_clears_ring(self):
        logger = JsonLogger()
        logger.info("unit.event")
        logger.reset()
        assert logger.tail() == []


class TestRateLimit:
    def test_hot_event_is_dropped_past_budget(self):
        logger = JsonLogger(rate_limit_per_s=5.0)
        for _ in range(100):
            logger.info("unit.hot")
        emitted = len(logger.tail(event="unit.hot"))
        assert emitted < 100
        assert emitted >= 5

    def test_rate_limit_is_per_event_name(self):
        logger = JsonLogger(rate_limit_per_s=1.0)
        logger.info("unit.a")
        logger.info("unit.a")  # second one dropped
        logger.info("unit.b")  # separate bucket: emitted
        events = [r["event"] for r in logger.tail()]
        assert events == ["unit.a", "unit.b"]

    def test_zero_limit_means_unlimited(self):
        logger = JsonLogger(rate_limit_per_s=0)
        for _ in range(500):
            logger.info("unit.hot")
        assert len(logger.tail()) == 500


class TestTraceContext:
    def test_new_trace_ids_are_unique(self):
        ids = {new_trace_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert all(len(tid) == 16 for tid in ids)

    def test_trace_binds_and_unbinds(self):
        assert current_trace_id() is None
        with trace() as tid:
            assert current_trace_id() == tid
        assert current_trace_id() is None

    def test_nested_trace_inherits(self):
        with trace() as outer:
            with trace() as inner:
                assert inner == outer
            assert current_trace_id() == outer

    def test_explicit_trace_id_wins(self):
        with trace("feedfacedeadbeef") as tid:
            assert tid == "feedfacedeadbeef"

    def test_trace_is_thread_local(self):
        seen: dict[str, str | None] = {}

        def worker() -> None:
            seen["other"] = current_trace_id()

        with trace():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] is None

    def test_events_carry_the_bound_trace_id(self):
        logger = JsonLogger()
        with trace() as tid:
            logger.info("unit.inside")
        logger.info("unit.outside")
        inside, outside = logger.tail()
        assert inside["trace_id"] == tid
        assert "trace_id" not in outside


class TestSinks:
    def test_stream_sink_mirrors_json_lines(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        logger.info("unit.event", n=1)
        record = json.loads(stream.getvalue())
        assert record["event"] == "unit.event"
        assert record["n"] == 1

    def test_file_sink_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = JsonLogger()
        logger.attach_file(path)
        assert logger.file_path == str(path)
        logger.info("unit.one", i=1)
        logger.info("unit.two", i=2)
        logger.detach_file()
        events = read_jsonl(path)
        assert [e["event"] for e in events] == ["unit.one", "unit.two"]
        assert logger.file_path is None

    def test_read_jsonl_skips_torn_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"event": "ok", "level": "info"}\n'
            '{"event": "torn", "lev\n'
            "\n"
            "[1, 2, 3]\n"
            '{"event": "also-ok"}\n',
            encoding="utf-8",
        )
        assert [e["event"] for e in read_jsonl(path)] == ["ok", "also-ok"]


class TestFormatting:
    def test_format_event_layout(self):
        line = format_event(
            {
                "ts": "2026-08-06T12:00:00.000Z",
                "level": "warn",
                "event": "query.slow",
                "trace_id": "abc123",
                "seconds": 0.5,
                "query": "year >= 1900",
            }
        )
        assert line.startswith("2026-08-06T12:00:00.000Z  WARN   query.slow")
        assert "trace=abc123" in line
        assert "seconds=0.5" in line
        assert "query='year >= 1900'" in line


class TestModuleLevel:
    def test_default_logger_helpers(self):
        obs_logging.reset()
        try:
            obs_logging.info("unit.module.event", n=7)
            (record,) = obs_logging.tail(event="unit.module.event")
            assert record["n"] == 7
        finally:
            obs_logging.reset()

    def test_set_enabled_round_trip(self):
        assert obs_logging.is_enabled()
        obs_logging.set_enabled(False)
        try:
            obs_logging.info("unit.disabled.event")
            assert obs_logging.tail(event="unit.disabled.event") == []
        finally:
            obs_logging.set_enabled(True)
            obs_logging.reset()

"""Unit tests for repro.obs.metrics: counters, gauges, histograms,
registry lifecycle, thread safety, and the disabled-registry no-op path."""

import json
import threading

import pytest

from repro.obs import export, metrics
from repro.obs.metrics import DEFAULT_TIMING_BUCKETS, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("c")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_same_name_same_series(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_labels_make_distinct_series(self, registry):
        a = registry.counter("chosen", access="seq-scan")
        b = registry.counter("chosen", access="index-lookup")
        assert a is not b
        a.inc()
        assert (a.value, b.value) == (1, 0)

    def test_label_order_is_canonical(self, registry):
        a = registry.counter("c", x="1", y="2")
        b = registry.counter("c", y="2", x="1")
        assert a is b

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_type_mismatch_rejected(self, registry):
        registry.counter("series")
        with pytest.raises(ValueError):
            registry.gauge("series")
        with pytest.raises(ValueError):
            registry.histogram("series")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_count_sum_min_max(self, registry):
        h = registry.histogram("h")
        for v in (0.002, 0.004, 0.2):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.206)
        rendered = h._render()
        assert rendered["min"] == pytest.approx(0.002)
        assert rendered["max"] == pytest.approx(0.2)

    def test_bucket_counts_are_cumulative(self, registry):
        h = registry.histogram("h", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        buckets = h.bucket_counts()
        assert buckets == {"0.01": 1, "0.1": 2, "1.0": 3, "+Inf": 4}

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 0.1))

    def test_timer_context_manager_observes(self, registry):
        h = registry.histogram("h")
        with h.time():
            pass
        assert h.count == 1
        assert h.sum >= 0

    def test_default_buckets_are_timing_scale(self, registry):
        h = registry.histogram("h")
        assert h.buckets == DEFAULT_TIMING_BUCKETS


class TestDisabled:
    def test_disabled_registry_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("c")
        g = registry.gauge("g")
        h = registry.histogram("h")
        c.inc(10)
        g.set(5)
        h.observe(1.0)
        assert c.value == 0
        assert g.value == 0
        assert h.count == 0

    def test_reenable_resumes_cached_handles(self, registry):
        c = registry.counter("c")
        registry.disable()
        c.inc()
        assert c.value == 0
        registry.enable()
        c.inc()
        assert c.value == 1

    def test_toggle_covers_all_series_without_rebinding(self, registry):
        a = registry.counter("a")
        b = registry.histogram("b")
        registry.disable()
        a.inc()
        b.observe(1)
        assert a.value == 0 and b.count == 0


class TestLifecycle:
    def test_reset_zeroes_in_place(self, registry):
        c = registry.counter("c")
        h = registry.histogram("h")
        c.inc(3)
        h.observe(0.5)
        registry.reset()
        assert c.value == 0
        assert h.count == 0
        # the handle is still the registered series
        c.inc()
        assert registry.snapshot()["counters"]["c"] == 1

    def test_snapshot_shape(self, registry):
        registry.counter("c", kind="x").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.02)
        snap = registry.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] == {"c{kind=x}": 2}
        assert snap["gauges"] == {"g": 7}
        h = snap["histograms"]["h"]
        assert h["count"] == 1
        assert "+Inf" in h["buckets"]

    def test_snapshot_round_trips_through_exporters(self, registry):
        registry.counter("c", kind="x").inc(2)
        registry.histogram("h").observe(0.02)
        snap = registry.snapshot()
        assert json.loads(export.render_json(snap)) == snap
        lines = [json.loads(line) for line in export.render_jsonl(snap).splitlines()]
        assert {row["type"] for row in lines} == {"counter", "histogram"}
        counter_row = next(row for row in lines if row["type"] == "counter")
        assert counter_row == {
            "type": "counter", "name": "c", "labels": {"kind": "x"}, "value": 2,
        }
        assert "c{kind=x}" in export.render_text(snap)


class TestTimed:
    def test_timed_decorator_observes_each_call(self, registry):
        @registry.timed("fn.seconds")
        def fn(x):
            return x * 2

        assert fn(21) == 42
        assert fn(1) == 2
        series = registry.histogram("fn.seconds")
        assert series.count == 2

    def test_timed_observes_even_on_exception(self, registry):
        @registry.timed("fn.seconds")
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            boom()
        assert registry.histogram("fn.seconds").count == 1

    def test_default_registry_timed(self):
        calls = metrics.histogram("test.obs.timed.seconds").count

        @metrics.timed("test.obs.timed.seconds")
        def fn():
            return 1

        fn()
        assert metrics.histogram("test.obs.timed.seconds").count == calls + 1


class TestThreadSafety:
    def test_counter_hammer(self, registry):
        c = registry.counter("hammer")
        threads_n, per_thread = 8, 5_000

        def work():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == threads_n * per_thread

    def test_histogram_hammer(self, registry):
        h = registry.histogram("hammer", buckets=(0.5, 1.0))
        threads_n, per_thread = 8, 2_000

        def work():
            for i in range(per_thread):
                h.observe((i % 3) * 0.4)

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == threads_n * per_thread
        assert h.bucket_counts()["+Inf"] == threads_n * per_thread

    def test_concurrent_series_creation_yields_one_series(self, registry):
        results = []

        def work():
            results.append(registry.counter("shared"))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is results[0] for c in results)


class TestDefaultRegistry:
    def test_module_helpers_hit_the_default_registry(self):
        registry = metrics.get_default_registry()
        before = metrics.counter("test.obs.default.count").value
        metrics.counter("test.obs.default.count").inc()
        assert registry.counter("test.obs.default.count").value == before + 1

    def test_set_enabled_round_trip(self):
        assert metrics.is_enabled()
        metrics.set_enabled(False)
        try:
            before = metrics.counter("test.obs.toggle").value
            metrics.counter("test.obs.toggle").inc()
            assert metrics.counter("test.obs.toggle").value == before
        finally:
            metrics.set_enabled(True)

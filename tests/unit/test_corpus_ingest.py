"""Unit tests for repro.corpus.ingest — the raw OCR-text parser."""

import pytest

from repro.corpus.ingest import parse_index_text


SAMPLE = """
AUTHOR INDEX
AUTHOR ARTICLE W. VA. L. REV.
Abdalla, Tarek F.* Allegheny-Pittsburgh Coal Co. v. County 91:973 (1989)
Commission of Webster County
Abrams, Dennis M. The Federal Surface Mining Control and 84:1069 (1982)
Reclamation Act of 1977-First to Sur-
vive a Direct Tenth Amendment Attack
1366 [Vol. 95:1365
2
West Virginia Law Review, Vol. 95, Iss. 5 [1993], Art. 5
https://researchrepository.wvu.edu/wvlr/vol95/iss5/5
Arceneaux, Webster J., III Potential Criminal Liability in the Coal 95:691 (1993)
Fields Under the Clean Water Act: A
Defense Perspective
1993] 1367
Byrd, Hon. Robert C. The Future of the Coal Industry and the 90:727 (1988)
Role of the Legal Profession
Galloway, L. Thomas A Miner's Bill of Rights 80:397 (1978)
Published by The Research Repository @ WVU, 1993
"""


class TestFurniture:
    def test_furniture_dropped(self):
        report = parse_index_text(SAMPLE)
        assert report.furniture_lines >= 6
        assert report.record_count == 5

    @pytest.mark.parametrize("line", [
        "1365",
        "1993] 1367",
        "1366 [Vol. 95:1365",
        "WEST VIRGINIA LAW REVIEW",
        "AUTHOR ARTICLE W. VA. L. REV.",
        "et al.: Author Index",
        "Published by The Research Repository @ WVU, 1993",
        "https://researchrepository.wvu.edu/wvlr/vol95/iss5/5",
        "1. Student material is indicated with an asterisk (*).",
    ])
    def test_furniture_patterns(self, line):
        report = parse_index_text(line)
        assert report.record_count == 0


class TestEntries:
    @pytest.fixture(scope="class")
    def report(self):
        return parse_index_text(SAMPLE)

    def test_student_marker(self, report):
        assert report.records[0].is_student_work is True
        assert report.records[1].is_student_work is False

    def test_author_parsing(self, report):
        assert report.records[0].authors[0].surname == "Abdalla"
        assert report.records[0].authors[0].given == "Tarek F."

    def test_suffix_parsed(self, report):
        arceneaux = report.records[2].authors[0]
        assert arceneaux.suffix == "III"

    def test_honorific_parsed(self, report):
        byrd = report.records[3].authors[0]
        assert byrd.honorific == "Hon."
        assert byrd.given == "Robert C."

    def test_initial_then_given(self, report):
        galloway = report.records[4].authors[0]
        assert galloway.given == "L. Thomas"

    def test_citation_extracted(self, report):
        assert report.records[0].citation.columnar() == "91:973 (1989)"

    def test_title_continuation_joined(self, report):
        assert report.records[0].title == (
            "Allegheny-Pittsburgh Coal Co. v. County Commission of Webster County"
        )

    def test_hyphen_wrap_repaired(self, report):
        assert "First to Survive" in report.records[1].title

    def test_compound_hyphen_preserved(self, report):
        assert "Allegheny-Pittsburgh" in report.records[0].title

    def test_record_ids_sequential(self, report):
        assert [r.record_id for r in report.records] == [1, 2, 3, 4, 5]

    def test_first_record_id_option(self):
        report = parse_index_text(
            "Areen, Judith Regulating Human Gene Therapy 88:153 (1985)",
            first_record_id=100,
        )
        assert report.records[0].record_id == 100

    def test_entry_line_counter(self, report):
        assert report.entry_lines >= 10


class TestWarnings:
    def test_orphan_continuation_warned(self):
        report = parse_index_text("orphan continuation without citation\n")
        assert report.record_count == 0
        assert any("orphan" in w for w in report.warnings)

    def test_ambiguous_split_warned(self):
        report = parse_index_text(
            "Areen, Judith Regulating Human Gene Therapy 88:153 (1985)"
        )
        # "Judith Regulating" is inherently ambiguous: parsed, but flagged.
        assert report.record_count == 1
        assert report.records[0].authors[0].given == "Judith"
        assert any("uncertain" in w for w in report.warnings)

    def test_no_comma_line_warned(self):
        report = parse_index_text("No Author Here Just Title Words 88:153 (1985)")
        assert report.record_count == 0
        assert any("author" in w.lower() for w in report.warnings)

    def test_empty_input(self):
        report = parse_index_text("")
        assert report.record_count == 0
        assert report.warnings == []


CITATION_LAST = """
Adams, Nora Q. Coalbed Methane After
Unlocking the Fire 96:101 (1993)
Brennan, Luis F. The UCC in the
Nineties: Article 2 Revisited
96:1 (1993)
Chen, Grace H.* Water Quality
Standards in the Coal Fields
96:155 (1993)
"""


class TestCitationLastLayout:
    def test_explicit_layout(self):
        report = parse_index_text(CITATION_LAST, layout="citation-last")
        assert report.record_count == 3
        assert report.records[0].title == "Coalbed Methane After Unlocking the Fire"

    def test_auto_detects_citation_last(self):
        report = parse_index_text(CITATION_LAST)
        assert report.record_count == 3
        assert [r.authors[0].surname for r in report.records] == [
            "Adams", "Brennan", "Chen",
        ]

    def test_auto_detects_citation_first(self):
        report = parse_index_text(SAMPLE)
        assert report.record_count == 5

    def test_student_marker_survives(self):
        report = parse_index_text(CITATION_LAST)
        assert report.records[2].is_student_work is True

    def test_citation_alone_on_line(self):
        report = parse_index_text(
            "Zed, Amy Q. A Very Long Title That Wraps\n96:400 (1993)\n",
            layout="citation-last",
        )
        assert report.record_count == 1
        assert report.records[0].citation.page == 400

    def test_trailing_lines_warned(self):
        report = parse_index_text(
            "Zed, Amy Q. Dangling Entry With No\nCitation Anywhere\n",
            layout="citation-last",
        )
        assert report.record_count == 0
        assert any("trailing" in w for w in report.warnings)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            parse_index_text("x", layout="sideways")

    def test_furniture_dropped_in_both_layouts(self):
        text = "1366 [Vol. 95:1365\n" + CITATION_LAST
        report = parse_index_text(text, layout="citation-last")
        assert report.record_count == 3
        assert report.furniture_lines == 1


class TestRoundTripAgainstRenderer:
    def test_rendered_index_reingests(self, sample_records):
        """text-render an index, then parse it back: same rows."""
        from repro.core.builder import build_index

        index = build_index(sample_records)
        text = index.render("text", paginated=False)
        report = parse_index_text(text)
        assert report.record_count == len(index)
        got = {(r.authors[0].surname, r.citation.columnar()) for r in report.records}
        want = {(e.author.surname, e.citation.columnar()) for e in index}
        assert got == want

"""Unit tests for the planner's LRU plan cache and its epoch invalidation."""

import pytest

from repro.obs import metrics
from repro.query.executor import QueryEngine, QueryProfile
from repro.query.parser import parse_query
from repro.query.planner import PlanCache, plan_query
from repro.storage.store import IndexKind, RecordStore


@pytest.fixture()
def populated(simple_schema):
    store = RecordStore(simple_schema)
    store.put_many(
        [{"id": i, "name": f"n{i % 5}", "year": 1990 + i % 20} for i in range(100)]
    )
    store.create_index("name", IndexKind.HASH)
    store.create_index("year", IndexKind.BTREE)
    return store


class TestPlanCache:
    def test_hit_returns_identical_plan(self, populated):
        cache = PlanCache()
        query = parse_query('name = "n2" AND year >= 2000')
        plan1, cached1 = cache.get_or_plan(query, populated)
        plan2, cached2 = cache.get_or_plan(query, populated)
        assert not cached1 and cached2
        assert plan1 is plan2
        assert plan1.explain() == plan_query(query, populated).explain()

    def test_hit_and_miss_counters(self, populated):
        cache = PlanCache()
        query = parse_query("year >= 2000")
        metrics.reset()
        cache.get_or_plan(query, populated)
        cache.get_or_plan(query, populated)
        cache.get_or_plan(query, populated)
        counters = metrics.snapshot()["counters"]
        assert counters["query.planner.cache.miss"] == 1
        assert counters["query.planner.cache.hit"] == 2

    def test_create_index_invalidates(self, populated):
        cache = PlanCache()
        query = parse_query("id >= 50")
        plan1, _ = cache.get_or_plan(query, populated)
        assert plan1.access.op == "seq-scan"
        populated.create_index("id", IndexKind.BTREE)
        plan2, cached = cache.get_or_plan(query, populated)
        assert not cached
        assert plan2.access.op == "index-range"

    def test_drop_index_invalidates(self, populated):
        cache = PlanCache()
        query = parse_query("year >= 2000")
        plan1, _ = cache.get_or_plan(query, populated)
        assert plan1.access.op == "index-range"
        populated.drop_index("year")
        plan2, cached = cache.get_or_plan(query, populated)
        assert not cached
        assert plan2.access.op == "seq-scan"

    def test_put_many_invalidates(self, populated):
        cache = PlanCache()
        query = parse_query('name = "n1"')
        cache.get_or_plan(query, populated)
        populated.put_many([{"id": 1000, "name": "n1", "year": 2001}])
        _, cached = cache.get_or_plan(query, populated)
        assert not cached

    def test_per_record_writes_do_not_invalidate(self, populated):
        cache = PlanCache()
        query = parse_query('name = "n1"')
        cache.get_or_plan(query, populated)
        populated.insert({"id": 1000, "name": "n1", "year": 2001})
        _, cached = cache.get_or_plan(query, populated)
        assert cached

    def test_lru_eviction(self, populated):
        cache = PlanCache(maxsize=2)
        q1 = parse_query("year >= 1991")
        q2 = parse_query("year >= 1992")
        q3 = parse_query("year >= 1993")
        cache.get_or_plan(q1, populated)
        cache.get_or_plan(q2, populated)
        cache.get_or_plan(q3, populated)  # evicts q1
        assert len(cache) == 2
        _, cached = cache.get_or_plan(q1, populated)
        assert not cached

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_clear(self, populated):
        cache = PlanCache()
        query = parse_query("year >= 2000")
        cache.get_or_plan(query, populated)
        cache.clear()
        assert len(cache) == 0
        _, cached = cache.get_or_plan(query, populated)
        assert not cached


class TestEngineIntegration:
    def test_repeat_execution_hits_cache(self, populated):
        engine = QueryEngine(populated)
        metrics.reset()
        r1 = engine.execute('name = "n2" AND year >= 2000')
        r2 = engine.execute('name = "n2" AND year >= 2000')
        assert r1 == r2
        counters = metrics.snapshot()["counters"]
        assert counters["query.planner.cache.hit"] == 1
        # The rule search ran only once despite two executions.
        assert counters["query.plans.considered"] == 1

    def test_profile_reports_plan_cached(self, populated):
        engine = QueryEngine(populated)
        cold = engine.execute("year >= 2000", profile=True)
        warm = engine.execute("year >= 2000", profile=True)
        assert isinstance(cold, QueryProfile)
        assert not cold.plan_cached
        assert warm.plan_cached
        assert warm.to_dict()["plan_cached"] is True
        assert "(plan: cached)" in warm.render()

    def test_explain_uses_cache(self, populated):
        engine = QueryEngine(populated)
        metrics.reset()
        text1 = engine.explain("year >= 2000")
        text2 = engine.explain("year >= 2000")
        assert text1 == text2
        assert metrics.snapshot()["counters"]["query.planner.cache.hit"] == 1

    def test_count_and_paged_share_the_cache(self, populated):
        engine = QueryEngine(populated)
        metrics.reset()
        engine.count("year >= 2000")
        engine.count("year >= 2000")
        engine.execute_paged("year >= 2000", page_size=10)
        counters = metrics.snapshot()["counters"]
        # count strips presentation clauses, so all three share one key.
        assert counters["query.planner.cache.hit"] == 2

    def test_results_stay_correct_across_invalidation(self, populated):
        engine = QueryEngine(populated)
        before = engine.execute('name = "n1"')
        populated.put_many([{"id": 1000, "name": "n1", "year": 2001}])
        after = engine.execute('name = "n1"')
        assert len(after) == len(before) + 1

    def test_membership_values_are_cacheable(self, populated):
        engine = QueryEngine(populated)
        metrics.reset()
        engine.execute('name IN ("n1", "n2")')
        engine.execute('name IN ("n1", "n2")')
        assert metrics.snapshot()["counters"]["query.planner.cache.hit"] == 1

"""Unit tests for the batched write path: RecordStore.put_many and friends."""

import json

import pytest

from repro.errors import DuplicateKeyError, StorageError, ValidationError
from repro.obs import metrics
from repro.storage.store import IndexKind, RecordStore


def _records(n, start=0):
    return [
        {"id": i, "name": f"n{i % 7}", "year": 1980 + i % 20, "tags": [f"t{i % 3}"]}
        for i in range(start, start + n)
    ]


@pytest.fixture()
def indexed_store(simple_schema):
    store = RecordStore(simple_schema)
    store.create_index("name", IndexKind.HASH)
    store.create_index("year", IndexKind.BTREE)
    store.create_index("tags", IndexKind.BTREE)
    return store


class TestPutMany:
    def test_returns_count_and_lands_everywhere(self, indexed_store):
        assert indexed_store.put_many(_records(100)) == 100
        assert len(indexed_store) == 100
        assert indexed_store.get(42)["name"] == "n0"
        assert len(indexed_store.find_by("name", "n3")) == len(
            [i for i in range(100) if i % 7 == 3]
        )
        assert len(indexed_store.range_by("year", 1990, 1995)) == len(
            [i for i in range(100) if 1990 <= 1980 + i % 20 <= 1995]
        )

    def test_equivalent_to_per_record_inserts(self, simple_schema):
        batched = RecordStore(simple_schema)
        batched.create_index("year")
        batched.put_many(_records(60))
        serial = RecordStore(simple_schema)
        serial.create_index("year")
        for record in _records(60):
            serial.insert(record)
        assert list(batched.scan()) == list(serial.scan())
        assert batched.range_by("year", 1985, 1999) == serial.range_by(
            "year", 1985, 1999
        )

    def test_empty_batch_is_a_noop(self, indexed_store):
        metrics.reset()
        assert indexed_store.put_many([]) == 0
        counters = metrics.snapshot()["counters"]
        assert counters.get("storage.store.put_many.count", 0) == 0

    def test_duplicate_in_store_raises_before_anything_lands(self, indexed_store):
        indexed_store.insert(_records(1)[0])
        with pytest.raises(DuplicateKeyError):
            indexed_store.put_many(_records(10))
        assert len(indexed_store) == 1

    def test_duplicate_within_batch_raises(self, indexed_store):
        records = _records(5) + _records(1, start=2)
        with pytest.raises(DuplicateKeyError):
            indexed_store.put_many(records)
        assert len(indexed_store) == 0

    def test_replace_mode_upserts(self, indexed_store):
        indexed_store.put_many(_records(10))
        replacement = {"id": 3, "name": "zz", "year": 2020, "tags": ["q"]}
        indexed_store.put_many([replacement], on_conflict="replace")
        assert indexed_store.get(3)["name"] == "zz"
        assert not any(r["id"] == 3 for r in indexed_store.find_by("name", "n3"))
        assert any(r["id"] == 3 for r in indexed_store.find_by("tags", "q"))

    def test_replace_mode_last_wins_within_batch(self, indexed_store):
        indexed_store.put_many(
            [
                {"id": 1, "name": "first", "year": 2000},
                {"id": 1, "name": "second", "year": 2001},
            ],
            on_conflict="replace",
        )
        assert indexed_store.get(1)["name"] == "second"
        assert len(indexed_store) == 1
        assert indexed_store.find_by("name", "first") == []

    def test_unknown_conflict_mode_rejected(self, indexed_store):
        with pytest.raises(StorageError):
            indexed_store.put_many(_records(1), on_conflict="ignore")

    def test_validation_failure_aborts_whole_batch(self, indexed_store):
        records = _records(5)
        records[3] = {"id": 100, "name": 42, "year": 2000}  # wrong type
        with pytest.raises(ValidationError):
            indexed_store.put_many(records)
        assert len(indexed_store) == 0

    def test_bumps_index_epoch(self, indexed_store):
        before = indexed_store.index_epoch
        indexed_store.put_many(_records(3))
        assert indexed_store.index_epoch == before + 1

    def test_accepts_generator_input(self, indexed_store):
        assert indexed_store.put_many(iter(_records(25))) == 25


class TestPutManyDurability:
    def test_survives_reopen(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            store.create_index("year")
            store.put_many(_records(200), sync=True)
        with RecordStore(simple_schema, tmp_path / "db") as store:
            assert len(store) == 200
            assert store.get(150)["year"] == 1980 + 150 % 20

    def test_one_fsync_per_batch(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            metrics.reset()
            store.put_many(_records(500), sync=True)
            counters = metrics.snapshot()["counters"]
            assert counters["storage.wal.fsync.count"] == 1
            assert counters["storage.wal.batch.count"] == 1
            assert counters["storage.wal.batch.entries"] == 500

    def test_sync_every_bounds_the_commit_interval(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            metrics.reset()
            store.put_many(_records(250), sync=True, sync_every=100)
            counters = metrics.snapshot()["counters"]
            # 100 + 100 + 50: two full intervals plus the tail.
            assert counters["storage.wal.fsync.count"] == 3

    def test_recovery_matches_per_record_writes(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "batched") as store:
            store.create_index("year")
            store.put_many(_records(80))
        with RecordStore(simple_schema, tmp_path / "serial") as store:
            store.create_index("year")
            for record in _records(80):
                store.insert(record)
        with RecordStore(simple_schema, tmp_path / "batched") as a, RecordStore(
            simple_schema, tmp_path / "serial"
        ) as b:
            assert list(a.scan()) == list(b.scan())
            assert a.range_by("year", 1985, 1999) == b.range_by("year", 1985, 1999)

    def test_put_many_metrics(self, indexed_store):
        metrics.reset()
        indexed_store.put_many(_records(40))
        counters = metrics.snapshot()["counters"]
        assert counters["storage.store.put_many.count"] == 1
        assert counters["storage.store.put_many.records"] == 40
        assert counters["storage.store.put.count"] == 40


class TestApplyBatchFastPath:
    def test_pure_put_batch_routes_through_batched_applier(self, indexed_store):
        metrics.reset()
        indexed_store.apply_batch(
            [{"op": "put", "record": r} for r in _records(50)]
        )
        assert len(indexed_store) == 50
        counters = metrics.snapshot()["counters"]
        assert counters["storage.store.put.count"] == 50
        # Hash maintenance went through one insert_many, not 50 inserts.
        assert counters["storage.hash.insert.count"] == 50

    def test_mixed_batch_still_correct(self, indexed_store):
        indexed_store.put_many(_records(10))
        indexed_store.apply_batch(
            [
                {"op": "del", "key": 3},
                {"op": "put", "record": {"id": 100, "name": "new", "year": 2022}},
            ]
        )
        assert 3 not in indexed_store
        assert indexed_store.get(100)["name"] == "new"

    def test_apply_batch_bumps_epoch(self, indexed_store):
        before = indexed_store.index_epoch
        indexed_store.apply_batch([{"op": "put", "record": _records(1)[0]}])
        assert indexed_store.index_epoch == before + 1


class TestCreateIndexBulkLoad:
    def test_hash_index_on_populated_store_bulk_loads(self, simple_schema):
        store = RecordStore(simple_schema)
        store.put_many(_records(100))
        metrics.reset()
        store.create_index("name", IndexKind.HASH)
        counters = metrics.snapshot()["counters"]
        assert counters["storage.hash.bulk_loads"] == 1
        assert counters["storage.hash.insert.count"] == 100
        assert len(store.find_by("name", "n0")) == len(
            [i for i in range(100) if i % 7 == 0]
        )

    def test_btree_index_on_populated_store_bulk_loads(self, simple_schema):
        store = RecordStore(simple_schema)
        store.put_many(_records(100))
        metrics.reset()
        store.create_index("year", IndexKind.BTREE)
        counters = metrics.snapshot()["counters"]
        assert counters["storage.btree.bulk_loads"] == 1

    def test_index_lifecycle_bumps_epoch(self, simple_schema):
        store = RecordStore(simple_schema)
        store.put_many(_records(10))
        epoch = store.index_epoch
        store.create_index("year")
        assert store.index_epoch == epoch + 1
        store.drop_index("year")
        assert store.index_epoch == epoch + 2
        store.create_composite_index(("year", "id"))
        assert store.index_epoch == epoch + 3
        # re-declaring an existing index is a no-op and must not churn
        store.create_index("name")
        epoch = store.index_epoch
        store.create_index("name")
        assert store.index_epoch == epoch


class TestSnapshotDurability:
    def test_failed_snapshot_leaves_no_tmp_file(self, simple_schema, tmp_path, monkeypatch):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            store.put_many(_records(5))

            def boom(*args, **kwargs):
                raise OSError("disk full")

            monkeypatch.setattr(json, "dumps", boom)
            with pytest.raises(OSError):
                store.snapshot()
            leftovers = list((tmp_path / "db").glob("*.json.tmp"))
            assert leftovers == []

    def test_snapshot_then_recover(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            store.create_index("year")
            store.put_many(_records(30))
            store.snapshot()
        with RecordStore(simple_schema, tmp_path / "db") as store:
            assert len(store) == 30
            assert store.has_index("year")

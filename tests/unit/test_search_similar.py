"""Unit tests for related-article recommendations."""

import pytest

from repro.core.entry import PublicationRecord
from repro.errors import RecordNotFoundError
from repro.search.similar import RelatedArticles


def rec(i, title, citation="90:1 (1987)"):
    return PublicationRecord.create(i, title, ["A, B."], citation)


@pytest.fixture()
def related():
    return RelatedArticles([
        rec(1, "Black Lung Benefits Reform"),
        rec(2, "The Federal Black Lung Program"),
        rec(3, "Black Lung Litigation Guide"),
        rec(4, "Zoning Ordinance Use Restrictions"),
        rec(5, "Zoning and Land Use Planning"),
    ])


class TestSimilarity:
    def test_self_similarity_is_one(self, related):
        assert related.similarity(1, 1) == pytest.approx(1.0)

    def test_symmetry(self, related):
        assert related.similarity(1, 2) == pytest.approx(related.similarity(2, 1))

    def test_range(self, related):
        for a in range(1, 6):
            for b in range(1, 6):
                assert 0.0 <= related.similarity(a, b) <= 1.0 + 1e-9

    def test_disjoint_vocabulary_zero(self, related):
        assert related.similarity(1, 4) == 0.0

    def test_same_topic_scores_higher(self, related):
        assert related.similarity(1, 2) > related.similarity(1, 5)

    def test_unknown_record(self, related):
        with pytest.raises(RecordNotFoundError):
            related.similarity(1, 999)


class TestRelatedTo:
    def test_excludes_self(self, related):
        assert all(h.record_id != 1 for h in related.related_to(1))

    def test_excludes_zero_similarity(self, related):
        ids = {h.record_id for h in related.related_to(1, k=10)}
        assert 4 not in ids and 5 not in ids

    def test_sorted_descending(self, related):
        hits = related.related_to(1, k=10)
        scores = [h.similarity for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits(self, related):
        assert len(related.related_to(1, k=1)) == 1

    def test_topical_cluster(self, related):
        ids = [h.record_id for h in related.related_to(5, k=2)]
        assert ids == [4]  # the other zoning piece, nothing else

    def test_reference_corpus_black_lung_cluster(self, reference_records):
        rel = RelatedArticles(reference_records)
        anchor = next(
            r for r in reference_records
            if r.title == "The Federal Black Lung Program: A 1983 Primer"
        )
        top = rel.related_to(anchor.record_id, k=3)
        assert all("Lung" in h.title for h in top)


class TestReport:
    def test_report_sections(self, reference_records):
        from repro.report import corpus_report

        report = corpus_report(reference_records, title="WVLR 95 report")
        assert report.startswith("# WVLR 95 report")
        for section in ("## Overview", "## Volumes", "## Authors",
                        "## Topics", "## Editorial issues"):
            assert section in report
        assert "records: **271**" in report
        assert "suspect-duplicate-heading" in report

    def test_report_deterministic(self, reference_records):
        from repro.report import corpus_report

        assert corpus_report(reference_records) == corpus_report(reference_records)

    def test_report_empty_corpus(self):
        from repro.report import corpus_report

        report = corpus_report([])
        assert "records: **0**" in report
        assert "No issues found." in report

    def test_report_stopwords(self, reference_records):
        from repro.report import corpus_report

        with_west = corpus_report(reference_records)
        without = corpus_report(reference_records, keyword_stopwords={"west", "virginia"})
        assert "**west**" in with_west
        assert "**west**" not in without

    def test_cli_report(self, capsys, tmp_path):
        from repro.cli import main

        target = tmp_path / "report.md"
        code = main(["report", "--output", str(target), "--title", "T"])
        assert code == 0
        assert target.read_text().startswith("# T")

"""Unit tests for BTree.from_sorted bulk loading."""

import pytest

from repro.storage.btree import BTree


class TestFromSorted:
    def test_empty(self):
        tree = BTree.from_sorted([], order=4)
        tree.validate()
        assert len(tree) == 0

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 15, 16, 17, 100, 1000])
    @pytest.mark.parametrize("order", [3, 4, 8, 32])
    def test_sizes_and_orders(self, n, order):
        pairs = [(k, [f"v{k}"]) for k in range(n)]
        tree = BTree.from_sorted(pairs, order=order)
        tree.validate()
        assert list(tree.keys()) == list(range(n))
        assert len(tree) == n

    def test_multi_values_preserved(self):
        tree = BTree.from_sorted([(1, ["a", "b"]), (2, ["c"])], order=4)
        assert tree.search(1) == ["a", "b"]
        assert len(tree) == 3

    def test_non_increasing_keys_rejected(self):
        with pytest.raises(ValueError):
            BTree.from_sorted([(2, [1]), (1, [1])], order=4)
        with pytest.raises(ValueError):
            BTree.from_sorted([(1, [1]), (1, [2])], order=4)

    def test_equivalent_to_inserts(self):
        pairs = [(k, [k * 10, k * 10 + 1]) for k in range(200)]
        bulk = BTree.from_sorted(pairs, order=5)
        manual = BTree(order=5)
        for key, values in pairs:
            for value in values:
                manual.insert(key, value)
        assert list(bulk.items()) == list(manual.items())

    def test_mutable_after_bulk_load(self):
        tree = BTree.from_sorted([(k, [k]) for k in range(50)], order=4)
        tree.insert(25, 999)
        assert tree.search(25) == [25, 999]
        assert tree.remove(10)
        tree.validate()

    def test_values_copied_not_aliased(self):
        source = [(1, ["a"])]
        tree = BTree.from_sorted(source, order=4)
        source[0][1].append("mutated")
        assert tree.search(1) == ["a"]

    def test_string_keys(self):
        names = sorted(["abel", "brown", "cole", "mcateer", "zed"])
        tree = BTree.from_sorted([(n, [n]) for n in names], order=3)
        tree.validate()
        assert [k for k, _ in tree.range("b", "n")] == ["brown", "cole", "mcateer"]

    def test_height_near_optimal(self):
        bulk = BTree.from_sorted([(k, [k]) for k in range(10_000)], order=32)
        assert bulk.height <= 3
        bulk.validate()


class TestStoreUsesBulkLoad:
    def test_index_over_existing_data_correct(self, memory_store):
        for i in range(500):
            memory_store.insert({"id": i, "name": f"n{i % 7}", "year": 1900 + i % 50})
        memory_store.create_index("year")
        got = [r["year"] for r in memory_store.range_by("year", 1910, 1915)]
        assert got == sorted(got)
        assert all(1910 <= y <= 1915 for y in got)
        assert len(got) == sum(1 for i in range(500) if 1910 <= 1900 + i % 50 <= 1915)

    def test_mixed_type_keys_rejected_clearly(self, simple_schema):
        # A B-tree cannot hold mutually incomparable keys; the build must
        # fail with a clear StorageError, not a deep TypeError later.
        from repro.errors import StorageError
        from repro.storage.store import RecordStore

        store = RecordStore(simple_schema)
        store.insert({"id": 1, "name": "a", "year": 1990})
        with pytest.raises(StorageError):
            store._bulk_build_btree(
                lambda r: [r["name"], r["year"]],  # str and int: unsortable
                32,
            )

"""Unit tests for the renderers."""

import json

import pytest

from repro.core.builder import build_index
from repro.core.entry import PublicationRecord
from repro.core.pagination import PageLayout
from repro.core.render import available_formats, get_renderer
from repro.core.render.latex import latex_escape


@pytest.fixture()
def index(sample_records):
    return build_index(sample_records)


@pytest.fixture()
def tricky_index():
    return build_index([
        PublicationRecord.create(
            1,
            'Tax & Estates: 50% "Net" Gains_in <Coal> | Law {x}',
            ["O'Brien, A.*"],
            "70:1 (1968)",
        ),
    ])


class TestRegistry:
    def test_available_formats(self):
        assert set(available_formats()) == {
            "text", "markdown", "html", "latex", "json", "csv",
        }

    def test_get_renderer(self):
        assert get_renderer("text").format_name == "text"

    def test_unknown_renderer(self):
        with pytest.raises(KeyError):
            get_renderer("docx")

    @pytest.mark.parametrize("fmt", ["text", "markdown", "html", "latex", "json", "csv"])
    def test_unknown_option_rejected(self, index, fmt):
        with pytest.raises(TypeError):
            index.render(fmt, bogus_option=1)


class TestTextRenderer:
    def test_paginated_has_headers(self, index):
        output = index.render("text", layout=PageLayout(first_page=1365))
        assert "AUTHOR INDEX" in output or "WEST VIRGINIA LAW REVIEW" in output
        assert "1365" in output

    def test_unpaginated_continuous(self, index):
        output = index.render("text", paginated=False)
        assert "AUTHOR" in output.splitlines()[0]
        assert "1365" not in output

    def test_student_asterisk_rendered(self, index):
        output = index.render("text", paginated=False)
        assert "Fox, Fred L., II*" in output

    def test_long_titles_wrap(self, index):
        output = index.render("text", paginated=False)
        assert "The Public Trust Doctrine: A New" in output  # wrapped line 1

    def test_citation_column_right_aligned(self, index):
        output = index.render("text", paginated=False)
        line = next(l for l in output.splitlines() if "69:293" in l)
        assert line.endswith("69:293 (1967)")

    def test_layout_type_checked(self, index):
        with pytest.raises(TypeError):
            index.render("text", layout="big")


class TestMarkdownRenderer:
    def test_table_structure(self, index):
        output = index.render("markdown")
        lines = output.splitlines()
        assert lines[0] == "| Author | Article | Citation |"
        assert lines[1] == "| --- | --- | --- |"

    def test_title_option(self, index):
        output = index.render("markdown", title="Author Index")
        assert output.startswith("# Author Index")

    def test_pipes_escaped(self, tricky_index):
        output = tricky_index.render("markdown")
        assert "\\|" in output

    def test_author_once_per_group(self, sample_records):
        extra = sample_records + [
            PublicationRecord.create(
                99, "Another by McAteer", ["McAteer, J. Davitt"], "86:735 (1984)"
            )
        ]
        output = build_index(extra).render("markdown")
        assert output.count("McAteer, J. Davitt") == 1

    def test_repeat_author_option(self, sample_records):
        extra = sample_records + [
            PublicationRecord.create(
                99, "Another by McAteer", ["McAteer, J. Davitt"], "86:735 (1984)"
            )
        ]
        output = build_index(extra).render("markdown", repeat_author=True)
        assert output.count("McAteer, J. Davitt") == 2


class TestHtmlRenderer:
    def test_document_structure(self, index):
        output = index.render("html")
        assert output.startswith("<!DOCTYPE html>")
        assert "</html>" in output

    def test_escaping(self, tricky_index):
        output = tricky_index.render("html")
        assert "&amp;" in output
        assert "&lt;Coal&gt;" in output
        assert "<Coal>" not in output

    def test_letter_anchors(self, index):
        output = index.render("html")
        assert 'id="letter-F"' in output
        assert 'id="letter-M"' in output

    def test_anchors_disabled(self, index):
        output = index.render("html", letter_anchors=False)
        assert "letter-" not in output

    def test_title_option(self, index):
        output = index.render("html", title="My <Index>")
        assert "<title>My &lt;Index&gt;</title>" in output


class TestLatexRenderer:
    def test_escape_function(self):
        assert latex_escape("a & b") == r"a \& b"
        assert latex_escape("50%") == r"50\%"
        assert latex_escape("x_y") == r"x\_y"
        assert latex_escape("{z}") == r"\{z\}"

    def test_longtable_body(self, index):
        output = index.render("latex")
        assert output.startswith(r"\begin{longtable}")
        assert r"\end{longtable}" in output

    def test_standalone_document(self, index):
        output = index.render("latex", standalone=True)
        assert r"\documentclass{article}" in output
        assert r"\end{document}" in output

    def test_specials_escaped(self, tricky_index):
        output = tricky_index.render("latex")
        assert r"\&" in output
        assert r"\%" in output


class TestCsvRenderer:
    def test_header_and_rows(self, index):
        import csv as csv_module
        import io

        rows = list(csv_module.DictReader(io.StringIO(index.render("csv"))))
        assert len(rows) == len(index)
        assert set(rows[0]) == {"author", "student", "title", "volume", "page", "year"}

    def test_quoting_safe(self, tricky_index):
        import csv as csv_module
        import io

        [row] = list(csv_module.DictReader(io.StringIO(tricky_index.render("csv"))))
        assert row["title"].startswith("Tax & Estates")

    def test_tab_delimiter(self, index):
        output = index.render("csv", delimiter="\t")
        assert "\t" in output.splitlines()[0]

    def test_reingestable_via_export_reader(self, index, tmp_path):
        # The CSV renderer's author column matches export.read_csv's name
        # format; a light reshape round-trips the rows.
        import csv as csv_module
        import io

        rows = list(csv_module.DictReader(io.StringIO(index.render("csv"))))
        assert all(r["volume"].isdigit() for r in rows)


class TestJsonRenderer:
    def test_valid_json_roundtrip(self, index):
        rows = json.loads(index.render("json"))
        assert len(rows) == len(index)
        assert {"author", "student", "title", "volume", "page", "year", "record_id"} <= set(rows[0])

    def test_compact_option(self, index):
        compact = index.render("json", indent=None)
        assert "\n" not in compact.strip()

    def test_order_matches_index(self, index):
        rows = json.loads(index.render("json"))
        assert [r["author"] for r in rows] == [e.author.inverted() for e in index]

    def test_indent_type_checked(self, index):
        with pytest.raises(TypeError):
            index.render("json", indent="two")

"""Query fingerprinting: literal-invariance, shape sensitivity, threading.

The fingerprint is the workload profiler's aggregation key, so its two
contract halves are tested separately: queries differing only in
literals or lexical noise MUST collide, and queries with different
shapes (fields, operators, output clauses) MUST NOT.
"""

import threading

import pytest

from repro.corpus.wvlr import PUBLICATION_SCHEMA, populate_store
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.obs import workload
from repro.query.executor import QueryEngine
from repro.query.fingerprint import (
    FINGERPRINT_HEX_LEN,
    fingerprint_of,
    query_template,
)
from repro.query.parser import parse_query
from repro.storage.store import IndexKind, RecordStore


def fp(text: str) -> str:
    return fingerprint_of(parse_query(text))[0]


class TestLiteralInvariance:
    def test_different_literals_one_fingerprint(self):
        assert fp('surnames:"McAteer" AND year >= 1978') == fp(
            'surnames:"Soler" AND year >= 1990'
        )

    def test_whitespace_is_ignored(self):
        assert fp("year   >=    1978") == fp("year >= 1978")

    def test_limit_value_is_stripped(self):
        assert fp("year >= 1950 LIMIT 5") == fp("year >= 1950 LIMIT 500")

    def test_in_list_length_is_stripped(self):
        assert fp("volume IN (1, 2)") == fp("volume IN (1, 2, 3, 4, 5)")

    def test_conjunct_order_is_normalized(self):
        assert fp('year >= 1978 AND surnames:"McAteer"') == fp(
            'surnames:"McAteer" AND year >= 1978'
        )

    def test_disjunct_order_is_normalized(self):
        assert fp("year = 1978 OR volume = 80") == fp("volume = 80 OR year = 1978")


class TestShapeSensitivity:
    @pytest.mark.parametrize(
        "left,right",
        [
            ("year >= 1978", "year > 1978"),  # operator matters
            ("year >= 1978", "volume >= 1978"),  # field matters
            ("year >= 1978", "year >= 1978 LIMIT 10"),  # LIMIT presence
            ("year >= 1978", "year >= 1978 ORDER BY year"),  # ORDER BY
            ("year >= 1978 ORDER BY year", "year >= 1978 ORDER BY year DESC"),
            ("year >= 1978", "year >= 1978 GROUP BY year"),
            ("year = 1978 AND volume = 80", "year = 1978 OR volume = 80"),
            ('NOT (surnames:"A")', 'surnames:"A"'),
        ],
    )
    def test_distinct_shapes_distinct_fingerprints(self, left, right):
        assert fp(left) != fp(right)

    def test_fingerprint_is_short_stable_hex(self):
        digest, template = fingerprint_of(parse_query("year >= 1978"))
        assert len(digest) == FINGERPRINT_HEX_LEN
        int(digest, 16)  # hex or raise
        assert template == "year >= ?"
        # Stable across calls (memoized and content-addressed).
        assert fingerprint_of(parse_query("year >= 2000"))[0] == digest

    def test_template_renders_output_clauses(self):
        template = query_template(
            parse_query("year >= 1950 GROUP BY year ORDER BY count DESC LIMIT 3")
        )
        assert template == "year >= ? GROUP BY year ORDER BY count DESC LIMIT ?"

    def test_unhashable_literals_still_fingerprint(self):
        # IN-lists carry list literals; the memo is skipped, the
        # fingerprint identical.
        assert fp("volume IN (1, 2)") == fp("volume IN (9, 10, 11)")


class TestConcurrentAttribution:
    """The workload table under concurrent executors: no lost rows, no
    torn aggregates, exactly the expected call totals."""

    def test_concurrent_executors_aggregate_exactly(self):
        records = list(
            SyntheticCorpus(SyntheticCorpusConfig(size=300, seed=7)).records()
        )
        store = RecordStore(PUBLICATION_SCHEMA)
        populate_store(store, records)
        store.create_index("year", IndexKind.BTREE)
        table = workload.get_default_table()
        workload.reset()

        per_thread = 25
        threads = 8
        errors: list[BaseException] = []

        def burst(seed: int) -> None:
            engine = QueryEngine(store)
            try:
                for i in range(per_thread):
                    engine.execute(f"year >= {1900 + (seed * i) % 90}")
                    engine.execute(f"volume = {1 + (seed + i) % 30} LIMIT 5")
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=burst, args=(t + 1,)) for t in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors
        rows = {row["template"]: row for row in table.top(10)}
        assert rows["year >= ?"]["calls"] == per_thread * threads
        assert rows["volume = ? LIMIT ?"]["calls"] == per_thread * threads
        assert rows["year >= ?"]["cpu_ns"] > 0
        assert rows["year >= ?"]["wall_ns"] > 0
        workload.reset()

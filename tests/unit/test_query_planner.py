"""Unit tests for repro.query.planner."""

import pytest

from repro.query.parser import parse_query
from repro.query.planner import FullScan, IndexLookup, IndexRange, plan_query
from repro.storage.store import IndexKind


@pytest.fixture()
def store(memory_store):
    memory_store.create_index("name", IndexKind.HASH)
    memory_store.create_index("year", IndexKind.BTREE)
    return memory_store


def plan(store, text: str):
    return plan_query(parse_query(text), store)


class TestAccessPathChoice:
    def test_equality_on_hash_index(self, store):
        p = plan(store, 'name = "a"')
        assert p.access == IndexLookup(field="name", value="a", kind="hash")
        assert p.residual is None

    def test_match_uses_index(self, store):
        p = plan(store, 'name:"a"')
        assert isinstance(p.access, IndexLookup)

    def test_equality_on_btree_index(self, store):
        p = plan(store, "year = 1980")
        assert p.access == IndexLookup(field="year", value=1980, kind="btree")

    def test_hash_preferred_over_btree_equality(self, store):
        p = plan(store, 'year = 1980 AND name = "a"')
        assert isinstance(p.access, IndexLookup)
        assert p.access.kind == "hash"
        assert p.residual is not None  # the year conjunct remains

    def test_unindexed_equality_scans(self, store):
        p = plan(store, "active = true")
        assert isinstance(p.access, FullScan)
        assert p.residual is not None

    def test_range_on_btree(self, store):
        p = plan(store, "year >= 1980")
        assert p.access == IndexRange(field="year", low=1980, include_low=True)
        assert p.residual is None

    def test_merged_range(self, store):
        p = plan(store, "year >= 1980 AND year < 1990")
        assert p.access == IndexRange(
            field="year", low=1980, high=1990, include_low=True, include_high=False
        )
        assert p.residual is None

    def test_tightest_bounds_win(self, store):
        p = plan(store, "year >= 1980 AND year > 1982 AND year <= 1990 AND year <= 1988")
        assert p.access == IndexRange(
            field="year", low=1982, high=1988, include_low=False, include_high=True
        )

    def test_equal_bound_exclusive_wins(self, store):
        p = plan(store, "year >= 1980 AND year > 1980")
        assert p.access.include_low is False
        assert p.access.low == 1980

    def test_equality_preferred_over_range(self, store):
        p = plan(store, 'name = "a" AND year >= 1980')
        assert isinstance(p.access, IndexLookup)

    def test_or_query_scans(self, store):
        p = plan(store, 'name = "a" OR year = 1980')
        assert isinstance(p.access, FullScan)
        assert p.residual is not None

    def test_not_query_scans(self, store):
        p = plan(store, 'NOT name = "a"')
        assert isinstance(p.access, FullScan)

    def test_select_all_scans(self, store):
        p = plan(store, "*")
        assert isinstance(p.access, FullScan)
        assert p.residual is None

    def test_ne_never_uses_index(self, store):
        p = plan(store, 'name != "a"')
        assert isinstance(p.access, FullScan)

    def test_range_on_unindexed_field_scans(self, store):
        p = plan(store, "score >= 0.5")
        assert isinstance(p.access, FullScan)

    def test_residual_keeps_unserved_conjuncts(self, store):
        p = plan(store, 'name = "a" AND active = true AND score >= 0.1')
        assert isinstance(p.access, IndexLookup)
        residual_text = str(p.residual)
        assert "active" in residual_text and "score" in residual_text
        assert "name" not in residual_text

    def test_clauses_carried(self, store):
        p = plan(store, "year >= 1980 ORDER BY name DESC LIMIT 5")
        assert (p.order_by, p.descending, p.limit) == ("name", True, 5)


class TestExplain:
    def test_explain_lookup(self, store):
        text = plan(store, 'name = "a"').explain()
        assert "INDEX LOOKUP (hash)" in text

    def test_explain_range(self, store):
        text = plan(store, "year > 1980 AND year <= 1990").explain()
        assert "INDEX RANGE (btree)" in text
        assert "(1980" in text and "1990]" in text

    def test_explain_scan_with_filter(self, store):
        text = plan(store, "active = true ORDER BY year LIMIT 2").explain()
        assert text.splitlines()[0] == "FULL SCAN"
        assert "FILTER" in text
        assert "ORDER BY year ASC" in text
        assert "LIMIT 2" in text

"""Unit tests for repro.storage.transactions."""

import pytest

from repro.errors import (
    DuplicateKeyError,
    RecordNotFoundError,
    TransactionError,
)
from repro.storage.store import RecordStore
from repro.storage.wal import WriteAheadLog


def _record(i: int, name: str = "x") -> dict:
    return {"id": i, "name": name, "year": 1990}


class TestCommitRollback:
    def test_commit_applies(self, memory_store):
        with memory_store.transaction() as txn:
            txn.insert(_record(1))
            txn.insert(_record(2))
        assert len(memory_store) == 2

    def test_nothing_visible_before_commit(self, memory_store):
        txn = memory_store.transaction()
        txn.insert(_record(1))
        assert len(memory_store) == 0
        txn.commit()
        assert len(memory_store) == 1

    def test_exception_rolls_back(self, memory_store):
        memory_store.insert(_record(1))
        with pytest.raises(RuntimeError):
            with memory_store.transaction() as txn:
                txn.delete(1)
                txn.insert(_record(2))
                raise RuntimeError("boom")
        assert 1 in memory_store
        assert 2 not in memory_store

    def test_explicit_rollback(self, memory_store):
        txn = memory_store.transaction()
        txn.insert(_record(1))
        txn.rollback()
        assert len(memory_store) == 0

    def test_commit_twice_rejected(self, memory_store):
        txn = memory_store.transaction()
        txn.insert(_record(1))
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_use_after_rollback_rejected(self, memory_store):
        txn = memory_store.transaction()
        txn.rollback()
        with pytest.raises(TransactionError):
            txn.insert(_record(1))

    def test_empty_commit_ok(self, memory_store):
        with memory_store.transaction():
            pass
        assert len(memory_store) == 0

    def test_exit_after_manual_commit_is_noop(self, memory_store):
        with memory_store.transaction() as txn:
            txn.insert(_record(1))
            txn.commit()
        assert len(memory_store) == 1


class TestShadowView:
    def test_reads_own_writes(self, memory_store):
        with memory_store.transaction() as txn:
            txn.insert(_record(1, "a"))
            assert txn.get(1)["name"] == "a"
            assert 1 in txn

    def test_reads_through_to_store(self, memory_store):
        memory_store.insert(_record(1, "a"))
        with memory_store.transaction() as txn:
            assert txn.get(1)["name"] == "a"

    def test_sees_own_deletes(self, memory_store):
        memory_store.insert(_record(1))
        with memory_store.transaction() as txn:
            txn.delete(1)
            assert 1 not in txn
            with pytest.raises(RecordNotFoundError):
                txn.get(1)
        assert 1 not in memory_store

    def test_duplicate_within_txn(self, memory_store):
        with memory_store.transaction() as txn:
            txn.insert(_record(1))
            with pytest.raises(DuplicateKeyError):
                txn.insert(_record(1))

    def test_duplicate_against_store(self, memory_store):
        memory_store.insert(_record(1))
        txn = memory_store.transaction()
        with pytest.raises(DuplicateKeyError):
            txn.insert(_record(1))

    def test_delete_then_insert_same_key(self, memory_store):
        memory_store.insert(_record(1, "old"))
        with memory_store.transaction() as txn:
            txn.delete(1)
            txn.insert(_record(1, "new"))
        assert memory_store.get(1)["name"] == "new"

    def test_update_in_txn(self, memory_store):
        memory_store.insert(_record(1, "a"))
        with memory_store.transaction() as txn:
            txn.update(1, {"name": "b"})
            assert txn.get(1)["name"] == "b"
            assert memory_store.get(1)["name"] == "a"
        assert memory_store.get(1)["name"] == "b"

    def test_update_cannot_change_pk(self, memory_store):
        memory_store.insert(_record(1))
        with pytest.raises(TransactionError):
            with memory_store.transaction() as txn:
                txn.update(1, {"id": 9})

    def test_upsert(self, memory_store):
        memory_store.insert(_record(1, "a"))
        with memory_store.transaction() as txn:
            txn.upsert(_record(1, "b"))
            txn.upsert(_record(2, "c"))
        assert memory_store.get(1)["name"] == "b"
        assert memory_store.get(2)["name"] == "c"

    def test_pending_operations_counter(self, memory_store):
        txn = memory_store.transaction()
        assert txn.pending_operations == 0
        txn.insert(_record(1))
        txn.insert(_record(2))
        assert txn.pending_operations == 2
        txn.rollback()


class TestAtomicity:
    def test_batch_is_single_wal_entry(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            with store.transaction() as txn:
                for i in range(5):
                    txn.insert(_record(i))
        entries = WriteAheadLog.replay_path(tmp_path / "db" / "store.wal")
        assert len(entries) == 1
        assert entries[0].payload["op"] == "batch"
        assert len(entries[0].payload["ops"]) == 5

    def test_batch_replays_atomically(self, simple_schema, tmp_path):
        with RecordStore(simple_schema, tmp_path / "db") as store:
            with store.transaction() as txn:
                txn.insert(_record(1))
                txn.insert(_record(2))
        with RecordStore(simple_schema, tmp_path / "db") as reopened:
            assert sorted(reopened.keys()) == [1, 2]

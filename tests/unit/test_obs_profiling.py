"""Sampling profiler lifecycle, collapsed-stack output, and guardrails."""

import re
import threading
import time

import pytest

from repro.obs.profiling import MAX_HZ, SamplingProfiler


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(500))


def test_lifecycle_and_status():
    profiler = SamplingProfiler(hz=200)
    assert not profiler.running
    stop = threading.Event()
    worker = threading.Thread(target=_spin, args=(stop,), daemon=True)
    worker.start()
    try:
        profiler.start()
        assert profiler.running
        time.sleep(0.25)
        status = profiler.stop()
    finally:
        stop.set()
        worker.join()
    assert not profiler.running
    assert status["samples"] > 0
    assert status["distinct_stacks"] > 0
    assert status["active_seconds"] > 0
    assert status["hz"] == 200


def test_collapsed_output_is_flamegraph_format():
    profiler = SamplingProfiler(hz=300)
    stop = threading.Event()
    worker = threading.Thread(target=_spin, args=(stop,), daemon=True)
    worker.start()
    try:
        with profiler:  # context manager start/stop
            time.sleep(0.2)
    finally:
        stop.set()
        worker.join()
    text = profiler.render_collapsed()
    assert text.endswith("\n")
    for line in text.splitlines():
        # "<mod>:<func>(;<mod>:<func>)* <count>" — what flamegraph.pl eats.
        assert re.fullmatch(r"[^ ]+(;[^ ]+)* \d+", line), line
    # The spinning worker must show up under its own function name.
    assert any("_spin" in stack for stack in profiler.collect())


def test_double_start_raises_and_stop_is_idempotent():
    profiler = SamplingProfiler()
    profiler.start()
    try:
        with pytest.raises(RuntimeError, match="already running"):
            profiler.start()
    finally:
        profiler.stop()
    profiler.stop()  # no-op, no raise


def test_hz_is_clamped():
    assert SamplingProfiler(hz=0).hz == 1
    assert SamplingProfiler(hz=10**9).hz == MAX_HZ


def test_reset_drops_samples_and_restart_reuses():
    profiler = SamplingProfiler(hz=300)
    with profiler:
        time.sleep(0.05)
    assert profiler.status()["samples"] > 0
    profiler.reset()
    status = profiler.status()
    assert status["samples"] == 0
    assert status["distinct_stacks"] == 0
    assert status["active_seconds"] == 0
    # Start/stop again accumulates fresh samples into the same instance.
    with profiler:
        time.sleep(0.05)
    assert profiler.status()["samples"] > 0

"""Background scrubber: CRC sweeps, rate limiting, and the repair loop."""

import pytest

from repro.storage import (
    HEALTHY,
    QUARANTINED,
    ScrubReport,
    Scrubber,
    ShardedStore,
)
from repro.storage.faultfs import FaultFS, InjectedFault, flip_bit_on_disk
from repro.storage.pages import PAGE_SIZE
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.scrub import _TokenBucket

SCHEMA = Schema(
    [Field("id", FieldType.INT), Field("name", FieldType.STRING)],
    primary_key="id",
)


def _rec(i: int) -> dict:
    return {"id": i, "name": f"rec-{i:05d}"}


def _store(tmp_path, *, shards: int = 3, n: int = 300, fmt: str = "paged"):
    store = ShardedStore(
        SCHEMA, tmp_path / "db", shards=shards, data_format=fmt, sync=True
    )
    store.put_many([_rec(i) for i in range(n)])
    store.checkpoint()
    store.put_many([_rec(i) for i in range(n, n + 30)])
    return store


class TestTokenBucket:
    def test_unlimited_never_sleeps(self):
        slept = []
        bucket = _TokenBucket(None, sleep=slept.append)
        bucket.charge(10**9)
        assert slept == []

    def test_charges_beyond_allowance_sleep(self):
        now = [0.0]
        slept = []
        bucket = _TokenBucket(
            1000.0, clock=lambda: now[0], sleep=slept.append
        )
        bucket.charge(1000)  # consumes the initial one-second burst
        bucket.charge(500)  # 500 bytes over: owes 0.5s at 1000 B/s
        assert slept == [pytest.approx(0.5)]

    def test_allowance_refills_with_time(self):
        now = [0.0]
        slept = []
        bucket = _TokenBucket(
            1000.0, clock=lambda: now[0], sleep=slept.append
        )
        bucket.charge(1000)
        now[0] += 2.0  # refill (capped at 1s of budget)
        bucket.charge(1000)
        assert slept == []


class TestScrubClean:
    def test_clean_store_reports_clean(self, tmp_path):
        store = _store(tmp_path)
        scrubber = Scrubber(store, bytes_per_s=None)
        report = scrubber.run_once()
        assert isinstance(report, ScrubReport)
        assert report.clean
        assert report.corrupt_shards == ()
        assert len(report.shards) == 3
        assert all(r.pages > 0 for r in report.shards)  # deep page walk ran
        assert all(r.wal_files > 0 for r in report.shards)
        assert all(store.health.state(i) == HEALTHY for i in range(3))
        store.close()

    def test_last_verdict_round_trip(self, tmp_path):
        store = _store(tmp_path)
        scrubber = Scrubber(store, bytes_per_s=None)
        assert scrubber.last_verdict() is None
        scrubber.run_once()
        verdict = scrubber.last_verdict()
        assert verdict["clean"] is True
        assert verdict["age_s"] >= 0
        assert len(verdict["shards"]) == 3
        store.close()


class TestScrubDetects:
    def _damage_shard_page(self, store, index: int) -> None:
        """Flip a bit in a data page of shard ``index``'s snapshot."""
        snap = store.shard_path(index) / "snapshot.json"
        import json

        pages = store.shard_path(index) / json.loads(snap.read_text())["pages"]
        flip_bit_on_disk(pages, byte_index=1 * PAGE_SIZE + 100, bit=3)

    def test_page_corruption_quarantines_shard(self, tmp_path):
        store = _store(tmp_path)
        self._damage_shard_page(store, 1)
        scrubber = Scrubber(store, bytes_per_s=None)
        report = scrubber.run_once()
        assert not report.clean
        assert report.corrupt_shards == (1,)
        assert store.health.state(1) == QUARANTINED
        assert "[scrub]" in store.health.reason(1)
        # Healthy siblings untouched.
        assert store.health.state(0) == HEALTHY
        assert store.health.state(2) == HEALTHY
        store.close()

    def test_wal_damage_is_detected(self, tmp_path):
        store = _store(tmp_path)
        wal = store.shard_path(2) / "store.wal"
        wal.write_bytes(wal.read_bytes() + b'W1 deadbeef 42 {"op":')
        scrubber = Scrubber(store, bytes_per_s=None)
        report = scrubber.run_once()
        assert 2 in report.corrupt_shards
        assert any("store.wal" in e for e in report.shards[2].errors)
        store.close()

    def test_detect_without_repair_leaves_quarantine(self, tmp_path):
        store = _store(tmp_path)
        self._damage_shard_page(store, 0)
        Scrubber(store, bytes_per_s=None).run_once(repair=False)
        assert store.health.state(0) == QUARANTINED
        store.close()


class TestSelfHealing:
    def test_repair_restores_service_and_data(self, tmp_path):
        # Recoverable damage: the *second* checkpoint publishes its
        # snapshot and then dies before reclaiming the WAL, so when a
        # bit rots in the new pages file the full history (checkpoint 1
        # + sealed segment + active WAL) still exists on disk.
        fs = FaultFS()
        store = ShardedStore(
            SCHEMA, tmp_path / "db", shards=3, data_format="paged", fs=fs
        )
        store.put_many([_rec(i) for i in range(300)])
        store.checkpoint()
        store.put_many([_rec(i) for i in range(300, 330)])
        fs.arm("fail_after_rename", path="shard-01/snapshot.json")
        with pytest.raises(InjectedFault):
            store.checkpoint()
        expected = sorted(_rec(i)["id"] for i in range(330))
        pages = sorted((tmp_path / "db" / "shard-01").glob("store.pages.*"))[-1]
        flip_bit_on_disk(pages, byte_index=1 * PAGE_SIZE + 50, bit=2)
        # Reload the damaged shard state so the scrub sees the disk.
        store.readmit(1, reopen=True)

        scrubber = Scrubber(store, bytes_per_s=None)
        report = scrubber.run_once(repair=True)
        assert report.shards[1].repaired
        assert store.health.state(1) == HEALTHY
        assert sorted(store.keys()) == expected  # zero committed-record loss
        # A second sweep over the repaired store is clean.
        assert scrubber.run_once().clean
        store.close()

    def test_repair_refuses_when_history_is_gone(self, tmp_path):
        # After a *successful* checkpoint the WAL history is reclaimed;
        # if the only copy of the data then rots, a zero-loss repair is
        # impossible and the shard must stay quarantined.
        store = _store(tmp_path)
        import json

        snap = store.shard_path(1) / "snapshot.json"
        pages = store.shard_path(1) / json.loads(snap.read_text())["pages"]
        flip_bit_on_disk(pages, byte_index=1 * PAGE_SIZE + 50, bit=2)
        scrubber = Scrubber(store, bytes_per_s=None)
        report = scrubber.run_once(repair=True)
        assert not report.shards[1].repaired
        assert store.health.state(1) == QUARANTINED
        assert "fsck --repair exited" in store.health.reason(1)
        store.close()

    def test_repair_skips_clean_shards(self, tmp_path):
        store = _store(tmp_path)
        report = Scrubber(store, bytes_per_s=None).run_once(repair=True)
        assert report.clean
        assert not any(r.repaired for r in report.shards)
        store.close()


class TestBackgroundLoop:
    def test_start_stop(self, tmp_path):
        store = _store(tmp_path, n=60)
        scrubber = Scrubber(store, bytes_per_s=None)
        scrubber.start(interval_s=3600.0)
        try:
            # The loop scrubs once immediately on start.
            deadline = 50
            while scrubber.last_verdict() is None and deadline:
                import time

                time.sleep(0.05)
                deadline -= 1
            assert scrubber.last_verdict() is not None
        finally:
            scrubber.stop()
        store.close()

"""Unit tests for the repro.citation package."""

import pytest

from repro.citation.model import Citation, PROCEEDINGS, Reporter, WVLR
from repro.citation.parser import find_citations, parse_citation, try_parse_citation
from repro.citation.validate import (
    check_volume_year_consistency,
    monotone_volume_years,
    validate_citation,
)
from repro.errors import CitationParseError, ValidationError


class TestCitationModel:
    def test_fields(self):
        c = Citation(volume=95, page=691, year=1993)
        assert (c.volume, c.page, c.year) == (95, 691, 1993)

    @pytest.mark.parametrize("kwargs", [
        dict(volume=0, page=1, year=1990),
        dict(volume=-1, page=1, year=1990),
        dict(volume=1, page=0, year=1990),
        dict(volume=1, page=1, year=1500),
        dict(volume=1, page=1, year=2500),
    ])
    def test_invariants(self, kwargs):
        with pytest.raises(ValidationError):
            Citation(**kwargs)

    def test_columnar_format(self):
        assert Citation(volume=95, page=691, year=1993).columnar() == "95:691 (1993)"

    def test_bluebook_format(self):
        c = Citation(volume=95, page=691, year=1993)
        assert c.bluebook(WVLR) == "95 W. Va. L. Rev. 691 (1993)"

    def test_ordering_by_volume_then_page(self):
        a = Citation(volume=69, page=900, year=1967)
        b = Citation(volume=70, page=1, year=1967)
        c = Citation(volume=70, page=2, year=1967)
        assert a < b < c

    def test_equality_and_hash(self):
        a = Citation(volume=1, page=2, year=1990)
        b = Citation(volume=1, page=2, year=1990)
        assert a == b
        assert hash(a) == hash(b)


class TestReporter:
    def test_expected_year(self):
        assert WVLR.expected_year(95) == 1992

    def test_expected_year_unknown(self):
        assert PROCEEDINGS.expected_year(10) is None

    def test_custom_reporter(self):
        r = Reporter(name="X Law Journal", abbreviation="X L.J.", first_volume_year=2000)
        assert r.expected_year(3) == 2002


class TestParser:
    @pytest.mark.parametrize("text,vol,page,year", [
        ("95:691 (1993)", 95, 691, 1993),
        ("69:1 (1966)", 69, 1, 1966),
        ("82:1241 (1980)", 82, 1241, 1980),
        (" 95:691 (1993) ", 95, 691, 1993),
        ("95 : 691 (1993)", 95, 691, 1993),
        ("95:691 (1993", 95, 691, 1993),          # missing close paren
        ("9l:973 (1989)", 91, 973, 1989),          # OCR l for 1
        ("95:69I (1993)", 95, 691, 1993),          # OCR I for 1
        ("9O:1 (199O)", 90, 1, 1990),              # OCR O for 0
    ])
    def test_columnar(self, text, vol, page, year):
        c = parse_citation(text)
        assert (c.volume, c.page, c.year) == (vol, page, year)

    @pytest.mark.parametrize("text,vol,page,year", [
        ("95 W. Va. L. Rev. 691 (1993)", 95, 691, 1993),
        ("82 W. Va. L. Rev. 1241 (1980)", 82, 1241, 1980),
        ("12 Harv. L. Rev. 5 (1899)", 12, 5, 1899),
    ])
    def test_bluebook(self, text, vol, page, year):
        c = parse_citation(text)
        assert (c.volume, c.page, c.year) == (vol, page, year)

    @pytest.mark.parametrize("text", [
        "", "no citation", "95:691", "(1993)", "95:691 1993", ":1 (1990)",
        "95:691 (19)", "vol 95 page 691",
    ])
    def test_rejects(self, text):
        with pytest.raises(CitationParseError):
            parse_citation(text)

    def test_try_parse(self):
        assert try_parse_citation("junk") is None
        assert try_parse_citation("95:691 (1993)") is not None

    def test_implausible_year_is_parse_error(self):
        with pytest.raises(CitationParseError):
            parse_citation("95:691 (1291)")


class TestFindCitations:
    def test_finds_all_in_order(self):
        text = "Smith, A. Title One 95:1 (1992) ignore 95:663 (1993)"
        found = [c.columnar() for c, _ in find_citations(text)]
        assert found == ["95:1 (1992)", "95:663 (1993)"]

    def test_spans_are_correct(self):
        text = "abc 95:1 (1992) xyz"
        [(citation, (start, end))] = find_citations(text)
        assert text[start:end] == "95:1 (1992)"

    def test_none_found(self):
        assert find_citations("Act of 1977 reformed (1980) law") == []


class TestValidate:
    def test_clean_citation(self):
        assert validate_citation(Citation(volume=95, page=691, year=1993), WVLR) == []

    def test_page_range_issue(self):
        issues = validate_citation(Citation(volume=95, page=4999, year=1993))
        assert issues == []
        issues = validate_citation(Citation(volume=95, page=5001, year=1993))
        assert [i.code for i in issues] == ["page-range"]

    def test_volume_year_issue(self):
        issues = validate_citation(Citation(volume=95, page=1, year=1890), WVLR)
        assert "volume-year" in [i.code for i in issues]

    def test_no_reporter_skips_year_check(self):
        assert validate_citation(Citation(volume=95, page=1, year=1890)) == []

    def test_spread_detection(self):
        citations = [
            Citation(volume=70, page=1, year=1967),
            Citation(volume=70, page=2, year=1968),
            Citation(volume=70, page=3, year=1999),  # OCR-damaged year
        ]
        issues = check_volume_year_consistency(citations)
        assert len(issues) == 1
        assert issues[0].citation.year == 1999

    def test_no_spread_when_tight(self):
        citations = [
            Citation(volume=70, page=1, year=1967),
            Citation(volume=70, page=2, year=1968),
        ]
        assert check_volume_year_consistency(citations) == []

    def test_monotone_volume_years(self):
        good = [
            Citation(volume=69, page=1, year=1966),
            Citation(volume=70, page=1, year=1967),
            Citation(volume=71, page=1, year=1969),
        ]
        assert monotone_volume_years(good)

    def test_non_monotone_detected(self):
        bad = [
            Citation(volume=69, page=1, year=1980),
            Citation(volume=70, page=1, year=1967),
        ]
        assert not monotone_volume_years(bad)

    def test_reference_corpus_is_monotone(self, reference_records):
        citations = [r.citation for r in reference_records]
        assert monotone_volume_years(citations)

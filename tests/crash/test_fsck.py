"""Tests for ``repro fsck``: diagnosis, repair policy, exit codes, CLI."""

from __future__ import annotations

import json

from repro.cli import main
from repro.storage import RecordStore, fsck
from repro.storage.faultfs import flip_bit_on_disk
from repro.storage.fsck import FATAL, INFO, REPAIRABLE, REPAIRED
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [Field("id", FieldType.INT), Field("name", FieldType.STRING)],
    primary_key="id",
)


def _rec(i: int) -> dict:
    return {"id": i, "name": f"rec-{i}"}


def _build_store(directory, n: int = 10, *, checkpointed: bool = True):
    with RecordStore(SCHEMA, directory, sync=True) as store:
        store.put_many([_rec(i) for i in range(n)])
        if checkpointed:
            store.checkpoint()
        store.insert(_rec(n))  # one live WAL entry beyond the snapshot


def _severities(report):
    return [issue.severity for issue in report.issues]


class TestHealthyStore:
    def test_fsck_is_a_noop_on_a_healthy_store(self, tmp_path):
        """Regression: fsck must never 'repair' a store that is fine."""
        directory = tmp_path / "db"
        _build_store(directory)
        before = {
            p.name: p.read_bytes() for p in directory.iterdir() if p.is_file()
        }
        report = fsck(directory, repair=True)
        after = {
            p.name: p.read_bytes() for p in directory.iterdir() if p.is_file()
        }
        assert report.exit_code() == 0
        assert report.ok and report.clean
        assert after == before  # byte-identical: repair touched nothing
        assert report.segments_checked >= 1
        assert report.entries_checked == 1  # the one post-checkpoint insert
        assert report.snapshot_records == 10

    def test_no_snapshot_is_informational(self, tmp_path):
        directory = tmp_path / "db"
        _build_store(directory, checkpointed=False)
        report = fsck(directory)
        assert report.exit_code() == 0
        assert _severities(report) == [INFO]
        assert report.snapshot_records is None

    def test_missing_directory_is_fatal(self, tmp_path):
        report = fsck(tmp_path / "nope")
        assert report.exit_code() == 2


class TestRepairs:
    def test_torn_tail_reported_then_repaired(self, tmp_path):
        directory = tmp_path / "db"
        _build_store(directory)
        wal = directory / "store.wal"
        intact = wal.read_bytes()
        wal.write_bytes(intact + b"W1 deadbeef 42 {\"op\":")  # torn frame

        report = fsck(directory)
        assert report.exit_code() == 1
        assert any(
            i.severity == REPAIRABLE and "torn tail" in i.message
            for i in report.issues
        )

        repaired = fsck(directory, repair=True)
        assert repaired.exit_code() == 0
        assert wal.read_bytes() == intact
        assert fsck(directory).exit_code() == 0

    def test_corrupt_tail_repair_reports_data_loss(self, tmp_path):
        directory = tmp_path / "db"
        _build_store(directory)
        wal = directory / "store.wal"
        flip_bit_on_disk(wal, wal.stat().st_size // 2)  # newline-terminated entry

        report = fsck(directory)
        assert report.exit_code() == 1
        repaired = fsck(directory, repair=True)
        assert repaired.exit_code() == 0
        assert any(
            i.severity == REPAIRED and "LOSES acknowledged data" in i.message
            for i in repaired.issues
        )
        # The store opens again; the corrupted entry is gone.
        with RecordStore(SCHEMA, directory) as store:
            assert set(store.keys()) == set(range(10))

    def test_stale_segments_removed(self, tmp_path):
        directory = tmp_path / "db"
        _build_store(directory)
        # Fabricate the crash-between-publish-and-reclaim artifact: a
        # sealed segment at or below the snapshot's wal_seal.
        state = json.loads((directory / "snapshot.json").read_text())
        stale = directory / f"store.wal.{state['wal_seal']:06d}"
        stale.write_bytes(b"")
        report = fsck(directory)
        assert report.exit_code() == 1
        repaired = fsck(directory, repair=True)
        assert repaired.exit_code() == 0
        assert not stale.exists()

    def test_stray_snapshot_tmp_removed(self, tmp_path):
        directory = tmp_path / "db"
        _build_store(directory)
        tmp = directory / "snapshot.json.tmp"
        tmp.write_bytes(b"half a snapshot")
        assert fsck(directory).exit_code() == 1
        assert fsck(directory, repair=True).exit_code() == 0
        assert not tmp.exists()


class TestFatal:
    def test_snapshot_checksum_mismatch(self, tmp_path):
        directory = tmp_path / "db"
        _build_store(directory)
        snapshot = directory / "snapshot.json"
        state = json.loads(snapshot.read_text())
        state["records"][0]["name"] = "tampered"
        snapshot.write_text(json.dumps(state))
        report = fsck(directory, repair=True)
        assert report.exit_code() == 2
        assert any(
            i.severity == FATAL and "checksum mismatch" in i.message
            for i in report.issues
        )

    def test_snapshot_record_count_mismatch(self, tmp_path):
        directory = tmp_path / "db"
        _build_store(directory)
        snapshot = directory / "snapshot.json"
        state = json.loads(snapshot.read_text())
        state["record_count"] = 99
        snapshot.write_text(json.dumps(state))
        assert fsck(directory).exit_code() == 2

    def test_segment_chain_gap(self, tmp_path):
        directory = tmp_path / "db"
        with RecordStore(SCHEMA, directory, sync=True) as store:
            for i in range(3):
                store.insert(_rec(i))
                store._wal.rotate()
        (directory / "store.wal.000002").unlink()  # hole in the chain
        report = fsck(directory)
        assert report.exit_code() == 2
        assert any("chain gap" in i.message for i in report.issues)

    def test_mid_chain_damage_is_not_repaired(self, tmp_path):
        directory = tmp_path / "db"
        with RecordStore(SCHEMA, directory, sync=True) as store:
            for i in range(3):
                store.insert(_rec(i))
                store._wal.rotate()
        first = directory / "store.wal.000001"
        flip_bit_on_disk(first, first.stat().st_size // 2)
        damaged = first.read_bytes()
        report = fsck(directory, repair=True)
        assert report.exit_code() == 2
        assert first.read_bytes() == damaged  # untouched: repair refused


class TestReportSurface:
    def test_to_dict_and_render(self, tmp_path):
        directory = tmp_path / "db"
        _build_store(directory)
        (directory / "snapshot.json.tmp").write_bytes(b"x")
        report = fsck(directory)
        as_dict = report.to_dict()
        assert as_dict["exit_code"] == 1
        assert as_dict["ok"] is False
        assert as_dict["issues"][0]["severity"] == REPAIRABLE
        text = report.render()
        assert "REPAIRABLE" in text and "DAMAGED" in text
        json.dumps(as_dict)  # must be JSON-serialisable as-is


class TestCli:
    def test_fsck_clean_exit_0(self, tmp_path, capsys):
        directory = tmp_path / "db"
        _build_store(directory)
        assert main(["fsck", str(directory)]) == 0
        assert "status: clean" in capsys.readouterr().out

    def test_fsck_repairable_exit_1_then_repair(self, tmp_path, capsys):
        directory = tmp_path / "db"
        _build_store(directory)
        (directory / "store.wal").open("ab").write(b"torn")
        assert main(["fsck", str(directory)]) == 1
        assert main(["fsck", str(directory), "--repair"]) == 0
        assert main(["fsck", str(directory)]) == 0

    def test_fsck_json_output(self, tmp_path, capsys):
        directory = tmp_path / "db"
        _build_store(directory)
        assert main(["fsck", str(directory), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["exit_code"] == 0

    def test_fsck_fatal_exit_2(self, tmp_path):
        assert main(["fsck", str(tmp_path / "nope")]) == 2

    def test_checkpoint_verb_bounds_wal(self, tmp_path, capsys):
        from repro.corpus import PUBLICATION_SCHEMA, load_reference_records, populate_store

        directory = tmp_path / "db"
        with RecordStore(PUBLICATION_SCHEMA, directory) as store:
            populate_store(store, load_reference_records())
        wal_before = (directory / "store.wal").stat().st_size
        assert wal_before > 0
        assert main(["checkpoint", str(directory)]) == 0
        assert "checkpointed" in capsys.readouterr().err
        assert (directory / "store.wal").stat().st_size == 0
        assert not list(directory.glob("store.wal.0*"))
        # The checkpointed directory reopens to the same contents.
        with RecordStore(PUBLICATION_SCHEMA, directory) as store:
            assert len(store) == len(load_reference_records())
        assert main(["fsck", str(directory)]) == 0

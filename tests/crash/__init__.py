"""Crash-safety suite: fault injection, crash matrix, fsck."""

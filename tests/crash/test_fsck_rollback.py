"""fsck snapshot rollback and sharded worst-of aggregation.

The repair policy under test: a damaged snapshot/pages file is only
FATAL when the history needed to rebuild it is gone.  When the full
chain (an older checkpoint or genesis, plus every later WAL segment)
survives, fsck rolls the snapshot back and recovers the tail by WAL
replay — zero committed-record loss.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.storage import RecordStore, ShardedStore, fsck, fsck_sharded
from repro.storage.faultfs import FaultFS, InjectedFault, flip_bit_on_disk
from repro.storage.fsck import FATAL, REPAIRABLE, REPAIRED
from repro.storage.pages import PAGE_SIZE
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [Field("id", FieldType.INT), Field("name", FieldType.STRING)],
    primary_key="id",
)


def _rec(i: int) -> dict:
    return {"id": i, "name": f"rec-{i:05d}"}


def _records(store) -> list[dict]:
    return sorted(store.scan(), key=lambda r: r["id"])


class TestGenesisRollback:
    """First checkpoint published its snapshot but died before reclaim:
    segment 1 onward still exist, so the snapshot is expendable."""

    def _build(self, directory):
        fs = FaultFS()
        store = RecordStore(
            SCHEMA, directory, sync=True, data_format="paged", fs=fs
        )
        store.put_many([_rec(i) for i in range(120)])
        fs.arm("fail_after_rename", path="snapshot.json")
        with pytest.raises(InjectedFault):
            store.checkpoint()
        store.close()

    def test_damaged_first_snapshot_rolls_back_to_genesis(self, tmp_path):
        directory = tmp_path / "db"
        self._build(directory)
        pages = sorted(directory.glob("store.pages.*"))[-1]
        flip_bit_on_disk(pages, byte_index=1 * PAGE_SIZE + 64, bit=1)

        dry = fsck(directory)
        assert dry.exit_code() == 1  # repairable, NOT fatal
        assert any(
            i.severity == REPAIRABLE and "roll back" in i.message
            for i in dry.issues
        )
        assert not any(i.severity == FATAL for i in dry.issues)

        report = fsck(directory, repair=True)
        assert report.exit_code() == 0  # everything demoted to REPAIRED
        assert any(i.severity == REPAIRED for i in report.issues)
        assert not (directory / "snapshot.json").exists()  # back to genesis

        with RecordStore(SCHEMA, directory, data_format="paged") as store:
            assert _records(store) == [_rec(i) for i in range(120)]


class TestCheckpointRollback:
    """Second checkpoint published then died before reclaim: rollback
    target is the *previous* checkpoint, with the tail replayed."""

    def _build(self, directory):
        fs = FaultFS()
        store = RecordStore(
            SCHEMA, directory, sync=True, data_format="paged", fs=fs
        )
        store.put_many([_rec(i) for i in range(120)])
        store.checkpoint()
        store.put_many([_rec(i) for i in range(120, 150)])
        fs.arm("fail_after_rename", path="snapshot.json")
        with pytest.raises(InjectedFault):
            store.checkpoint()
        store.close()

    def test_rolls_back_to_previous_checkpoint(self, tmp_path):
        directory = tmp_path / "db"
        self._build(directory)
        pages = sorted(directory.glob("store.pages.*"))[-1]
        assert pages.name == "store.pages.000002"
        flip_bit_on_disk(pages, byte_index=1 * PAGE_SIZE + 64, bit=1)

        assert fsck(directory).exit_code() == 1
        report = fsck(directory, repair=True)
        assert report.exit_code() == 0

        manifest = json.loads((directory / "snapshot.json").read_text())
        assert manifest["pages"] == "store.pages.000001"
        assert not (directory / "store.pages.000002").exists()

        with RecordStore(SCHEMA, directory, data_format="paged") as store:
            # Checkpoint 1 records AND the post-checkpoint tail survive.
            assert _records(store) == [_rec(i) for i in range(150)]

    def test_damaged_manifest_json_rolls_back_too(self, tmp_path):
        directory = tmp_path / "db"
        self._build(directory)
        snap = directory / "snapshot.json"
        snap.write_bytes(snap.read_bytes()[:-20] + b"garbage-not-json")

        report = fsck(directory, repair=True)
        assert report.exit_code() == 0
        with RecordStore(SCHEMA, directory, data_format="paged") as store:
            assert len(store) == 150


class TestRollbackRefusal:
    def test_fatal_when_history_was_reclaimed(self, tmp_path):
        # A successful checkpoint reclaims the WAL; the pages file is
        # then the only copy.  Damage must stay FATAL — a rollback here
        # would silently lose committed records.
        directory = tmp_path / "db"
        with RecordStore(
            SCHEMA, directory, sync=True, data_format="paged"
        ) as store:
            store.put_many([_rec(i) for i in range(120)])
            store.checkpoint()
        pages = sorted(directory.glob("store.pages.*"))[-1]
        flip_bit_on_disk(pages, byte_index=1 * PAGE_SIZE + 64, bit=1)

        assert fsck(directory).exit_code() == 2
        report = fsck(directory, repair=True)
        assert report.exit_code() == 2
        assert any(i.severity == FATAL for i in report.issues)


class TestShardedAggregation:
    """fsck_sharded under mixed shard states: worst-of fold, full blast
    radius, per-shard detail in ``--json``."""

    def _mixed_root(self, tmp_path):
        root = tmp_path / "db"
        store = ShardedStore(
            SCHEMA, root, shards=3, sync=True, data_format="paged"
        )
        store.put_many([_rec(i) for i in range(240)])
        store.checkpoint()
        store.put_many([_rec(i) for i in range(240, 270)])
        store.close()
        # Shard 0: clean.  Shard 1: repairable torn WAL tail.  Shard 2:
        # fatal page rot (its WAL history was reclaimed by checkpoint).
        wal = root / "shard-01" / "store.wal"
        wal.write_bytes(wal.read_bytes() + b'W1 deadbeef 42 {"op":')
        pages = sorted((root / "shard-02").glob("store.pages.*"))[-1]
        flip_bit_on_disk(pages, byte_index=1 * PAGE_SIZE + 64, bit=1)
        return root

    def test_exit_code_is_worst_of(self, tmp_path):
        root = self._mixed_root(tmp_path)
        report = fsck_sharded(root)
        assert report.exit_code() == 2
        assert not report.ok
        codes = [r.exit_code() for r in report.shard_reports]
        assert codes == [0, 1, 2]

    def test_fatal_shard_does_not_stop_the_walk(self, tmp_path):
        root = self._mixed_root(tmp_path)
        report = fsck_sharded(root)
        # All three shards were visited even though one is fatal.
        assert len(report.shard_reports) == 3

    def test_repair_fixes_what_it_can(self, tmp_path):
        root = self._mixed_root(tmp_path)
        report = fsck_sharded(root, repair=True)
        codes = [r.exit_code() for r in report.shard_reports]
        assert codes == [0, 0, 2]  # torn tail repaired; rot stays fatal
        assert report.exit_code() == 2

    def test_cli_json_carries_per_shard_detail(self, tmp_path, capsys):
        root = self._mixed_root(tmp_path)
        code = main(["fsck", str(root), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 2
        assert doc["sharded"] is True
        assert doc["exit_code"] == 2
        shards = doc["shards"]
        assert len(shards) == 3
        assert [s["exit_code"] for s in shards] == [0, 1, 2]
        # The damaged shards name their problems.
        assert any("torn tail" in i["message"] for i in shards[1]["issues"])
        assert any(i["severity"] == FATAL for i in shards[2]["issues"])

"""The transient matrix: every failpoint in retry mode, healed end to end.

The crash matrix (:mod:`tests.crash.test_crash_matrix`) proves the store
survives *permanent* faults by recovering after the fact.  This file
proves the complementary contract: a **transient** fault — the same
failpoints armed with ``transient=True``, raising a clean, side-effect-free
:class:`TransientInjectedFault` — never surfaces to the caller at all,
because the default :class:`~repro.resilience.retry.RetryPolicy` wired
into the WAL and checkpoint paths absorbs it.

Pinned acceptance criterion: a WAL append under a fail-twice transient
injection commits successfully with **exactly 3** in
``resilience.retry.attempts`` (the failed first try plus two retries).
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.obs import metrics
from repro.resilience import RetryBudget, RetryPolicy
from repro.storage import (
    FaultFS,
    InjectedFault,
    RecordStore,
    TransientInjectedFault,
    fsck,
)
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [Field("id", FieldType.INT), Field("name", FieldType.STRING)],
    primary_key="id",
)

BASE_KEYS = frozenset(range(10))


def _rec(i: int) -> dict:
    return {"id": i, "name": f"rec-{i}"}


def _baseline(directory) -> None:
    with RecordStore(SCHEMA, directory, sync=True) as store:
        store.put_many([_rec(i) for i in range(10)])
        store.checkpoint()


def _attempts() -> int:
    return metrics.counter("resilience.retry.attempts").value


@dataclass(frozen=True)
class Cell:
    failpoint: str
    op: str       # "put" drives the WAL path, "checkpoint" the snapshot path
    site: str     # path substring the failpoint filters on


def _cells() -> list[Cell]:
    cells = []
    # Every write-path failpoint on the WAL append, plus the fsync one.
    for fp in ("partial_write", "torn_tail", "bit_flip", "fail_before_fsync"):
        cells.append(Cell(failpoint=fp, op="put", site=".wal"))
    # The snapshot write, fsync, and publish-rename sites.
    for fp in ("partial_write", "torn_tail", "fail_before_fsync",
               "fail_after_rename"):
        cells.append(Cell(failpoint=fp, op="checkpoint", site="snapshot"))
    return cells


def _run_op(store: RecordStore, op: str) -> None:
    if op == "put":
        store.insert(_rec(100))
    elif op == "checkpoint":
        store.insert(_rec(100))
        store.checkpoint()
    else:  # pragma: no cover - matrix definition error
        raise AssertionError(op)


@pytest.mark.parametrize("cell", _cells(), ids=lambda c: f"{c.failpoint}-{c.op}")
def test_transient_matrix_heals_with_default_policy(cell: Cell, tmp_path):
    """Two transient fires at every site are absorbed; nothing surfaces."""
    directory = tmp_path / "db"
    _baseline(directory)

    fs = FaultFS()
    fs.arm(cell.failpoint, path=cell.site, transient=True, times=2)
    with RecordStore(SCHEMA, directory, sync=True, fs=fs) as store:
        _run_op(store, cell.op)  # must NOT raise: the policy heals it
        assert fs.fired(cell.failpoint) == 2

    # The operation really committed, and the store is pristine.
    with RecordStore(SCHEMA, directory, sync=True) as recovered:
        assert set(recovered.keys()) == BASE_KEYS | {100}
        assert recovered.get(100) == _rec(100)
    assert fsck(directory).exit_code() == 0


def test_wal_append_fail_twice_commits_with_exactly_three_attempts(tmp_path):
    """ISSUE acceptance: times=2 transient injection → attempts == 3."""
    directory = tmp_path / "db"
    _baseline(directory)

    fs = FaultFS()
    fs.arm("fail_before_fsync", path=".wal", transient=True, times=2)
    with RecordStore(SCHEMA, directory, sync=True, fs=fs) as store:
        before = _attempts()
        store.insert(_rec(100))
        assert _attempts() - before == 3
        assert fs.fired("fail_before_fsync") == 2
        assert store.get(100) == _rec(100)
    assert metrics.counter("resilience.retry.recovered").value >= 1


def test_clean_append_moves_no_retry_metric(tmp_path):
    directory = tmp_path / "db"
    _baseline(directory)
    with RecordStore(SCHEMA, directory, sync=True) as store:
        before = _attempts()
        store.insert(_rec(100))
        assert _attempts() == before


def test_exhausted_attempts_surface_the_transient_fault(tmp_path):
    """More fires than the policy's attempts: the original error escapes."""
    directory = tmp_path / "db"
    _baseline(directory)

    fs = FaultFS()
    # Default policy: max_attempts=4.  Ten fires can never be absorbed —
    # the write-path fault is side-effect free, so no bytes ever land.
    fs.arm("partial_write", path=".wal", transient=True, times=10)
    store = RecordStore(SCHEMA, directory, sync=True, fs=fs)
    exhausted_before = metrics.counter("resilience.retry.exhausted").value
    with pytest.raises(TransientInjectedFault):
        store.insert(_rec(100))
    assert fs.fired("partial_write") == 4  # one per attempt, then gave up
    assert metrics.counter("resilience.retry.exhausted").value == exhausted_before + 1

    # Healing the fault heals the store: the same insert now commits.
    fs.disarm_all()
    store.insert(_rec(100))
    store.close()
    with RecordStore(SCHEMA, directory, sync=True) as recovered:
        assert set(recovered.keys()) == BASE_KEYS | {100}
    assert fsck(directory).exit_code() == 0


def test_empty_retry_budget_surfaces_the_original_error(tmp_path):
    """Budget exhaustion degrades to fail-fast with the first error."""
    directory = tmp_path / "db"
    _baseline(directory)

    policy = RetryPolicy(
        max_attempts=4,
        base_delay_s=0.0,
        max_delay_s=0.0,
        budget=RetryBudget(capacity=1.0, refill_per_s=1e-9),
    )
    fs = FaultFS()
    fs.arm("partial_write", path=".wal", transient=True, times=10)
    store = RecordStore(SCHEMA, directory, sync=True, fs=fs, retry=policy)
    denied_before = metrics.counter("resilience.retry.denied").value
    with pytest.raises(TransientInjectedFault):
        store.insert(_rec(100))
    # First attempt failed, the single token bought one retry, the next
    # retry was denied: two fires total, one denial.
    assert fs.fired("partial_write") == 2
    assert metrics.counter("resilience.retry.denied").value == denied_before + 1

    # The failed insert left no partial state behind.
    del store
    fsck(directory, repair=True)
    with RecordStore(SCHEMA, directory, sync=True) as recovered:
        assert set(recovered.keys()) == BASE_KEYS
    assert fsck(directory).exit_code() == 0


def test_non_transient_faults_keep_their_crash_semantics(tmp_path):
    """``transient=False`` (the default) still raises a permanent
    ``InjectedFault`` on the first try — the retry layer must not touch it."""
    directory = tmp_path / "db"
    _baseline(directory)

    fs = FaultFS()
    fs.arm("partial_write", path=".wal")
    store = RecordStore(SCHEMA, directory, sync=True, fs=fs)
    before = _attempts()
    with pytest.raises(InjectedFault) as exc_info:
        store.insert(_rec(100))
    assert not isinstance(exc_info.value, TransientInjectedFault)
    assert fs.fired("partial_write") == 1   # exactly one try, no retries
    assert _attempts() == before            # no retry metric moved

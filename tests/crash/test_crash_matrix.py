"""The crash matrix: every failpoint × every durability-relevant operation.

Each cell follows the same script:

1. **Baseline** — a store with records 0..9, checkpointed (snapshot on
   disk, WAL empty), reopened with a :class:`FaultFS`.
2. **Crash** — arm one failpoint at the operation's fault site, run the
   operation, catch the injected failure.  The store object is then
   *abandoned* — never closed — simulating a process that died there.
3. **Recover** — ``fsck --repair`` the directory, reopen it with a clean
   filesystem, and assert the recovered keys are exactly the committed
   prefix the crash semantics promise.  A final fsck must come back
   clean (exit code 0).

The point of the matrix is the *expected keys* column: it pins down, per
crash point, precisely which acknowledged writes survive — and that
nothing unacknowledged ever does.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import StorageError
from repro.storage import FaultFS, InjectedFault, RecordStore, fsck
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.wal import _frame

SCHEMA = Schema(
    [Field("id", FieldType.INT), Field("name", FieldType.STRING)],
    primary_key="id",
)

BASE_KEYS = frozenset(range(10))
WRITE_FAULTS = ("fail_before_fsync", "partial_write", "torn_tail", "bit_flip")


def _rec(i: int) -> dict:
    return {"id": i, "name": f"rec-{i}"}


@dataclass(frozen=True)
class Cell:
    """One crash-matrix cell and its expected post-recovery state."""

    failpoint: str
    op: str
    site: str  # path-substring the fault targets
    skip: int  # matching events to let through before firing
    raises: type[BaseException] | None  # what the op should raise, if anything
    fires: bool  # whether the failpoint can fire during this op at all
    expected_keys: frozenset  # exactly the committed prefix
    index_survives: bool = False  # only meaningful for op="index_create"
    params: tuple = ()  # extra failpoint params as (key, value) pairs


def _cells() -> list[Cell]:
    cells = []
    # -- single synced put: the frame either commits whole or not at all.
    for fp in WRITE_FAULTS:
        cells.append(Cell(
            failpoint=fp, op="put", site=".wal", skip=0,
            # bit_flip "succeeds"; the damage only surfaces at recovery.
            raises=None if fp == "bit_flip" else InjectedFault,
            fires=True, expected_keys=BASE_KEYS,
        ))
    # A put performs no rename, so fail_after_rename cannot fire: the op
    # must complete untouched with the failpoint still armed.
    cells.append(Cell(
        failpoint="fail_after_rename", op="put", site=".wal", skip=0,
        raises=None, fires=False, expected_keys=BASE_KEYS | {100},
    ))

    # -- put_many (group commit of 100..104): the whole batch lands as one
    # coalesced write, so the fault is aimed at a byte offset inside the
    # 3rd frame; recovery keeps the longest valid prefix of the batch.
    prefix_2 = BASE_KEYS | {100, 101}
    sizes = [len(_frame({"op": "put", "record": _rec(i)})) for i in range(100, 105)]
    cut = sizes[0] + sizes[1] + sizes[2] // 2  # mid-3rd-frame, one chunk
    total = sum(sizes)
    cells.append(Cell(  # fsync faults → everything since the last sync is gone
        failpoint="fail_before_fsync", op="put_many", site=".wal", skip=0,
        raises=InjectedFault, fires=True, expected_keys=BASE_KEYS,
    ))
    cells.append(Cell(
        failpoint="partial_write", op="put_many", site=".wal", skip=0,
        raises=InjectedFault, fires=True, expected_keys=prefix_2,
        params=(("keep_bytes", cut),),
    ))
    cells.append(Cell(
        failpoint="torn_tail", op="put_many", site=".wal", skip=0,
        raises=InjectedFault, fires=True, expected_keys=prefix_2,
        params=(("drop_bytes", total - cut),),
    ))
    cells.append(Cell(  # silent corruption mid-batch; fsck truncates there
        failpoint="bit_flip", op="put_many", site=".wal", skip=0,
        raises=None, fires=True, expected_keys=prefix_2,
        params=(("byte", cut),),
    ))
    cells.append(Cell(
        failpoint="fail_after_rename", op="put_many", site=".wal", skip=0,
        raises=None, fires=False,
        expected_keys=BASE_KEYS | {100, 101, 102, 103, 104},
    ))

    # -- checkpoint with a committed record 100 in the WAL: every crash
    # point must recover to the full pre-checkpoint state.
    ckpt_keys = BASE_KEYS | {100}
    for fp in ("fail_before_fsync", "partial_write", "torn_tail"):
        cells.append(Cell(
            failpoint=fp, op="checkpoint", site="snapshot", skip=0,
            raises=InjectedFault, fires=True, expected_keys=ckpt_keys,
        ))
    cells.append(Cell(  # read-back verification catches the corrupt snapshot
        failpoint="bit_flip", op="checkpoint", site="snapshot", skip=0,
        raises=StorageError, fires=True, expected_keys=ckpt_keys,
    ))
    cells.append(Cell(  # snapshot published, reclaim skipped → stale segments
        failpoint="fail_after_rename", op="checkpoint", site="snapshot", skip=0,
        raises=InjectedFault, fires=True, expected_keys=ckpt_keys,
    ))

    # -- index create + checkpoint: records always survive; the index
    # declaration survives only once a snapshot containing it publishes.
    for fp in ("fail_before_fsync", "partial_write", "torn_tail"):
        cells.append(Cell(
            failpoint=fp, op="index_create", site="snapshot", skip=0,
            raises=InjectedFault, fires=True, expected_keys=BASE_KEYS,
        ))
    cells.append(Cell(
        failpoint="bit_flip", op="index_create", site="snapshot", skip=0,
        raises=StorageError, fires=True, expected_keys=BASE_KEYS,
    ))
    cells.append(Cell(
        failpoint="fail_after_rename", op="index_create", site="snapshot",
        skip=0, raises=InjectedFault, fires=True, expected_keys=BASE_KEYS,
        index_survives=True,
    ))
    return cells


def _run_op(store: RecordStore, op: str) -> None:
    if op == "put":
        store.insert(_rec(100))
    elif op == "put_many":
        store.put_many([_rec(i) for i in range(100, 105)])
    elif op == "checkpoint":
        store.insert(_rec(100))  # committed before the faulty checkpoint
        store.checkpoint()
    elif op == "index_create":
        store.create_index("name")
        store.checkpoint()
    else:  # pragma: no cover - matrix definition error
        raise AssertionError(op)


@pytest.mark.parametrize(
    "cell", _cells(), ids=lambda c: f"{c.failpoint}-{c.op}"
)
def test_crash_matrix(cell: Cell, tmp_path):
    directory = tmp_path / "db"
    # Baseline: 10 committed records, checkpointed, cleanly closed.
    with RecordStore(SCHEMA, directory, sync=True) as store:
        store.put_many([_rec(i) for i in range(10)])
        store.checkpoint()

    # Crash: reopen under fault injection, arm, run, abandon the store.
    fs = FaultFS()
    store = RecordStore(SCHEMA, directory, sync=True, fs=fs)
    fs.arm(cell.failpoint, path=cell.site, skip=cell.skip, **dict(cell.params))
    if cell.raises is None:
        _run_op(store, cell.op)
    else:
        with pytest.raises(cell.raises):
            _run_op(store, cell.op)
    assert fs.fired(cell.failpoint) == (1 if cell.fires else 0)
    del store  # simulated crash: the handle is never closed

    # Recover: repair crash artifacts, reopen clean, check the prefix.
    fsck(directory, repair=True)
    with RecordStore(SCHEMA, directory, sync=True) as recovered:
        assert set(recovered.keys()) == set(cell.expected_keys)
        for key in cell.expected_keys:
            assert recovered.get(key) == _rec(key)
        if cell.op == "index_create":
            assert recovered.has_index("name") == cell.index_survives

    report = fsck(directory)
    assert report.exit_code() == 0, report.render()


def test_recovered_store_stays_writable(tmp_path):
    """After a crash + repair, the store must accept and keep new writes."""
    directory = tmp_path / "db"
    fs = FaultFS()
    store = RecordStore(SCHEMA, directory, sync=True, fs=fs)
    store.put_many([_rec(i) for i in range(5)])
    fs.arm("torn_tail", path=".wal", drop_bytes=3)
    with pytest.raises(InjectedFault):
        store.insert(_rec(5))
    del store

    fsck(directory, repair=True)
    with RecordStore(SCHEMA, directory, sync=True) as store:
        assert set(store.keys()) == set(range(5))
        store.insert(_rec(5))
    with RecordStore(SCHEMA, directory) as store:
        assert set(store.keys()) == set(range(6))
    assert fsck(directory).exit_code() == 0


def test_transaction_commit_is_all_or_nothing(tmp_path):
    """A crash during a transaction's single-entry commit loses the whole
    transaction; a crash after it keeps the whole transaction."""
    directory = tmp_path / "db"
    fs = FaultFS()
    store = RecordStore(SCHEMA, directory, sync=True, fs=fs)
    store.put_many([_rec(i) for i in range(3)])
    fs.arm("fail_before_fsync", path=".wal")
    with pytest.raises(InjectedFault):
        with store.transaction() as txn:
            txn.insert(_rec(10))
            txn.insert(_rec(11))
    del store

    fsck(directory, repair=True)
    with RecordStore(SCHEMA, directory, sync=True) as store:
        assert set(store.keys()) == set(range(3))  # nothing partial
        with store.transaction() as txn:
            txn.insert(_rec(10))
            txn.insert(_rec(11))
    with RecordStore(SCHEMA, directory) as store:
        assert set(store.keys()) == {0, 1, 2, 10, 11}

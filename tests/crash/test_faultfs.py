"""Unit tests for the fault-injecting filesystem shim itself.

The crash matrix (``test_crash_matrix.py``) only means something if the
injector is trustworthy: each failpoint must fire exactly as armed —
once, at the right call, on the right path — and a :class:`FaultFS` with
nothing armed must behave exactly like the real filesystem.
"""

from __future__ import annotations

import os

import pytest

from repro.storage.faultfs import (
    FAILPOINTS,
    REAL_FS,
    FaultFS,
    FileSystem,
    InjectedFault,
    flip_bit,
    flip_bit_on_disk,
)


class TestArming:
    def test_unknown_failpoint_rejected(self):
        fs = FaultFS()
        with pytest.raises(ValueError, match="unknown failpoint"):
            fs.arm("fail_sometimes")

    def test_bad_skip_and_times_rejected(self):
        fs = FaultFS()
        with pytest.raises(ValueError):
            fs.arm("partial_write", skip=-1)
        with pytest.raises(ValueError):
            fs.arm("partial_write", times=0)

    def test_armed_and_disarm(self):
        fs = FaultFS()
        fs.arm("torn_tail")
        assert fs.armed("torn_tail")
        assert not fs.armed("partial_write")
        fs.disarm("torn_tail")
        assert not fs.armed("torn_tail")
        fs.disarm("torn_tail")  # disarming nothing is a no-op

    def test_reset_clears_arms_and_counters(self, tmp_path):
        fs = FaultFS()
        fs.arm("partial_write", keep_bytes=0)
        fh = fs.open(tmp_path / "f.bin", "wb")
        with pytest.raises(InjectedFault):
            fh.write(b"hello")
        fh.close()
        assert fs.fired("partial_write") == 1
        fs.reset()
        assert fs.fired("partial_write") == 0
        assert not fs.armed("partial_write")


class TestFiresExactlyOnce:
    """Every failpoint fires exactly once by default, then self-disarms."""

    def test_partial_write(self, tmp_path):
        fs = FaultFS()
        fs.arm("partial_write", keep_bytes=3)
        fh = fs.open(tmp_path / "f.bin", "wb")
        with pytest.raises(InjectedFault) as exc:
            fh.write(b"0123456789")
        assert exc.value.name == "partial_write"
        assert fh.write(b"abc") == 3  # second write passes through
        fh.close()
        assert fs.fired("partial_write") == 1
        assert not fs.armed("partial_write")
        assert (tmp_path / "f.bin").read_bytes() == b"012abc"

    def test_torn_tail(self, tmp_path):
        fs = FaultFS()
        fs.arm("torn_tail", drop_bytes=4)
        fh = fs.open(tmp_path / "f.bin", "wb")
        with pytest.raises(InjectedFault):
            fh.write(b"0123456789")
        fh.write(b"!")
        fh.close()
        assert fs.fired("torn_tail") == 1
        assert (tmp_path / "f.bin").read_bytes() == b"012345!"

    def test_fail_before_fsync_rolls_back_to_synced_size(self, tmp_path):
        fs = FaultFS()
        fh = fs.open(tmp_path / "f.bin", "wb")
        fh.write(b"durable")
        fs.fsync(fh)  # synced_size is now 7
        fs.arm("fail_before_fsync")
        fh.write(b" and lost")
        with pytest.raises(InjectedFault):
            fs.fsync(fh)
        fh.close()
        assert fs.fired("fail_before_fsync") == 1
        assert (tmp_path / "f.bin").read_bytes() == b"durable"

    def test_fail_after_rename_performs_the_rename(self, tmp_path):
        fs = FaultFS()
        src = tmp_path / "a"
        dst = tmp_path / "b"
        src.write_bytes(b"payload")
        fs.arm("fail_after_rename")
        with pytest.raises(InjectedFault):
            fs.replace(src, dst)
        assert not src.exists()
        assert dst.read_bytes() == b"payload"
        assert fs.fired("fail_after_rename") == 1
        # disarmed: the next replace succeeds silently
        dst2 = tmp_path / "c"
        fs.replace(dst, dst2)
        assert dst2.exists()

    def test_bit_flip_succeeds_silently(self, tmp_path):
        fs = FaultFS()
        fs.arm("bit_flip", byte=0, bit=0)
        fh = fs.open(tmp_path / "f.bin", "wb")
        assert fh.write(b"\x00\x00") == 2  # reports full success
        fh.close()
        assert fs.fired("bit_flip") == 1
        assert (tmp_path / "f.bin").read_bytes() == b"\x01\x00"


class TestTargeting:
    def test_path_filter(self, tmp_path):
        fs = FaultFS()
        fs.arm("partial_write", path=".wal", keep_bytes=0)
        other = fs.open(tmp_path / "snapshot.json.tmp", "wb")
        other.write(b"unaffected")  # does not match the filter
        other.close()
        wal = fs.open(tmp_path / "store.wal", "ab")
        with pytest.raises(InjectedFault):
            wal.write(b"frame")
        wal.close()
        assert fs.fired("partial_write") == 1
        assert (tmp_path / "snapshot.json.tmp").read_bytes() == b"unaffected"

    def test_skip_lets_events_through(self, tmp_path):
        fs = FaultFS()
        fs.arm("torn_tail", skip=2, drop_bytes=1)
        fh = fs.open(tmp_path / "f.bin", "wb")
        fh.write(b"aa")
        fh.write(b"bb")
        with pytest.raises(InjectedFault):
            fh.write(b"cc")
        fh.close()
        assert (tmp_path / "f.bin").read_bytes() == b"aabbc"

    def test_times_bounds_repeat_fires(self, tmp_path):
        fs = FaultFS()
        fs.arm("bit_flip", times=2, byte=0)
        fh = fs.open(tmp_path / "f.bin", "wb")
        fh.write(b"\x00")
        fh.write(b"\x00")
        fh.write(b"\x00")  # third write is untouched
        fh.close()
        assert fs.fired("bit_flip") == 2
        assert (tmp_path / "f.bin").read_bytes() == b"\x01\x01\x00"


class TestPassThrough:
    """With nothing armed, FaultFS is byte-for-byte the real filesystem."""

    @pytest.mark.parametrize("fs", [REAL_FS, FaultFS()], ids=["real", "fault"])
    def test_write_fsync_replace_remove(self, fs: FileSystem, tmp_path):
        path = tmp_path / "f.bin"
        fh = fs.open(path, "wb")
        fh.write(b"hello ")
        fh.write(b"world")
        fs.fsync(fh)
        fh.close()
        assert path.read_bytes() == b"hello world"
        moved = tmp_path / "g.bin"
        fs.replace(path, moved)
        fs.fsync_dir(tmp_path)
        assert moved.read_bytes() == b"hello world"
        fs.remove(moved)
        assert not moved.exists()

    def test_open_is_binary_only(self, tmp_path):
        with pytest.raises(ValueError, match="binary-only"):
            FaultFS().open(tmp_path / "f", "w")
        with pytest.raises(ValueError, match="binary-only"):
            REAL_FS.open(tmp_path / "f", "w")

    def test_fault_file_surface(self, tmp_path):
        fs = FaultFS()
        fh = fs.open(tmp_path / "f.bin", "wb")
        fh.write(b"0123456789")
        fh.flush()
        assert fh.tell() == 10
        fh.truncate(4)
        fh.seek(0, os.SEEK_END)
        assert fh.tell() == 4
        assert isinstance(fh.fileno(), int)
        assert not fh.closed
        fh.close()
        assert fh.closed


class TestFlipBit:
    def test_flip_bit_round_trips(self):
        data = b"\x10\x20\x30"
        flipped = flip_bit(data, 1, 3)
        assert flipped == b"\x10\x28\x30"
        assert flip_bit(flipped, 1, 3) == data

    def test_flip_bit_clamps_index(self):
        assert flip_bit(b"\x00", 99) == b"\x01"
        assert flip_bit(b"", 0) == b""

    def test_flip_bit_on_disk(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"\x00\x00")
        flip_bit_on_disk(path, 1, 7)
        assert path.read_bytes() == b"\x00\x80"


def test_every_failpoint_name_is_armable():
    fs = FaultFS()
    for name in FAILPOINTS:
        fs.arm(name)
        assert fs.armed(name)
    fs.disarm_all()
    assert not any(fs.armed(name) for name in FAILPOINTS)


class TestFiredMetric:
    def test_fired_failpoints_increment_labeled_counter(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        counter = obs_metrics.counter(
            "storage.faultfs.failpoint.fired", failpoint="partial_write"
        )
        before = counter.value
        fs = FaultFS()
        fs.arm("partial_write", keep_bytes=0, times=2)
        for name in ("a.bin", "b.bin"):
            fh = fs.open(tmp_path / name, "wb")
            with pytest.raises(InjectedFault):
                fh.write(b"hello")
            fh.close()
        assert counter.value == before + 2

    def test_unfired_failpoint_moves_no_counter(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        counter = obs_metrics.counter(
            "storage.faultfs.failpoint.fired", failpoint="torn_tail"
        )
        before = counter.value
        fs = FaultFS()
        fs.arm("torn_tail", path="other.bin")
        # A write to a non-matching path never trips the armed failpoint.
        fh = fs.open(tmp_path / "f.bin", "wb")
        fh.write(b"data")
        fh.close()
        assert counter.value == before

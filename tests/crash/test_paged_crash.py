"""Crash tests for the paged data format.

Extends the crash matrix to the pages file: a checkpoint that tears a
page write, dies after the page-file fsync, or dies after publishing the
pages file but before publishing the manifest must always leave the
directory recoverable to the exact pre-checkpoint state — and ``fsck``
must classify every artifact correctly (stray pages files repairable,
page-level corruption fatal with the damaged page named).
"""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage import FaultFS, InjectedFault, RecordStore, fsck
from repro.storage.faultfs import flip_bit_on_disk
from repro.storage.pages import PAGE_SIZE
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [Field("id", FieldType.INT), Field("name", FieldType.STRING)],
    primary_key="id",
)

BASE_KEYS = frozenset(range(10))


def _rec(i: int) -> dict:
    return {"id": i, "name": f"rec-{i}"}


def _paged_baseline(directory) -> None:
    """Ten records, checkpointed in paged format, cleanly closed."""
    with RecordStore(SCHEMA, directory, sync=True, data_format="paged") as store:
        store.put_many([_rec(i) for i in range(10)])
        store.checkpoint()


def _recovered_keys(directory) -> set:
    with RecordStore(SCHEMA, directory, sync=True, data_format="paged") as store:
        return set(store.keys())


@pytest.mark.parametrize("failpoint", ["torn_page_write", "fail_after_page_flush"])
def test_crash_during_pages_build_recovers_precheckpoint_state(
    failpoint, tmp_path
):
    """A checkpoint that dies writing/syncing the tmp pages file loses the
    checkpoint, never the data: every WAL-acknowledged write survives."""
    directory = tmp_path / "db"
    _paged_baseline(directory)

    fs = FaultFS()
    store = RecordStore(SCHEMA, directory, sync=True, fs=fs, data_format="paged")
    store.insert(_rec(100))  # committed to the WAL before the crash
    fs.arm(failpoint, path=".pages", keep_bytes=PAGE_SIZE // 2)
    with pytest.raises(InjectedFault):
        store.checkpoint()
    assert fs.fired(failpoint) == 1
    del store  # simulated crash: never closed

    report = fsck(directory, repair=True)
    assert report.exit_code() == 0, report.render()
    assert _recovered_keys(directory) == BASE_KEYS | {100}
    assert fsck(directory).exit_code() == 0


def test_transient_page_flush_fault_is_retried(tmp_path):
    """A transient fsync hiccup on the pages file heals inside the retry
    policy: the checkpoint completes and nothing needs repair."""
    directory = tmp_path / "db"
    _paged_baseline(directory)

    fs = FaultFS()
    with RecordStore(
        SCHEMA, directory, sync=True, fs=fs, data_format="paged"
    ) as store:
        store.insert(_rec(100))
        fs.arm("fail_after_page_flush", path=".pages", transient=True)
        store.checkpoint()  # retried, succeeds
        assert fs.fired("fail_after_page_flush") == 1
        assert store.overlay_size == 0
    assert fsck(directory).exit_code() == 0
    assert _recovered_keys(directory) == BASE_KEYS | {100}


def test_crash_between_pages_publish_and_manifest_leaves_repairable_stray(
    tmp_path,
):
    """Dying after the pages file is renamed into place but before the
    manifest references it strands a fully-built pages file.  Recovery
    ignores it (the manifest is the truth), fsck flags it repairable and
    removes it on --repair."""
    directory = tmp_path / "db"
    _paged_baseline(directory)

    fs = FaultFS()
    store = RecordStore(SCHEMA, directory, sync=True, fs=fs, data_format="paged")
    store.insert(_rec(100))
    fs.arm("fail_after_rename", path="store.pages.")
    with pytest.raises(InjectedFault):
        store.checkpoint()
    assert fs.fired("fail_after_rename") == 1
    del store

    # the published-but-unreferenced pages file is on disk next to the
    # one the (old) manifest still references
    assert len(list(directory.glob("store.pages.*"))) == 2
    report = fsck(directory)
    assert report.exit_code() == 1
    stray = [i for i in report.issues if i.severity == "repairable"]
    assert any("unreferenced pages file" in i.message for i in stray)

    report = fsck(directory, repair=True)
    assert report.exit_code() == 0, report.render()
    assert len(list(directory.glob("store.pages.*"))) == 1
    assert _recovered_keys(directory) == BASE_KEYS | {100}
    assert fsck(directory).exit_code() == 0


def test_torn_tmp_pages_file_is_swept(tmp_path):
    """A half-built ``.tmp`` pages file from a crashed build is a
    repairable stray, even though it never passed verification."""
    directory = tmp_path / "db"
    _paged_baseline(directory)
    (directory / "store.pages.000099.tmp").write_bytes(b"\x00" * 100)

    report = fsck(directory)
    assert report.exit_code() == 1
    assert any("temp pages file" in i.message for i in report.issues)
    assert fsck(directory, repair=True).exit_code() == 0
    assert not (directory / "store.pages.000099.tmp").exists()


def test_bit_flip_in_published_pages_file_is_fatal(tmp_path):
    """Disk corruption inside the published pages file is page-level
    fatal: fsck names the damaged page and refuses to repair.  Opening
    the store still succeeds (open reads only the meta page — that is
    the millisecond-open contract), but the first read that touches the
    damaged page raises instead of serving bad bytes."""
    directory = tmp_path / "db"
    _paged_baseline(directory)
    pages_path = next(directory.glob("store.pages.*"))

    # flip one bit in the middle of page 2 (a node page)
    flip_bit_on_disk(pages_path, 2 * PAGE_SIZE + 77, bit=3)

    report = fsck(directory)
    assert report.exit_code() == 2
    fatal = [i for i in report.issues if i.severity == "fatal"]
    assert any("page" in i.message and "corruption" in i.message for i in fatal)
    # repair must not touch it — the damage is not safely repairable
    assert fsck(directory, repair=True).exit_code() == 2
    assert pages_path.exists()

    with RecordStore(SCHEMA, directory, data_format="paged") as store:
        with pytest.raises(StorageError):
            list(store.scan())


def test_meta_page_corruption_is_fatal(tmp_path):
    """Damage to the meta page (root pointer, counts) is caught on open."""
    directory = tmp_path / "db"
    _paged_baseline(directory)
    pages_path = next(directory.glob("store.pages.*"))
    flip_bit_on_disk(pages_path, 20, bit=0)  # inside the meta payload

    assert fsck(directory).exit_code() == 2
    with pytest.raises(StorageError):
        RecordStore(SCHEMA, directory, data_format="paged")

"""Admission control and the circuit breaker.

Covers the gate's three outcomes — fast-path admit, bounded queue wait,
shed (queue-full and queue-timeout) — the in-flight/waiting accounting,
and the breaker's open/close lifecycle feeding ``/healthz``.
"""

import threading
import time

import pytest

from repro.errors import AdmissionRejected
from repro.obs import metrics
from repro.resilience import AdmissionController, CircuitBreaker


class TestAdmissionController:
    def test_free_slot_admits_immediately(self):
        gate = AdmissionController(max_concurrent=1, max_queue=0, queue_timeout_s=0.0)
        with gate.slot():
            assert gate.in_flight == 1
        assert gate.in_flight == 0

    def test_slots_are_reusable_after_release(self):
        gate = AdmissionController(max_concurrent=1, max_queue=0, queue_timeout_s=0.0)
        for _ in range(3):
            with gate.slot():
                pass
        assert metrics.counter("resilience.admission.admitted").value == 3

    def test_full_queue_sheds_on_the_spot(self):
        gate = AdmissionController(max_concurrent=1, max_queue=0, queue_timeout_s=0.0)
        gate.acquire()
        try:
            start = time.perf_counter()
            with pytest.raises(AdmissionRejected) as exc_info:
                gate.acquire()
            # Shedding at the door is fast: no queue wait happened.
            assert time.perf_counter() - start < 0.1
            assert exc_info.value.reason == "queue-full"
            assert exc_info.value.retry_after_s > 0
        finally:
            gate.release()
        assert metrics.counter("resilience.admission.shed").value == 1

    def test_queue_wait_times_out_and_sheds(self):
        gate = AdmissionController(
            max_concurrent=1, max_queue=1, queue_timeout_s=0.05
        )
        gate.acquire()
        try:
            start = time.perf_counter()
            with pytest.raises(AdmissionRejected) as exc_info:
                gate.acquire()
            waited = time.perf_counter() - start
            assert exc_info.value.reason == "queue-timeout"
            assert waited >= 0.05
        finally:
            gate.release()
        assert gate.waiting == 0

    def test_queued_request_is_admitted_when_a_slot_frees(self):
        gate = AdmissionController(max_concurrent=1, max_queue=1, queue_timeout_s=5.0)
        gate.acquire()
        admitted = threading.Event()

        def worker():
            gate.acquire()
            admitted.set()
            gate.release()

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            # Give the worker time to enter the queue, then free the slot.
            for _ in range(100):
                if gate.waiting == 1:
                    break
                time.sleep(0.005)
            assert gate.waiting == 1
            gate.release()
            assert admitted.wait(timeout=5.0)
        finally:
            thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert gate.in_flight == 0

    def test_shed_feeds_the_breaker(self):
        breaker = CircuitBreaker(min_events=1, shed_rate_threshold=0.5)
        gate = AdmissionController(
            max_concurrent=1, max_queue=0, queue_timeout_s=0.0, breaker=breaker
        )
        gate.acquire()
        try:
            with pytest.raises(AdmissionRejected):
                gate.acquire()
        finally:
            gate.release()
        assert breaker.open

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrent": 0},
            {"max_queue": -1},
            {"queue_timeout_s": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)


class TestCircuitBreaker:
    def test_stays_closed_below_min_events(self):
        breaker = CircuitBreaker(min_events=10)
        for _ in range(9):
            breaker.record("shed")
        assert not breaker.open

    def test_opens_on_shed_rate(self):
        breaker = CircuitBreaker(min_events=4, shed_rate_threshold=0.5)
        for outcome in ("ok", "shed", "shed", "shed"):
            breaker.record(outcome)
        assert breaker.open
        assert metrics.counter("resilience.breaker.trips").value == 1
        assert metrics.gauge("resilience.breaker.open").value == 1

    def test_opens_on_timeout_rate(self):
        breaker = CircuitBreaker(min_events=2, timeout_rate_threshold=0.5)
        breaker.record("timeout")
        breaker.record("timeout")
        assert breaker.open

    def test_closes_after_cooldown_once_the_window_drains(self):
        breaker = CircuitBreaker(
            min_events=1, shed_rate_threshold=0.5, window_s=0.05, cooldown_s=0.0
        )
        breaker.record("shed")
        assert breaker.open
        time.sleep(0.08)  # events age out of the window
        assert not breaker.open
        assert metrics.gauge("resilience.breaker.open").value == 0

    def test_ok_traffic_keeps_it_closed(self):
        breaker = CircuitBreaker(min_events=2)
        for _ in range(50):
            breaker.record("ok")
        breaker.record("shed")
        assert not breaker.open

    def test_state_shape(self):
        breaker = CircuitBreaker(min_events=2, shed_rate_threshold=0.5)
        breaker.record("ok")
        breaker.record("shed")
        breaker.record("shed")
        state = breaker.state()
        assert state["open"] is True
        assert state["events"] == 3
        assert state["shed_rate"] == round(2 / 3, 4)
        assert state["timeout_rate"] == 0.0
        assert state["window_s"] == breaker.window_s

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker().record("weird")

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(shed_rate_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(timeout_rate_threshold=1.5)

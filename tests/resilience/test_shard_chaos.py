"""Acceptance chaos drill from the shard fault-tolerance issue.

Persistent corruption on 1 of 4 shards must leave the other three
serving (partial mode), fail strict queries with a typed error, then be
healed by the scrubber — and after repair a strict query is
byte-identical to the pre-damage baseline with zero committed-record
loss.
"""

import pytest

from repro.errors import ShardUnavailableError
from repro.query import ShardedQueryEngine
from repro.storage import HEALTHY, QUARANTINED, ShardedStore, Scrubber
from repro.storage.faultfs import FaultFS, InjectedFault, flip_bit_on_disk
from repro.storage.pages import PAGE_SIZE
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [Field("id", FieldType.INT), Field("surname", FieldType.STRING)],
    primary_key="id",
)

QUERY = "surname = 's3' ORDER BY id"


def test_corruption_partial_service_then_self_heal(tmp_path):
    fs = FaultFS()
    root = tmp_path / "store"
    store = ShardedStore(SCHEMA, root, shards=4, fs=fs, data_format="paged")
    store.put_many([{"id": i, "surname": f"s{i % 7}"} for i in range(2000)])
    store.checkpoint()
    store.put_many(
        [{"id": 5000 + i, "surname": f"s{i % 7}"} for i in range(100)]
    )
    engine = ShardedQueryEngine(store)
    baseline = engine.execute(QUERY)
    assert baseline  # the drill must actually exercise rows

    # Chaos: the second checkpoint publishes shard-01's snapshot then
    # dies before reclaiming its WAL; a bit then rots in the new pages
    # file.  The surviving history makes a zero-loss repair possible.
    fs.arm("fail_after_rename", path="shard-01/snapshot.json")
    with pytest.raises(InjectedFault):
        store.checkpoint()
    pages = sorted((root / "shard-01").glob("store.pages.*"))[-1]
    flip_bit_on_disk(pages, byte_index=3 * PAGE_SIZE + 100, bit=4)
    store.readmit(1, reopen=True)  # reload the damaged on-disk state

    # Scrub detects and quarantines exactly the damaged shard.
    scrubber = Scrubber(store, bytes_per_s=None)
    report = scrubber.run_once()
    assert report.corrupt_shards == (1,)
    assert store.health.state(1) == QUARANTINED
    for i in (0, 2, 3):
        assert store.health.state(i) == HEALTHY

    # Strict refuses; partial serves the three healthy shards.
    with pytest.raises(ShardUnavailableError):
        engine.execute(QUERY)
    partial = engine.execute(QUERY, partial=True)
    assert partial.partial is True
    assert partial.shards_failed == (1,)
    expected_partial = [
        r for r in baseline if store.shard_for(r["id"]) != 1
    ]
    assert list(partial) == expected_partial

    # Self-heal: quarantine → fsck --repair (rollback + WAL replay) →
    # re-verify → readmit.
    healed = scrubber.run_once(repair=True)
    assert healed.shards[1].repaired
    assert store.health.state(1) == HEALTHY

    # Post-repair strict query is byte-identical; nothing was lost.
    assert engine.execute(QUERY) == baseline
    assert len(store) == 2100
    assert scrubber.run_once().clean

    # The healed state is durable across a full close/reopen.
    engine.close()
    store.close()
    with ShardedStore(SCHEMA, root, data_format="paged") as reopened:
        assert len(reopened) == 2100
        assert reopened.health.state(1) == HEALTHY
        fresh = ShardedQueryEngine(reopened)
        assert fresh.execute(QUERY) == baseline
        fresh.close()

"""Acceptance: deadlines under load leave the store fast and intact.

The two PR acceptance criteria this file pins down:

* a query with a 50 ms deadline over a 100k-record durable store
  returns ``QueryTimeout`` in well under 100 ms of wall time, and the
  store passes ``fsck`` (exit 0) afterwards — a timed-out query never
  corrupts anything;
* a storm of 50 concurrent queries with 1 ms deadlines all unwind
  cleanly — every worker finishes, no thread leaks
  (``threading.enumerate()`` before == after).
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import QueryInterrupted, QueryTimeout
from repro.query.executor import QueryEngine
from repro.storage.fsck import fsck
from repro.storage.store import RecordStore


STORM_QUERIES = 50


@pytest.fixture(scope="module")
def big_store_dir(tmp_path_factory):
    """A 100k-record durable store, checkpointed and cleanly closed."""
    from repro.storage.schema import Field, FieldType, Schema

    schema = Schema(
        [
            Field("id", FieldType.INT),
            Field("name", FieldType.STRING),
            Field("year", FieldType.INT),
        ],
        primary_key="id",
    )
    directory = tmp_path_factory.mktemp("storm") / "db"
    with RecordStore(schema, directory) as store:
        store.put_many(
            [{"id": i, "name": f"rec-{i}", "year": 1900 + (i % 120)}
             for i in range(100_000)]
        )
        store.checkpoint()
    return schema, directory


def test_50ms_deadline_on_100k_store_returns_within_100ms(big_store_dir):
    schema, directory = big_store_dir
    with RecordStore(schema, directory) as store:
        engine = QueryEngine(store)
        start = time.perf_counter()
        with pytest.raises(QueryTimeout) as exc_info:
            engine.execute("year >= 1900", timeout_s=0.050)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.100, f"timeout took {elapsed * 1000:.1f} ms"
        assert exc_info.value.rows_examined > 0
        # The interruption carried partial-progress stats, not garbage.
        assert exc_info.value.elapsed_s >= 0.050

    # The store is untouched: fsck walks it clean.
    assert fsck(directory).exit_code() == 0


def test_deadline_storm_unwinds_cleanly_without_leaking_threads(big_store_dir):
    schema, directory = big_store_dir
    threads_before = set(threading.enumerate())
    with RecordStore(schema, directory) as store:
        engine = QueryEngine(store)

        def one_query(_):
            try:
                engine.execute("year >= 1900", timeout_s=0.001)
                return "completed"
            except QueryInterrupted:
                return "interrupted"

        with ThreadPoolExecutor(max_workers=16) as pool:
            outcomes = list(pool.map(one_query, range(STORM_QUERIES)))

    # Every query finished — none hung, none escaped with a stray error.
    assert len(outcomes) == STORM_QUERIES
    assert set(outcomes) <= {"completed", "interrupted"}
    # A 1 ms deadline over a 100k-record scan cannot finish: the storm
    # must actually exercise the timeout path.
    assert outcomes.count("interrupted") > 0

    # No leaked threads: the pool joined and nothing else stuck around.
    assert set(threading.enumerate()) <= threads_before

    # And the store is still clean after 50 interrupted scans.
    assert fsck(directory).exit_code() == 0

"""Deadlines, cancellation tokens, and the execution guard.

Unit coverage for the substrate (:mod:`repro.resilience.deadline`) plus
its integration into the query executor: typed unwinding, exact row
budgets, amortized deadline checks, and partial-progress stats on the
raised errors (including the partial EXPLAIN ANALYZE tree).
"""

import time

import pytest

from repro.errors import BudgetExceeded, QueryCancelled, QueryTimeout
from repro.obs import metrics
from repro.query.executor import QueryEngine
from repro.resilience import CancelToken, Deadline, Guard


class TestDeadline:
    def test_after_is_an_instant_on_the_monotonic_clock(self):
        before = time.perf_counter()
        deadline = Deadline.after(60.0)
        assert before + 59.0 < deadline.at < time.perf_counter() + 60.0
        assert deadline.timeout_s == 60.0
        assert not deadline.expired()
        assert 0.0 < deadline.remaining() <= 60.0

    def test_zero_span_is_already_expired(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired()
        assert deadline.remaining() <= 0.0

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


class TestCancelToken:
    def test_starts_clear_and_is_sticky(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        token.cancel()  # idempotent
        assert token.cancelled


class TestGuard:
    def test_row_budget_is_exact(self):
        guard = Guard(max_rows=5)
        for _ in range(5):
            guard.tick()
        with pytest.raises(BudgetExceeded) as exc_info:
            guard.tick()
        exc = exc_info.value
        assert exc.budget == "rows"
        assert exc.limit == 5
        assert exc.used == 6
        assert exc.rows_examined == 6

    def test_deadline_check_amortized_to_stride(self):
        # An already-expired deadline only trips on the stride boundary.
        guard = Guard(deadline=Deadline.after(0.0), stride=4)
        for _ in range(3):
            guard.tick()  # under the stride: no clock read, no raise
        with pytest.raises(QueryTimeout) as exc_info:
            guard.tick()
        assert exc_info.value.rows_examined == 4

    def test_check_forces_immediate_deadline(self):
        guard = Guard(deadline=Deadline.after(0.0), stride=1_000_000)
        with pytest.raises(QueryTimeout):
            guard.check()

    def test_cancellation_raises_on_check(self):
        token = CancelToken()
        guard = Guard(cancel=token, stride=1_000_000)
        guard.tick()
        token.cancel()
        with pytest.raises(QueryCancelled):
            guard.check()

    def test_cancellation_trips_inside_tick(self):
        token = CancelToken()
        token.cancel()
        guard = Guard(cancel=token, stride=3)
        guard.tick()
        guard.tick()
        with pytest.raises(QueryCancelled) as exc_info:
            guard.tick()
        assert exc_info.value.rows_examined == 3

    def test_byte_budget(self):
        guard = Guard(max_bytes=100)
        guard.add_bytes(60)
        with pytest.raises(BudgetExceeded) as exc_info:
            guard.add_bytes(60)
        exc = exc_info.value
        assert exc.budget == "bytes"
        assert exc.limit == 100
        assert exc.used == 120

    def test_stats_snapshot(self):
        guard = Guard()
        guard.tick(7)
        guard.add_bytes(42)
        stats = guard.stats()
        assert stats["rows_examined"] == 7
        assert stats["bytes_used"] == 42
        assert stats["elapsed_s"] >= 0.0

    def test_metrics_move_on_violation(self):
        timeouts = metrics.counter("resilience.deadline.timeouts")
        cancelled = metrics.counter("resilience.deadline.cancelled")
        budget = metrics.counter("resilience.budget.exceeded")
        with pytest.raises(QueryTimeout):
            Guard(deadline=Deadline.after(0.0)).check()
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            Guard(cancel=token).check()
        with pytest.raises(BudgetExceeded):
            Guard(max_rows=0).tick()
        assert timeouts.value == 1
        assert cancelled.value == 1
        assert budget.value == 1

    @pytest.mark.parametrize(
        "kwargs", [{"stride": 0}, {"max_rows": -1}, {"max_bytes": -1}]
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Guard(**kwargs)


class TestExecutorIntegration:
    """The guard threaded through ``QueryEngine.execute``."""

    @pytest.fixture()
    def engine(self, memory_store):
        memory_store.put_many(
            [{"id": i, "name": f"rec-{i}", "year": 1900 + (i % 100)}
             for i in range(1000)]
        )
        return QueryEngine(memory_store)

    def test_expired_deadline_raises_before_work(self, engine):
        with pytest.raises(QueryTimeout) as exc_info:
            engine.execute("year >= 1900", timeout_s=0.0)
        # The upfront check fires before the scan touches a row.
        assert exc_info.value.rows_examined == 0

    def test_max_rows_bounds_the_scan(self, engine):
        with pytest.raises(BudgetExceeded) as exc_info:
            engine.execute("year >= 1900", max_rows=100)
        exc = exc_info.value
        assert exc.limit == 100
        assert exc.used == 101

    def test_generous_bounds_leave_results_identical(self, engine):
        plain = engine.execute("year >= 1950 LIMIT 20")
        bounded = engine.execute(
            "year >= 1950 LIMIT 20", timeout_s=60.0, max_rows=1_000_000
        )
        assert bounded == plain

    def test_explicit_guard_accumulates_rows_examined(self, engine):
        guard = Guard()
        engine.execute("year >= 1900 LIMIT 5", guard=guard)
        assert guard.rows_examined > 0

    def test_shared_guard_spans_multiple_queries(self, engine):
        guard = Guard(max_rows=1000)
        engine.execute("year >= 1900 LIMIT 5", guard=guard)
        first = guard.rows_examined
        with pytest.raises(BudgetExceeded):
            engine.execute("year >= 1900", guard=guard)
        assert guard.rows_examined > first

    def test_cancelled_token_unwinds(self, engine):
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            engine.execute("year >= 1900", cancel=token)

    def test_profiled_interruption_attaches_partial_tree(self, engine):
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelled) as exc_info:
            engine.execute("year >= 1900", profile=True, cancel=token)
        partial = exc_info.value.partial
        assert partial is not None
        assert partial.rows == []
        assert "[interrupted: QueryCancelled]" in partial.root.detail
        assert partial.plan_text

    def test_index_paths_are_guarded_too(self, engine, memory_store):
        from repro.storage.store import IndexKind

        memory_store.create_index("year", IndexKind.BTREE)
        with pytest.raises(BudgetExceeded):
            engine.execute("year >= 1900", max_rows=50)

    def test_store_state_untouched_after_interruption(self, engine, memory_store):
        before = len(memory_store)
        with pytest.raises(BudgetExceeded):
            engine.execute("year >= 1900", max_rows=10)
        assert len(memory_store) == before
        # The store still answers queries normally afterwards.
        assert engine.execute("year >= 1999") != []


class TestSearchIntegration:
    def test_title_search_honors_the_guard(self, sample_records):
        from repro.search.engine import TitleSearchEngine

        engine = TitleSearchEngine(sample_records)
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            engine.search("public trust", guard=Guard(cancel=token))
        # Unguarded search still works.
        assert engine.search("public trust")

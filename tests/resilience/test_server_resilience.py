"""The resilient serving path: ``/query`` plus the breaker in ``/healthz``.

End-to-end over a real HTTP server: happy path, the typed-error status
mapping (429 + ``Retry-After``, 504, 422, 400), ``/healthz`` flipping to
``degraded`` while the breaker is open, and the leak-checked shutdown.
"""

import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.obs.server import TelemetryServer
from repro.query.executor import QueryEngine
from repro.resilience import AdmissionController, CircuitBreaker, QueryService
from repro.storage.store import RecordStore


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


@pytest.fixture()
def service(simple_schema):
    store = RecordStore(simple_schema)
    store.put_many(
        [{"id": i, "name": f"rec-{i}", "year": 1900 + (i % 100)}
         for i in range(500)]
    )
    breaker = CircuitBreaker(min_events=1, shed_rate_threshold=0.5)
    admission = AdmissionController(
        max_concurrent=2, max_queue=0, queue_timeout_s=0.0, breaker=breaker
    )
    return QueryService(QueryEngine(store), admission=admission)


@pytest.fixture()
def server(service):
    srv = TelemetryServer(port=0, query_service=service)
    srv.start()
    yield srv
    srv.stop()


def _query_url(server, q, **params):
    params["q"] = q
    return server.url + "/query?" + urllib.parse.urlencode(params)


class TestQueryEndpoint:
    def test_happy_path(self, server):
        status, _, body = _get(_query_url(server, "year >= 1990 LIMIT 5"))
        assert status == 200
        payload = json.loads(body)
        assert payload["row_count"] == len(payload["rows"]) == 5
        assert payload["rows_examined"] > 0
        assert payload["seconds"] >= 0.0

    def test_profile_included_on_request(self, server):
        status, _, body = _get(
            _query_url(server, "year >= 1990 LIMIT 3", profile="1")
        )
        assert status == 200
        payload = json.loads(body)
        assert "profile" in payload
        assert payload["profile"]["row_count"] == payload["row_count"]

    def test_missing_query_is_400(self, server):
        status, _, body = _get(server.url + "/query")
        assert status == 400
        assert "error" in json.loads(body)

    def test_syntax_error_is_400(self, server):
        status, _, _ = _get(_query_url(server, "year >>>> nonsense"))
        assert status == 400

    def test_bad_timeout_parameter_is_400(self, server):
        status, _, _ = _get(
            _query_url(server, "year >= 1990", timeout_ms="soon")
        )
        assert status == 400

    def test_expired_deadline_is_504(self, server):
        status, _, body = _get(
            _query_url(server, "year >= 1900", timeout_ms="0.000001")
        )
        assert status == 504
        payload = json.loads(body)
        assert payload["error"] == "query-timeout"

    def test_row_budget_is_422(self, server):
        status, _, body = _get(
            _query_url(server, "year >= 1900", max_rows="10")
        )
        assert status == 422
        assert json.loads(body)["error"] == "budget-exceeded"

    def test_root_lists_query_endpoint(self, server):
        _, _, body = _get(server.url + "/")
        assert "/query" in json.loads(body)["endpoints"]


class TestLoadShedding:
    def test_saturated_gate_sheds_with_429_and_retry_after(self, server, service):
        # Occupy every slot so the zero-depth queue sheds on the spot.
        service.admission.acquire()
        service.admission.acquire()
        try:
            status, headers, body = _get(_query_url(server, "year >= 1990"))
        finally:
            service.admission.release()
            service.admission.release()
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        payload = json.loads(body)
        assert payload["error"] == "admission-rejected"
        assert payload["reason"] == "queue-full"

    def test_healthz_degrades_while_the_breaker_is_open(self, server, service):
        service.breaker.record("shed")
        assert service.breaker.open
        status, _, body = _get(server.url + "/healthz")
        assert status == 200  # overload is not a liveness failure
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert payload["breaker"]["open"] is True

    def test_healthz_ok_with_breaker_closed(self, server, service):
        service.breaker.record("ok")
        status, _, body = _get(server.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["breaker"]["open"] is False


class TestShutdown:
    def test_stop_joins_the_server_thread(self, service):
        srv = TelemetryServer(port=0, query_service=service)
        srv.start()
        assert srv.stop() is True

"""Retry-with-backoff: classification, bounds, budget, and metrics.

The contract under test (see ``docs/resilience.md``):

* only *transient* failures are retried; everything else re-raises
  immediately and untouched;
* exhaustion — attempts or budget — re-raises the **original** first
  error, not the latest one;
* ``resilience.retry.attempts`` counts only attempts on calls that
  failed at least once, so a fault injected to fail twice shows exactly
  three attempts;
* backoff sleeps stay inside ``[base_delay_s, max_delay_s]``.
"""

import errno
import random

import pytest

from repro.obs import metrics
from repro.resilience import RetryBudget, RetryPolicy, is_transient
from repro.storage.faultfs import InjectedFault, TransientInjectedFault


def _counter(name):
    return metrics.counter(name)


class _Flaky:
    """Fails ``failures`` times with ``exc_factory()``, then succeeds."""

    def __init__(self, failures, exc_factory):
        self.failures = failures
        self.exc_factory = exc_factory
        self.calls = 0
        self.raised = []

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            exc = self.exc_factory()
            self.raised.append(exc)
            raise exc
        return "ok"


def _eagain():
    return OSError(errno.EAGAIN, "resource temporarily unavailable")


def _fast_policy(**kwargs):
    kwargs.setdefault("base_delay_s", 0.0)
    kwargs.setdefault("max_delay_s", 0.0)
    return RetryPolicy(**kwargs)


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            OSError(errno.EINTR, "interrupted"),
            OSError(errno.EAGAIN, "try again"),
            OSError(errno.EWOULDBLOCK, "would block"),
            TransientInjectedFault("fail_before_fsync", "/tmp/x"),
        ],
    )
    def test_transient(self, exc):
        assert is_transient(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            OSError(errno.ENOSPC, "no space left on device"),
            InjectedFault("partial_write", "/tmp/x"),
            ValueError("nope"),
            RuntimeError("nope"),
        ],
    )
    def test_permanent(self, exc):
        assert not is_transient(exc)


class TestRetryPolicy:
    def test_clean_success_moves_no_metric(self):
        attempts = _counter("resilience.retry.attempts")
        before = attempts.value
        assert _fast_policy().call(lambda: 42) == 42
        assert attempts.value == before

    def test_two_failures_heal_with_exactly_three_attempts(self):
        attempts = _counter("resilience.retry.attempts")
        recovered = _counter("resilience.retry.recovered")
        flaky = _Flaky(2, _eagain)
        assert _fast_policy(max_attempts=4).call(flaky) == "ok"
        assert flaky.calls == 3
        assert attempts.value == 3
        assert recovered.value == 1

    def test_permanent_error_is_never_retried(self):
        attempts = _counter("resilience.retry.attempts")
        flaky = _Flaky(10, lambda: ValueError("permanent"))
        with pytest.raises(ValueError):
            _fast_policy().call(flaky)
        assert flaky.calls == 1
        assert attempts.value == 0

    def test_permanent_error_mid_retry_raises_it(self):
        # Transient first, permanent second: the permanent one surfaces.
        errors = iter([_eagain(), ValueError("disk on fire")])

        def fn():
            raise next(errors)

        with pytest.raises(ValueError):
            _fast_policy().call(fn)

    def test_exhaustion_reraises_the_original_error(self):
        exhausted = _counter("resilience.retry.exhausted")
        attempts = _counter("resilience.retry.attempts")
        flaky = _Flaky(10, _eagain)
        with pytest.raises(OSError) as exc_info:
            _fast_policy(max_attempts=3).call(flaky)
        assert exc_info.value is flaky.raised[0]
        assert flaky.calls == 3
        assert attempts.value == 3
        assert exhausted.value == 1

    def test_budget_denial_reraises_the_original_error(self):
        denied = _counter("resilience.retry.denied")
        budget = RetryBudget(capacity=1.0, refill_per_s=1e-9)
        flaky = _Flaky(10, _eagain)
        with pytest.raises(OSError) as exc_info:
            _fast_policy(max_attempts=5, budget=budget).call(flaky)
        # One retry spent the only token; the next was denied.
        assert flaky.calls == 2
        assert exc_info.value is flaky.raised[0]
        assert denied.value == 1

    def test_sleeps_stay_inside_the_bounds(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.resilience.retry.time.sleep", lambda s: sleeps.append(s)
        )
        policy = RetryPolicy(
            max_attempts=6,
            base_delay_s=0.001,
            max_delay_s=0.05,
            rng=random.Random(42),
        )
        flaky = _Flaky(10, _eagain)
        with pytest.raises(OSError):
            policy.call(flaky)
        assert len(sleeps) == 5  # one sleep before each retry
        assert all(0.001 <= s <= 0.05 for s in sleeps)

    def test_wrap_applies_the_policy_per_call(self):
        flaky = _Flaky(1, _eagain)
        wrapped = _fast_policy().wrap(lambda: flaky())
        assert wrapped() == "ok"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -0.1},
            {"base_delay_s": 0.2, "max_delay_s": 0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRetryBudget:
    def test_spend_down_to_empty(self):
        budget = RetryBudget(capacity=2.0, refill_per_s=1e-9)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.tokens < 1.0

    def test_tokens_refill_over_time(self):
        budget = RetryBudget(capacity=5.0, refill_per_s=1000.0)
        for _ in range(5):
            budget.try_spend()
        # At 1000 tokens/s the bucket refills almost immediately.
        deadline_tokens = budget.tokens
        assert deadline_tokens >= 0.0
        import time

        time.sleep(0.01)
        assert budget.try_spend()

    def test_capacity_is_a_ceiling(self):
        budget = RetryBudget(capacity=3.0, refill_per_s=1000.0)
        import time

        time.sleep(0.01)
        assert budget.tokens <= 3.0

    @pytest.mark.parametrize("kwargs", [{"capacity": 0}, {"refill_per_s": 0}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryBudget(**kwargs)

"""Shared fixtures for the resilience suite."""

from __future__ import annotations

import pytest

from repro.obs import logging as obs_logging
from repro.obs import metrics, tracing


@pytest.fixture(autouse=True)
def clean_obs():
    """Zero the observability state so metric-delta assertions are exact."""
    metrics.reset()
    tracing.reset()
    obs_logging.reset()
    yield
    metrics.reset()
    tracing.reset()
    obs_logging.reset()

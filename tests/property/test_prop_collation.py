"""Property-based tests for collation and the index builder."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.citation.model import Citation
from repro.core.builder import build_index
from repro.core.collation import CollationOptions, collation_key, sort_entries
from repro.core.entry import IndexEntry, PublicationRecord
from repro.names.model import PersonName

surnames = st.text(alphabet=string.ascii_letters + "'-", min_size=1, max_size=12).filter(
    lambda s: s.strip("'- ") != ""
)
givens = st.text(alphabet=string.ascii_letters + ". ", max_size=10)
suffixes = st.sampled_from(["", "Jr.", "Sr.", "II", "III"])


@st.composite
def names(draw):
    return PersonName(
        surname=draw(surnames),
        given=draw(givens),
        suffix=draw(suffixes),
        is_student=draw(st.booleans()),
    )


@st.composite
def entries(draw):
    return IndexEntry(
        author=draw(names()),
        title=draw(st.text(min_size=1, max_size=30)),
        citation=Citation(
            volume=draw(st.integers(min_value=1, max_value=99)),
            page=draw(st.integers(min_value=1, max_value=1500)),
            year=draw(st.integers(min_value=1900, max_value=2020)),
        ),
        is_student_work=draw(st.booleans()),
    )


class TestCollationProperties:
    @given(st.lists(entries(), max_size=40), st.randoms())
    @settings(max_examples=60)
    def test_sort_is_permutation_invariant(self, items, rnd):
        baseline = sort_entries(items)
        shuffled = items[:]
        rnd.shuffle(shuffled)
        assert sort_entries(shuffled) == baseline

    @given(st.lists(entries(), max_size=40))
    def test_sort_is_idempotent(self, items):
        once = sort_entries(items)
        assert sort_entries(once) == once

    @given(st.lists(entries(), max_size=40))
    def test_keys_nondecreasing_after_sort(self, items):
        ordered = sort_entries(items)
        keys = [collation_key(e) for e in ordered]
        assert keys == sorted(keys)

    @given(entries(), st.sampled_from([
        CollationOptions(),
        CollationOptions(mc_as_mac=True),
        CollationOptions(ignore_suffix=True),
        CollationOptions(ignore_student_flag=True),
    ]))
    def test_key_is_deterministic(self, entry, options):
        assert collation_key(entry, options) == collation_key(entry, options)


@st.composite
def publication_records(draw):
    n_authors = draw(st.integers(min_value=1, max_value=3))
    return PublicationRecord(
        record_id=draw(st.integers(min_value=1, max_value=10**6)),
        title=draw(st.text(min_size=1, max_size=40).filter(lambda t: t.strip())),
        authors=tuple(draw(names()) for _ in range(n_authors)),
        citation=Citation(
            volume=draw(st.integers(min_value=1, max_value=99)),
            page=draw(st.integers(min_value=1, max_value=1500)),
            year=draw(st.integers(min_value=1900, max_value=2020)),
        ),
        is_student_work=draw(st.booleans()),
    )


class TestBuilderProperties:
    @given(st.lists(publication_records(), max_size=25))
    @settings(max_examples=50)
    def test_every_author_of_every_record_appears(self, records):
        index = build_index(records)
        built_keys = {e.row_key() for e in index}
        for record in records:
            for author in record.authors:
                key = (
                    author.identity_key(),
                    record.title.strip().casefold(),
                    record.citation,
                )
                # Builder strips titles; mirror that in the expected key.
                assert any(k[0] == key[0] and k[2] == key[2] for k in built_keys)

    @given(st.lists(publication_records(), max_size=25))
    @settings(max_examples=50)
    def test_no_duplicate_rows(self, records):
        index = build_index(records)
        keys = [e.row_key() for e in index]
        assert len(keys) == len(set(keys))

    @given(st.lists(publication_records(), max_size=25))
    @settings(max_examples=50)
    def test_groups_partition_entries(self, records):
        index = build_index(records)
        grouped = [e for g in index.groups() for e in g.entries]
        assert grouped == list(index.entries)

    @given(st.lists(publication_records(), max_size=20))
    @settings(max_examples=50)
    def test_statistics_consistent(self, records):
        index = build_index(records)
        stats = index.statistics()
        assert stats.entry_count == len(index)
        assert stats.author_count == len(index.groups())
        assert sum(stats.entries_by_letter.values()) == len(index)
        assert sum(stats.entries_by_volume.values()) == len(index)
        assert 0.0 <= stats.student_share <= 1.0

"""Property: fingerprints depend on query *shape*, never on literals.

Random expression trees are fingerprinted twice — once as drawn, once
with every literal replaced by a fresh random literal of the same type
and (for AND/OR chains) the operand order shuffled — and the two
fingerprints must collide.  A second property asserts the fingerprint
round-trips through the parser: rendering noise (whitespace) never
splits a shape.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.ast_nodes import (
    And,
    Comparison,
    Expr,
    Like,
    Membership,
    Not,
    Operator,
    Or,
    Query,
)
from repro.query.fingerprint import fingerprint_of
from repro.query.parser import parse_query

_FIELDS = ["name", "year", "tags", "volume"]
_COMPARE_OPS = [
    Operator.EQ,
    Operator.NE,
    Operator.LT,
    Operator.LE,
    Operator.GT,
    Operator.GE,
    Operator.MATCH,
]

_literals = st.one_of(
    st.integers(min_value=-5000, max_value=5000),
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
)


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        kind = draw(st.sampled_from(["cmp", "in", "like"]))
        field = draw(st.sampled_from(_FIELDS))
        if kind == "cmp":
            return Comparison(field, draw(st.sampled_from(_COMPARE_OPS)), draw(_literals))
        if kind == "in":
            values = draw(st.lists(_literals, min_size=1, max_size=4))
            return Membership(field, tuple(values))
        return Like(field, draw(st.text(alphabet="ab%_", min_size=1, max_size=5)))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(expressions(depth=depth + 1)))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return And(left, right) if kind == "and" else Or(left, right)


def _relitteral(expr: Expr, rng: random.Random) -> Expr:
    """The same expression shape with fresh literals and shuffled chains."""
    if isinstance(expr, Comparison):
        value = (
            rng.randint(-5000, 5000)
            if isinstance(expr.value, int)
            else "".join(rng.choice("stuvwx") for _ in range(4))
        )
        return Comparison(expr.field, expr.op, value)
    if isinstance(expr, Membership):
        return Membership(
            expr.field, tuple(rng.randint(0, 99) for _ in range(rng.randint(1, 6)))
        )
    if isinstance(expr, Like):
        return Like(expr.field, "".join(rng.choice("cd%_") for _ in range(3)))
    if isinstance(expr, Not):
        return Not(_relitteral(expr.operand, rng))
    if isinstance(expr, (And, Or)):
        left = _relitteral(expr.left, rng)
        right = _relitteral(expr.right, rng)
        if rng.random() < 0.5 and not isinstance(expr.left, type(expr)) \
                and not isinstance(expr.right, type(expr)):
            # Swapping operands must not change the fingerprint
            # (swap only at non-chain nodes to preserve chain flattening).
            left, right = right, left
        return type(expr)(left, right)
    raise AssertionError(f"unhandled node {expr!r}")


@given(expr=expressions(), seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=200, deadline=None)
def test_fingerprint_ignores_literals_and_operand_order(expr, seed):
    rng = random.Random(seed)
    original = Query(where=expr, limit=10)
    relitteraled = Query(where=_relitteral(expr, rng), limit=9999)
    assert fingerprint_of(original) == fingerprint_of(relitteraled)


@given(
    year=st.integers(min_value=0, max_value=9999),
    pad=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_fingerprint_survives_parse_rendering_noise(year, pad):
    spaces = " " * pad
    noisy = parse_query(f"year{spaces}>={spaces}{year}{spaces}LIMIT{spaces}7")
    clean = parse_query("year >= 1978 LIMIT 1")
    assert fingerprint_of(noisy)[0] == fingerprint_of(clean)[0]

"""Property tests for corpus merging."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.citation.model import Citation
from repro.core.entry import PublicationRecord
from repro.corpus.merge import ConflictPolicy, merge_corpora, renumber
from repro.names.model import PersonName


@st.composite
def records(draw):
    return PublicationRecord(
        record_id=draw(st.integers(min_value=1, max_value=30)),
        title=draw(st.sampled_from(["Alpha", "Beta", "Gamma", "Delta"])),
        authors=(PersonName(surname=draw(st.sampled_from(["Ash", "Birch", "Cedar"]))),),
        citation=Citation(
            volume=draw(st.integers(min_value=69, max_value=95)),
            page=draw(st.integers(min_value=1, max_value=99)),
            year=draw(st.integers(min_value=1966, max_value=1993)),
        ),
        is_student_work=draw(st.booleans()),
    )


def dedup_ids(items):
    seen = {}
    for record in items:
        seen.setdefault(record.record_id, record)
    return list(seen.values())


corpora = st.lists(records(), max_size=15).map(dedup_ids)
policies = st.sampled_from([ConflictPolicy.KEEP_EXISTING, ConflictPolicy.REPLACE])


@given(corpora, corpora, policies)
@settings(max_examples=150, deadline=None)
def test_merge_ids_unique_and_complete(base, incoming, policy):
    result = merge_corpora(base, incoming, on_conflict=policy)
    ids = [r.record_id for r in result.records]
    assert len(ids) == len(set(ids))
    assert set(ids) == {r.record_id for r in base} | {r.record_id for r in incoming}


@given(corpora, corpora, policies)
@settings(max_examples=100, deadline=None)
def test_merge_accounting_adds_up(base, incoming, policy):
    result = merge_corpora(base, incoming, on_conflict=policy)
    assert result.added + result.unchanged + result.conflict_count == len(incoming)
    assert len(result.records) == len(base) + result.added


@given(corpora, corpora)
@settings(max_examples=100, deadline=None)
def test_merge_idempotent_after_replace(base, incoming):
    once = merge_corpora(base, incoming, on_conflict=ConflictPolicy.REPLACE)
    twice = merge_corpora(once.records, incoming, on_conflict=ConflictPolicy.REPLACE)
    assert twice.added == 0
    assert twice.conflict_count == 0
    assert twice.records == once.records


@given(corpora, corpora)
@settings(max_examples=100, deadline=None)
def test_keep_existing_never_mutates_base_content(base, incoming):
    result = merge_corpora(base, incoming, on_conflict=ConflictPolicy.KEEP_EXISTING)
    by_id = {r.record_id: r for r in result.records}
    for record in base:
        assert by_id[record.record_id] == record


@given(corpora, st.integers(min_value=1, max_value=1000))
@settings(max_examples=80, deadline=None)
def test_renumber_gives_sequential_ids_and_keeps_content(items, start):
    renumbered = renumber(items, start=start)
    assert [r.record_id for r in renumbered] == list(range(start, start + len(items)))
    for before, after in zip(items, renumbered):
        assert after.title == before.title
        assert after.citation == before.citation

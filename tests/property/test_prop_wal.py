"""Property-based tests for the write-ahead log."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.wal import WriteAheadLog

payloads = st.lists(
    st.dictionaries(
        keys=st.text(min_size=1, max_size=8),
        values=st.one_of(
            st.integers(min_value=-10**6, max_value=10**6),
            st.text(max_size=20),
            st.booleans(),
            st.none(),
        ),
        max_size=5,
    ),
    max_size=30,
)


@given(payloads)
@settings(max_examples=50)
def test_replay_returns_exactly_what_was_appended(tmp_path_factory, entries):
    path = tmp_path_factory.mktemp("wal") / "t.wal"
    with WriteAheadLog(path) as wal:
        for entry in entries:
            wal.append(entry)
    assert [e.payload for e in WriteAheadLog.replay_path(path)] == entries


@given(payloads, st.integers(min_value=1, max_value=200))
@settings(max_examples=50)
def test_any_tail_truncation_yields_a_prefix(tmp_path_factory, entries, cut):
    """Chopping arbitrarily many bytes off the end (a crash) must recover a
    prefix of the appended entries — never garbage, never an exception."""
    path = tmp_path_factory.mktemp("wal") / "t.wal"
    with WriteAheadLog(path) as wal:
        for entry in entries:
            wal.append(entry)
    raw = path.read_bytes()
    path.write_bytes(raw[: max(0, len(raw) - cut)])
    recovered = [e.payload for e in WriteAheadLog.replay_path(path)]
    assert recovered == entries[: len(recovered)]
    assert len(recovered) <= len(entries)


@given(payloads)
@settings(max_examples=30)
def test_append_many_equals_sequential_appends(tmp_path_factory, entries):
    dir_ = tmp_path_factory.mktemp("wal")
    a, b = dir_ / "a.wal", dir_ / "b.wal"
    with WriteAheadLog(a) as wal:
        for entry in entries:
            wal.append(entry)
    with WriteAheadLog(b) as wal:
        wal.append_many(entries)
    assert a.read_bytes() == b.read_bytes()

"""Property tests for the inverted index and search engine."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.inverted import InvertedIndex, analyze

words = st.sampled_from(
    ["coal", "mining", "lawx", "water", "rights", "black", "lung", "taxes",
     "the", "of", "reform", "appalachia"]
)
titles = st.lists(words, min_size=1, max_size=8).map(" ".join)
corpora = st.lists(titles, max_size=25)


def _build(docs):
    index = InvertedIndex()
    for i, title in enumerate(docs):
        index.add(i, title)
    return index


@given(corpora, st.lists(words, min_size=1, max_size=3))
@settings(max_examples=150, deadline=None)
def test_and_results_contain_every_term(docs, terms):
    index = _build(docs)
    significant = [t for t in terms if analyze(t)]
    hits = index.search_and(terms)
    for doc_id in hits:
        doc_terms = {term for term, _ in analyze(docs[doc_id])}
        for term in significant:
            assert term in doc_terms


@given(corpora, st.lists(words, min_size=1, max_size=3))
@settings(max_examples=150, deadline=None)
def test_and_subset_of_or(docs, terms):
    index = _build(docs)
    assert index.search_and(terms) <= index.search_or(terms)


@given(corpora, words)
@settings(max_examples=100, deadline=None)
def test_or_matches_bruteforce(docs, term):
    index = _build(docs)
    expected = {
        i for i, title in enumerate(docs)
        if term in {t for t, _ in analyze(title)}
    }
    assert index.search_or([term]) == expected


@given(corpora, st.data())
@settings(max_examples=80, deadline=None)
def test_remove_makes_document_unfindable(docs, data):
    index = _build(docs)
    if not docs:
        return
    victim = data.draw(st.integers(min_value=0, max_value=len(docs) - 1))
    index.remove(victim)
    for term, _ in analyze(docs[victim]):
        assert victim not in index.search_or([term])
    assert index.document_count == len(docs) - 1


@given(corpora)
@settings(max_examples=60, deadline=None)
def test_phrase_hits_are_and_hits(docs):
    index = _build(docs)
    phrase = ["coal", "mining"]
    assert set(index.search_phrase(phrase)) <= index.search_and(phrase)


@given(corpora)
@settings(max_examples=60, deadline=None)
def test_frequencies_consistent(docs):
    index = _build(docs)
    for term in index.vocabulary():
        postings = index.postings(term)
        assert index.document_frequency(term) == len(postings)
        for doc_id, positions in postings.items():
            assert index.term_frequency(term, doc_id) == len(positions)
            assert positions == sorted(positions)

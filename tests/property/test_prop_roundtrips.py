"""Property-based round-trip tests: citations, names, records, renderers."""

import string

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.citation.model import Citation
from repro.citation.parser import parse_citation
from repro.core.builder import build_index
from repro.core.entry import PublicationRecord
from repro.corpus.ingest import parse_index_text
from repro.names.model import PersonName
from repro.names.parser import parse_name

citations = st.builds(
    Citation,
    volume=st.integers(min_value=1, max_value=999),
    page=st.integers(min_value=1, max_value=9999),
    year=st.integers(min_value=1850, max_value=2150),
)


class TestCitationRoundTrip:
    @given(citations)
    def test_columnar_roundtrip(self, citation):
        assert parse_citation(citation.columnar()) == citation

    @given(citations)
    def test_bluebook_roundtrip(self, citation):
        from repro.citation.model import WVLR

        assert parse_citation(citation.bluebook(WVLR)) == citation


_surname_alpha = string.ascii_uppercase + string.ascii_lowercase


@st.composite
def clean_names(draw):
    """Names in the shape the artifact prints (parseable by construction).

    Surnames spelled like generational suffixes ("Iv", "Jr") are excluded:
    ``Aaa A. Iv`` is genuinely ambiguous in direct form and the parser
    rightly reads the suffix.
    """
    from repro.names.model import SUFFIX_SPELLINGS

    surname = draw(
        st.text(alphabet=_surname_alpha, min_size=2, max_size=10).filter(
            lambda s: s.casefold() not in SUFFIX_SPELLINGS
        )
    )
    surname = surname[0].upper() + surname[1:].lower()
    given_first = draw(st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=1))
    given_rest = draw(st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=8))
    initial = draw(st.sampled_from(string.ascii_uppercase))
    given = f"{given_first}{given_rest} {initial}."
    return PersonName(
        surname=surname,
        given=given,
        suffix=draw(st.sampled_from(["", "Jr.", "Sr.", "II", "III", "IV"])),
        honorific=draw(st.sampled_from(["", "Hon.", "Dr."])),
        is_student=draw(st.booleans()),
    )


class TestNameRoundTrip:
    @given(clean_names())
    def test_inverted_reparse_preserves_identity(self, name):
        reparsed = parse_name(name.inverted(student_marker=True))
        assert reparsed.identity_key() == name.identity_key()
        assert reparsed.is_student == name.is_student
        assert reparsed.honorific == name.honorific

    @given(clean_names())
    def test_direct_reparse_preserves_identity(self, name):
        # A direct-form rendering with a suffix contains a comma, so the
        # caller must say which form it is; inference would read it as
        # inverted.
        from repro.names.model import NameForm

        reparsed = parse_name(name.direct(), form=NameForm.DIRECT)
        assert reparsed.surname.casefold() == name.surname.casefold()
        assert reparsed.suffix == name.suffix


@st.composite
def records(draw):
    title_words = draw(
        st.lists(
            st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=9),
            min_size=2,
            max_size=8,
        )
    )
    title = " ".join(w.capitalize() for w in title_words)
    return PublicationRecord(
        record_id=draw(st.integers(min_value=1, max_value=10**6)),
        title=title,
        authors=(draw(clean_names()),),
        citation=draw(
            st.builds(
                Citation,
                volume=st.integers(min_value=1, max_value=99),
                page=st.integers(min_value=1, max_value=1499),
                year=st.integers(min_value=1900, max_value=1999),
            )
        ),
        is_student_work=draw(st.booleans()),
    )


class TestStoreDictRoundTrip:
    @given(records())
    def test_to_from_store_dict(self, record):
        back = PublicationRecord.from_store_dict(record.to_store_dict())
        assert back.title == record.title
        assert back.citation == record.citation
        assert back.is_student_work == record.is_student_work
        assert back.authors[0].identity_key() == record.authors[0].identity_key()


class TestRenderIngestRoundTrip:
    @given(st.lists(records(), min_size=1, max_size=12, unique_by=lambda r: r.record_id))
    @settings(max_examples=40, deadline=None)
    def test_text_render_reingests_same_rows(self, recs):
        index = build_index(recs)
        assume(len(index) > 0)
        text = index.render("text", paginated=False)
        report = parse_index_text(text)
        got = {
            (r.authors[0].surname.casefold(), r.citation) for r in report.records
        }
        want = {(e.author.surname.casefold(), e.citation) for e in index}
        assert got == want

    @given(st.lists(records(), min_size=1, max_size=12, unique_by=lambda r: r.record_id))
    @settings(max_examples=30, deadline=None)
    def test_json_render_is_loadable_and_complete(self, recs):
        import json

        index = build_index(recs)
        rows = json.loads(index.render("json"))
        assert len(rows) == len(index)

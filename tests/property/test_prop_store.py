"""Stateful property test: the record store against a dict model.

Hypothesis drives arbitrary interleavings of insert/upsert/update/delete/
index creation/snapshot, checking after every step that the store agrees
with a plain-dict model — including after a simulated restart (close and
reopen from disk), which exercises WAL replay and snapshot recovery.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.storage.schema import Field, FieldType, Schema
from repro.storage.store import IndexKind, RecordStore

SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("name", FieldType.STRING),
        Field("year", FieldType.INT),
    ],
    primary_key="id",
)

keys = st.integers(min_value=0, max_value=20)
names = st.sampled_from(["a", "b", "c", "d"])
years = st.integers(min_value=1960, max_value=2000)


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        import tempfile

        self._dir = tempfile.mkdtemp(prefix="repro-store-prop-")
        self.store = RecordStore(SCHEMA, self._dir)
        self.model: dict[int, dict] = {}

    def teardown(self):
        import shutil

        self.store.close()
        shutil.rmtree(self._dir, ignore_errors=True)

    @initialize()
    def create_indexes(self):
        self.store.create_index("name", IndexKind.HASH)
        self.store.create_index("year", IndexKind.BTREE)

    @rule(key=keys, name=names, year=years)
    def upsert(self, key, name, year):
        record = {"id": key, "name": name, "year": year}
        self.store.upsert(record)
        self.model[key] = record

    @rule(key=keys)
    def delete(self, key):
        if key in self.model:
            self.store.delete(key)
            del self.model[key]
        else:
            from repro.errors import RecordNotFoundError
            import pytest

            with pytest.raises(RecordNotFoundError):
                self.store.delete(key)

    @rule(key=keys, year=years)
    def update_year(self, key, year):
        if key in self.model:
            self.store.update(key, {"year": year})
            self.model[key]["year"] = year

    @rule()
    def snapshot(self):
        self.store.snapshot()

    @rule()
    def restart(self):
        self.store.close()
        self.store = RecordStore(SCHEMA, self._dir)

    @invariant()
    def contents_match(self):
        assert len(self.store) == len(self.model)
        for key, record in self.model.items():
            assert self.store.get(key) == record

    @invariant()
    def hash_index_consistent(self):
        if not self.store.has_index("name"):
            return  # before initialize or right after a restart rebuilds
        for name in ("a", "b", "c", "d"):
            got = sorted(r["id"] for r in self.store.find_by("name", name))
            want = sorted(k for k, r in self.model.items() if r["name"] == name)
            assert got == want

    @invariant()
    def btree_range_consistent(self):
        if not self.store.has_index("year"):
            return
        got = [r["id"] for r in self.store.range_by("year", 1970, 1990)]
        want = sorted(
            (r["year"], k) for k, r in self.model.items() if 1970 <= r["year"] <= 1990
        )
        assert sorted(got) == sorted(k for _, k in want)
        years_out = [r["year"] for r in self.store.range_by("year", 1970, 1990)]
        assert years_out == sorted(years_out)


TestStoreMachine = StoreMachine.TestCase
TestStoreMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

"""Property tests: cursor pagination partitions the result exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.executor import QueryEngine
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.store import IndexKind, RecordStore

SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("name", FieldType.STRING),
        Field("year", FieldType.INT),
    ],
    primary_key="id",
)

rows_strategy = st.lists(
    st.tuples(st.sampled_from("abcd"), st.integers(min_value=1960, max_value=1990)),
    max_size=40,
)


def _engine(rows):
    store = RecordStore(SCHEMA)
    for i, (name, year) in enumerate(rows):
        store.insert({"id": i, "name": name, "year": year})
    store.create_index("year", IndexKind.BTREE)
    return QueryEngine(store)


def _drain(engine, query, page_size):
    out = []
    cursor = None
    for _ in range(1000):  # hard bound against cursor loops
        page = engine.execute_paged(query, page_size=page_size, cursor=cursor)
        out.extend(page.rows)
        if not page.has_more:
            return out, True
        assert len(page.rows) == page_size  # only the last page may be short
        cursor = page.next_cursor
    return out, False


@given(
    rows_strategy,
    st.integers(min_value=1, max_value=7),
    st.sampled_from(["*", "year >= 1975", "* ORDER BY year", "* ORDER BY year DESC",
                     'name = "a" OR name = "b"']),
)
@settings(max_examples=120, deadline=None)
def test_pages_partition_the_result(rows, page_size, query):
    engine = _engine(rows)
    paged, terminated = _drain(engine, query, page_size)
    assert terminated
    direct = engine.execute(query)
    assert sorted(r["id"] for r in paged) == sorted(r["id"] for r in direct)
    # no duplicates across pages
    ids = [r["id"] for r in paged]
    assert len(ids) == len(set(ids))


@given(rows_strategy, st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_order_consistent_across_pages(rows, page_size):
    engine = _engine(rows)
    paged, _ = _drain(engine, "* ORDER BY year", page_size)
    keys = [(r["year"], r["id"]) for r in paged]
    assert keys == sorted(keys)

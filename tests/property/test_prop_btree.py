"""Property-based tests for the B-tree: model-checked against dict/list."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage.btree import BTree

keys = st.integers(min_value=-50, max_value=50)
values = st.integers(min_value=0, max_value=9)
orders = st.integers(min_value=3, max_value=12)


@given(orders, st.lists(st.tuples(keys, values), max_size=200))
def test_items_always_sorted(order, pairs):
    tree = BTree(order=order)
    for k, v in pairs:
        tree.insert(k, v)
    out_keys = [k for k, _ in tree.items()]
    assert out_keys == sorted(out_keys)
    tree.validate()


@given(orders, st.lists(st.tuples(keys, values), max_size=200))
def test_search_matches_model(order, pairs):
    tree = BTree(order=order)
    model: dict[int, list[int]] = {}
    for k, v in pairs:
        tree.insert(k, v)
        model.setdefault(k, []).append(v)
    for k, expected in model.items():
        assert sorted(tree.search(k)) == sorted(expected)
    assert len(tree) == sum(len(v) for v in model.values())


@given(
    orders,
    st.lists(st.tuples(keys, values), max_size=150),
    keys,
    keys,
    st.booleans(),
    st.booleans(),
)
def test_range_matches_model(order, pairs, low, high, inc_low, inc_high):
    tree = BTree(order=order)
    model: list[tuple[int, int]] = []
    for k, v in pairs:
        tree.insert(k, v)
        model.append((k, v))

    got = [k for k, _ in tree.range(low, high, include_low=inc_low, include_high=inc_high)]
    want = sorted(
        k
        for k, _ in model
        if (k > low or (k == low and inc_low)) and (k < high or (k == high and inc_high))
    )
    assert got == want


class BTreeMachine(RuleBasedStateMachine):
    """Stateful test: arbitrary interleavings of insert/remove vs. a model."""

    def __init__(self):
        super().__init__()
        self.tree = BTree(order=4)
        self.model: dict[int, list[int]] = {}

    @rule(key=keys, value=values)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model.setdefault(key, []).append(value)

    @rule(key=keys, value=values)
    def remove_value(self, key, value):
        expected = value in self.model.get(key, [])
        assert self.tree.remove(key, value) is expected
        if expected:
            self.model[key].remove(value)
            if not self.model[key]:
                del self.model[key]

    @rule(key=keys)
    def remove_key(self, key):
        expected = key in self.model
        assert self.tree.remove(key) is expected
        self.model.pop(key, None)

    @invariant()
    def structure_valid(self):
        self.tree.validate()

    @invariant()
    def contents_match(self):
        assert list(self.tree.keys()) == sorted(self.model)


TestBTreeMachine = BTreeMachine.TestCase
TestBTreeMachine.settings = settings(max_examples=40, stateful_step_count=30)

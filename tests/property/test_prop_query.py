"""Property-based planner/scan equivalence over random data and queries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.ast_nodes import And, Comparison, Not, Operator, Or, Query
from repro.query.executor import QueryEngine
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.store import IndexKind, RecordStore

_SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("name", FieldType.STRING),
        Field("year", FieldType.INT),
        Field("tags", FieldType.STRING_LIST, required=False),
    ],
    primary_key="id",
)

_NAMES = ["smith", "jones", "li", "garcia", "chen"]
_TAGS = ["coal", "tax", "tort", "labor"]

rows = st.lists(
    st.tuples(
        st.sampled_from(_NAMES),
        st.integers(min_value=1960, max_value=2000),
        st.lists(st.sampled_from(_TAGS), max_size=3),
    ),
    max_size=40,
)


@st.composite
def expressions(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        field = draw(st.sampled_from(["name", "year", "tags"]))
        if field == "name":
            op = draw(st.sampled_from([Operator.EQ, Operator.NE, Operator.MATCH]))
            value = draw(st.sampled_from(_NAMES + ["nobody"]))
        elif field == "year":
            op = draw(st.sampled_from(list(Operator)))
            value = draw(st.integers(min_value=1955, max_value=2005))
        else:
            op = draw(st.sampled_from([Operator.MATCH, Operator.EQ]))
            value = draw(st.sampled_from(_TAGS + ["missing"]))
        return Comparison(field, op, value)
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(expressions(depth=depth + 1)))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return And(left, right) if kind == "and" else Or(left, right)


@st.composite
def queries(draw):
    return Query(
        where=draw(st.one_of(st.none(), expressions())),
        order_by=draw(st.sampled_from([None, "year", "name", "id"])),
        descending=draw(st.booleans()),
        limit=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=10))),
    )


def _build_engines(data):
    indexed = RecordStore(_SCHEMA)
    for i, (name, year, tags) in enumerate(data):
        indexed.insert({"id": i, "name": name, "year": year, "tags": tags})
    indexed.create_index("name", IndexKind.HASH)
    indexed.create_index("year", IndexKind.BTREE)
    indexed.create_index("tags", IndexKind.BTREE)
    return QueryEngine(indexed)


@given(rows, queries())
@settings(max_examples=150, deadline=None)
def test_planned_execution_equals_full_scan(data, query):
    engine = _build_engines(data)
    planned = engine.execute(query)
    scanned = engine.execute_without_indexes(query)
    if query.limit is None:
        assert sorted(r["id"] for r in planned) == sorted(r["id"] for r in scanned)
    else:
        # With LIMIT the specific rows may differ (ties), but the count
        # must agree and every planned row must satisfy the filter.
        assert len(planned) == len(scanned)
        for row in planned:
            assert query.matches(row)


@given(rows, queries())
@settings(max_examples=80, deadline=None)
def test_all_results_match_predicate(data, query):
    engine = _build_engines(data)
    for row in engine.execute(query):
        assert query.matches(row)


@given(rows, queries())
@settings(max_examples=80, deadline=None)
def test_order_by_respected(data, query):
    engine = _build_engines(data)
    rows_out = engine.execute(query)
    if query.order_by in ("year", "id"):
        values = [r[query.order_by] for r in rows_out]
        assert values == sorted(values, reverse=query.descending)


@given(rows, queries())
@settings(max_examples=60, deadline=None)
def test_limit_respected(data, query):
    engine = _build_engines(data)
    rows_out = engine.execute(query)
    if query.limit is not None:
        assert len(rows_out) <= query.limit

"""Property-based tests for the string-distance toolbox."""

from hypothesis import given
from hypothesis import strategies as st

from repro.names.similarity import (
    damerau_levenshtein,
    jaccard_ngrams,
    jaro,
    jaro_winkler,
    levenshtein,
    soundex,
)

short_text = st.text(alphabet=st.characters(codec="ascii"), max_size=20)
words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=0, max_size=15)


class TestLevenshteinProperties:
    @given(short_text)
    def test_identity(self, s):
        assert levenshtein(s, s) == 0

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(short_text, short_text)
    def test_at_least_length_difference(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text, st.integers(min_value=0, max_value=10))
    def test_banded_agrees_within_bound(self, a, b, bound):
        exact = levenshtein(a, b)
        banded = levenshtein(a, b, max_distance=bound)
        if exact <= bound:
            assert banded == exact
        else:
            assert banded == bound + 1

    @given(short_text, short_text)
    def test_zero_iff_equal(self, a, b):
        assert (levenshtein(a, b) == 0) == (a == b)


class TestDamerauProperties:
    @given(short_text, short_text)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein(a, b) <= levenshtein(a, b)

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)

    @given(short_text)
    def test_identity(self, s):
        assert damerau_levenshtein(s, s) == 0


class TestJaroProperties:
    @given(short_text, short_text)
    def test_range(self, a, b):
        assert 0.0 <= jaro(a, b) <= 1.0

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert jaro(a, b) == jaro(b, a)

    @given(short_text)
    def test_identity(self, s):
        assert jaro(s, s) == 1.0

    @given(short_text, short_text)
    def test_winkler_dominates_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12

    @given(short_text, short_text)
    def test_winkler_range(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0


class TestJaccardProperties:
    @given(words, words)
    def test_range(self, a, b):
        assert 0.0 <= jaccard_ngrams(a, b) <= 1.0

    @given(words)
    def test_identity(self, s):
        assert jaccard_ngrams(s, s) == 1.0

    @given(words, words)
    def test_symmetry(self, a, b):
        assert jaccard_ngrams(a, b) == jaccard_ngrams(b, a)


class TestSoundexProperties:
    @given(words)
    def test_shape(self, s):
        code = soundex(s)
        assert len(code) == 4
        if s:
            assert code[0] == s[0].upper()
            assert all(c.isdigit() or c == "0" for c in code[1:])

    @given(words)
    def test_case_insensitive(self, s):
        assert soundex(s) == soundex(s.upper())

"""Property tests: partial-aggregate combine and scatter-gather merges.

Two layers of the same claim — decomposing work over shards never changes
the answer:

* :class:`PartialAggregate` folded over *any* partitioning of the values,
  merged in *any* order, finalizes identically to a single whole-list fold
  (int values keep sums exact, so equality is strict).
* A :class:`ShardedQueryEngine` over a hypothesis-chosen shard count
  returns byte-identical sorted scans and aggregates to the 1-shard case,
  which is itself checked against a plain-Python ground truth.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import PartialAggregate, ShardedQueryEngine
from repro.storage import ShardedStore
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("year", FieldType.INT),
        Field("volume", FieldType.INT),
    ],
    primary_key="id",
)

values = st.lists(st.integers(min_value=-(10**9), max_value=10**9), max_size=60)
# A partitioning is expressed as a bucket index per value.
bucket_picks = st.lists(st.integers(min_value=0, max_value=7), max_size=60)


def _fold(vals) -> PartialAggregate:
    partial = PartialAggregate()
    for v in vals:
        partial.add(v)
    return partial


@given(values=values, picks=bucket_picks, merge_order=st.randoms())
@settings(max_examples=200)
def test_partial_aggregate_partition_invariant(values, picks, merge_order):
    buckets: list[list[int]] = [[] for _ in range(8)]
    for i, v in enumerate(values):
        buckets[picks[i % len(picks)] if picks else 0].append(v)
    partials = [_fold(b) for b in buckets]
    merge_order.shuffle(partials)
    merged = PartialAggregate()
    for partial in partials:
        merged.merge(partial)
    assert merged.finalize() == _fold(values).finalize()


@given(values=st.lists(st.integers(min_value=-(10**6), max_value=10**6), min_size=1, max_size=40))
@settings(max_examples=100)
def test_partial_aggregate_ground_truth(values):
    result = _fold(values).finalize()
    assert result == {
        "count": len(values),
        "sum": sum(values),
        "min": min(values),
        "max": max(values),
        "avg": sum(values) / len(values),
    }


records_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1900, max_value=1940),  # year
        st.integers(min_value=0, max_value=5),  # volume
    ),
    max_size=50,
)


@given(rows=records_strategy, shards=st.integers(min_value=2, max_value=8))
@settings(max_examples=50, deadline=None)
def test_scatter_gather_matches_single_shard(rows, shards):
    records = [
        {"id": i, "year": year, "volume": volume}
        for i, (year, volume) in enumerate(rows)
    ]
    engines = []
    try:
        for n in (1, shards):
            store = ShardedStore(SCHEMA, shards=n)
            store.put_many(records)
            engines.append(ShardedQueryEngine(store))
        one, many = engines
        for query in (
            "* ORDER BY year",
            "* ORDER BY year DESC LIMIT 7",
            "* GROUP BY volume",
            "year >= 1920 ORDER BY volume",
        ):
            assert many.execute(query) == one.execute(query), query
        if records:
            agg = many.aggregate("*", "year")
            years = [r["year"] for r in records]
            assert agg == {
                "count": len(years),
                "sum": sum(years),
                "min": min(years),
                "max": max(years),
                "avg": sum(years) / len(years),
            }
    finally:
        for engine in engines:
            engine.close()
            engine.store.close()

"""Property tests: bulk-loaded B-trees are indistinguishable from built ones."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BTree

pair_lists = st.lists(
    st.tuples(
        st.integers(min_value=-10_000, max_value=10_000),
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=3),
    ),
    max_size=120,
    unique_by=lambda kv: kv[0],
).map(lambda pairs: sorted(pairs))

orders = st.integers(min_value=3, max_value=40)


@given(pair_lists, orders)
@settings(max_examples=120, deadline=None)
def test_bulk_load_valid_and_complete(pairs, order):
    tree = BTree.from_sorted(pairs, order=order)
    tree.validate()
    assert list(tree.keys()) == [k for k, _ in pairs]
    for key, values in pairs:
        assert tree.search(key) == values


@given(pair_lists, orders)
@settings(max_examples=80, deadline=None)
def test_bulk_load_equals_insert_build(pairs, order):
    bulk = BTree.from_sorted(pairs, order=order)
    manual = BTree(order=order)
    for key, values in pairs:
        for value in values:
            manual.insert(key, value)
    assert list(bulk.items()) == list(manual.items())
    assert len(bulk) == len(manual)
    assert bulk.distinct_keys == manual.distinct_keys


@given(pair_lists, orders, st.lists(st.integers(-10_000, 10_000), max_size=30))
@settings(max_examples=60, deadline=None)
def test_bulk_loaded_tree_survives_mutation(pairs, order, extra_keys):
    tree = BTree.from_sorted(pairs, order=order)
    model = {k: list(v) for k, v in pairs}
    for key in extra_keys:
        tree.insert(key, 42)
        model.setdefault(key, []).append(42)
    for key in extra_keys[: len(extra_keys) // 2]:
        if key in model:
            tree.remove(key)
            del model[key]
    tree.validate()
    assert list(tree.keys()) == sorted(model)


flat_pairs = st.lists(
    st.tuples(
        st.integers(min_value=-10_000, max_value=10_000),
        st.integers(min_value=0, max_value=9),
    ),
    max_size=150,
).map(lambda pairs: sorted(pairs, key=lambda kv: kv[0]))

mutations = st.lists(
    st.tuples(st.sampled_from(["insert", "remove"]), st.integers(-10_000, 10_000)),
    max_size=60,
)


@given(flat_pairs, orders)
@settings(max_examples=80, deadline=None)
def test_bulk_load_flat_pairs_valid(pairs, order):
    tree = BTree.bulk_load(pairs, order=order)
    tree.validate()
    assert list(tree.items()) == pairs
    assert len(tree) == len(pairs)


@given(flat_pairs, orders, mutations)
@settings(max_examples=60, deadline=None)
def test_bulk_load_mutates_like_insert_built(pairs, order, ops):
    """The tentpole equivalence: a bulk-loaded tree and an insert-built
    tree receiving the same insert/remove sequence — driving splits and
    underflow merges from their different initial shapes — stay
    observationally identical (same items(), both valid)."""
    bulk = BTree.bulk_load(pairs, order=order)
    manual = BTree(order=order)
    for key, value in pairs:
        manual.insert(key, value)
    for op, key in ops:
        if op == "insert":
            bulk.insert(key, -1)
            manual.insert(key, -1)
        else:
            assert bulk.remove(key) == manual.remove(key)
        bulk.validate()
        manual.validate()
        assert list(bulk.items()) == list(manual.items())
    assert len(bulk) == len(manual)
    assert bulk.distinct_keys == manual.distinct_keys


@given(flat_pairs, flat_pairs, orders)
@settings(max_examples=60, deadline=None)
def test_insert_many_equals_per_insert(existing, batch, order):
    batched = BTree.bulk_load(existing, order=order)
    batched.insert_many(batch)
    batched.validate()
    manual = BTree.bulk_load(existing, order=order)
    for key, value in batch:
        manual.insert(key, value)
    assert list(batched.items()) == list(manual.items())
    assert len(batched) == len(manual)
    assert batched.distinct_keys == manual.distinct_keys

"""Property tests: bulk-loaded B-trees are indistinguishable from built ones."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BTree

pair_lists = st.lists(
    st.tuples(
        st.integers(min_value=-10_000, max_value=10_000),
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=3),
    ),
    max_size=120,
    unique_by=lambda kv: kv[0],
).map(lambda pairs: sorted(pairs))

orders = st.integers(min_value=3, max_value=40)


@given(pair_lists, orders)
@settings(max_examples=120, deadline=None)
def test_bulk_load_valid_and_complete(pairs, order):
    tree = BTree.from_sorted(pairs, order=order)
    tree.validate()
    assert list(tree.keys()) == [k for k, _ in pairs]
    for key, values in pairs:
        assert tree.search(key) == values


@given(pair_lists, orders)
@settings(max_examples=80, deadline=None)
def test_bulk_load_equals_insert_build(pairs, order):
    bulk = BTree.from_sorted(pairs, order=order)
    manual = BTree(order=order)
    for key, values in pairs:
        for value in values:
            manual.insert(key, value)
    assert list(bulk.items()) == list(manual.items())
    assert len(bulk) == len(manual)
    assert bulk.distinct_keys == manual.distinct_keys


@given(pair_lists, orders, st.lists(st.integers(-10_000, 10_000), max_size=30))
@settings(max_examples=60, deadline=None)
def test_bulk_loaded_tree_survives_mutation(pairs, order, extra_keys):
    tree = BTree.from_sorted(pairs, order=order)
    model = {k: list(v) for k, v in pairs}
    for key in extra_keys:
        tree.insert(key, 42)
        model.setdefault(key, []).append(42)
    for key in extra_keys[: len(extra_keys) // 2]:
        if key in model:
            tree.remove(key)
            del model[key]
    tree.validate()
    assert list(tree.keys()) == sorted(model)

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.entry import PublicationRecord
from repro.corpus.synthetic import SyntheticCorpus, SyntheticCorpusConfig
from repro.corpus.wvlr import load_reference_records
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.store import RecordStore


@pytest.fixture(scope="session")
def reference_records() -> list[PublicationRecord]:
    """The curated WVLR corpus (read-only; session-scoped for speed)."""
    return load_reference_records()


@pytest.fixture(scope="session")
def synthetic_records() -> list[PublicationRecord]:
    """A deterministic 400-record synthetic corpus."""
    return list(SyntheticCorpus(SyntheticCorpusConfig(size=400, seed=1234)).records())


@pytest.fixture()
def simple_schema() -> Schema:
    """A small scalar schema used across storage/query tests."""
    return Schema(
        [
            Field("id", FieldType.INT),
            Field("name", FieldType.STRING),
            Field("year", FieldType.INT),
            Field("score", FieldType.FLOAT, required=False),
            Field("active", FieldType.BOOL, required=False),
            Field("tags", FieldType.STRING_LIST, required=False),
        ],
        primary_key="id",
    )


@pytest.fixture()
def memory_store(simple_schema: Schema) -> RecordStore:
    """An empty in-memory store over ``simple_schema``."""
    return RecordStore(simple_schema)


@pytest.fixture()
def sample_records() -> list[PublicationRecord]:
    """A handful of hand-picked records exercising the edge cases."""
    return [
        PublicationRecord.create(
            1, "Habeas Corpus in West Virginia", ["Fox, Fred L., 1I*"], "69:293 (1967)"
        ),
        PublicationRecord.create(
            2,
            "A Miner's Bill of Rights",
            ["Galloway, L. Thomas", "McAteer, J. Davitt", "Webb, Richard L."],
            "80:397 (1978)",
        ),
        PublicationRecord.create(
            3, "The Delicate Balance of Freedom", ["Maxwell, Robert E."], "70:155 (1968)"
        ),
        PublicationRecord.create(
            4,
            "A Case of Treasonous Interpretation",
            ["Brotherton, Hon. W.T., Jr."],
            "90:3 (1987)",
        ),
        PublicationRecord.create(
            5,
            "The Public Trust Doctrine: A New Approach to Environmental Preservation",
            ["Van Tol, Joan E.*"],
            "81:455 (1979)",
        ),
        PublicationRecord.create(
            6,
            "Death Knell for Trageser",
            ["Webster-O'Keefe, M. Katherine*"],
            "85:371 (1983)",
        ),
    ]

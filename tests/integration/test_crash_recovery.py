"""Crash-recovery scenarios: torn writes, interleaved snapshots, batches."""

import pytest

from repro.errors import CorruptLogError
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.store import IndexKind, RecordStore

SCHEMA = Schema(
    [Field("id", FieldType.INT), Field("v", FieldType.STRING)], primary_key="id"
)


def _fill(store: RecordStore, start: int, count: int) -> None:
    for i in range(start, start + count):
        store.insert({"id": i, "v": f"value-{i}"})


class TestCrashScenarios:
    def test_recovery_preserves_every_acknowledged_write(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            _fill(store, 0, 100)
            for i in range(0, 100, 3):
                store.delete(i)
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            expected = {i for i in range(100) if i % 3 != 0}
            assert set(store.keys()) == expected

    def test_torn_write_loses_only_the_torn_entry(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            _fill(store, 0, 10)
        wal = tmp_path / "db" / "store.wal"
        wal.write_bytes(wal.read_bytes() + b'W1 0badc0de 25 {"op":"put","record"')
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert len(store) == 10

    def test_mid_log_corruption_refuses_to_open(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            _fill(store, 0, 10)
        wal = tmp_path / "db" / "store.wal"
        raw = bytearray(wal.read_bytes())
        raw[20] ^= 0xFF
        wal.write_bytes(bytes(raw))
        with pytest.raises(CorruptLogError):
            RecordStore(SCHEMA, tmp_path / "db")

    def test_snapshot_then_crash_before_more_writes(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            _fill(store, 0, 20)
            store.snapshot()
        # WAL is empty; recovery must come entirely from the snapshot.
        assert (tmp_path / "db" / "store.wal").stat().st_size == 0
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert len(store) == 20

    def test_repeated_snapshot_cycles(self, tmp_path):
        for generation in range(5):
            with RecordStore(SCHEMA, tmp_path / "db") as store:
                _fill(store, generation * 10, 10)
                store.snapshot()
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert len(store) == 50

    def test_uncommitted_transaction_invisible_after_crash(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            _fill(store, 0, 5)
            txn = store.transaction()
            txn.insert({"id": 100, "v": "buffered"})
            # never committed: simulate the process dying here
            store.close()
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert 100 not in store
            assert len(store) == 5

    def test_committed_transaction_survives(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            with store.transaction() as txn:
                for i in range(5):
                    txn.insert({"id": i, "v": "x"})
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert len(store) == 5

    def test_indexes_rebuilt_correctly_after_recovery(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            store.create_index("v", IndexKind.HASH)
            _fill(store, 0, 10)
            store.update(3, {"v": "changed"})
            store.snapshot()
            store.delete(4)
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert [r["id"] for r in store.find_by("v", "changed")] == [3]
            assert store.find_by("v", "value-4") == []
            assert [r["id"] for r in store.find_by("v", "value-5")] == [5]

    def test_sync_mode_equivalent_content(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "a", sync=True) as store:
            _fill(store, 0, 5)
        with RecordStore(SCHEMA, tmp_path / "b", sync=False) as store:
            _fill(store, 0, 5)
        a = (tmp_path / "a" / "store.wal").read_bytes()
        b = (tmp_path / "b" / "store.wal").read_bytes()
        assert a == b


class TestCheckpointCycle:
    """Checkpoint bounds WAL disk usage and survives repeated cycles."""

    def test_checkpoint_truncates_wal_chain(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            _fill(store, 0, 50)
            assert store._wal.total_size_bytes > 0
            store.checkpoint()
            assert store._wal.total_size_bytes == 0
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert len(store) == 50

    def test_wal_stays_bounded_across_cycles(self, tmp_path):
        # Disk usage after each checkpoint must not grow with history:
        # every cycle ends with an empty chain, not an ever-longer one.
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            for cycle in range(5):
                _fill(store, cycle * 20, 20)
                store.checkpoint()
                assert store._wal.total_size_bytes == 0
                leftover = list((tmp_path / "db").glob("store.wal.0*"))
                assert leftover == []
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert len(store) == 100

    def test_writes_after_checkpoint_replay_on_top_of_snapshot(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            _fill(store, 0, 10)
            store.checkpoint()
            _fill(store, 10, 5)
            store.delete(0)
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert set(store.keys()) == set(range(1, 15))

    def test_checkpoint_preserves_indexes_and_numbering(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            store.create_index("v", IndexKind.HASH)
            _fill(store, 0, 10)
            store.checkpoint()
            first_seal = store._wal.highest_seal
            _fill(store, 10, 10)
            store.checkpoint()
            assert store._wal.highest_seal > first_seal  # numbers never reuse
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert store.has_index("v")
            assert [r["id"] for r in store.find_by("v", "value-15")] == [15]

    def test_snapshot_alias_still_works(self, tmp_path):
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            _fill(store, 0, 5)
            store.snapshot()  # pre-checkpoint API name
            assert store._wal.size_bytes == 0
        with RecordStore(SCHEMA, tmp_path / "db") as store:
            assert len(store) == 5

    def test_v1_snapshot_directory_still_recovers(self, tmp_path):
        # A directory written before segmentation: version-1 snapshot
        # (no manifest, no wal_seal) plus a plain single-file WAL.
        import json

        directory = tmp_path / "db"
        directory.mkdir()
        records = [{"id": i, "v": f"value-{i}"} for i in range(3)]
        (directory / "snapshot.json").write_text(
            json.dumps({"version": 1, "records": records, "indexes": []})
        )
        with RecordStore(SCHEMA, directory) as store:
            assert set(store.keys()) == {0, 1, 2}
            store.insert({"id": 3, "v": "value-3"})
            store.checkpoint()
        with RecordStore(SCHEMA, directory) as store:
            assert set(store.keys()) == {0, 1, 2, 3}

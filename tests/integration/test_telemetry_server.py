"""Telemetry serving layer end-to-end.

Covers the PR's acceptance criteria directly:

* ``/metrics`` serves **valid** Prometheus text exposition — asserted by
  the strict parser from ``tests.unit.test_obs_promexport``, not by
  substring checks;
* a slow query produces a slow-log JSONL entry whose trace id matches
  its span tree and its log lines (one id, three surfaces);
* ``/healthz`` maps the fsck walker's exit codes to HTTP statuses.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.corpus.wvlr import PUBLICATION_SCHEMA, populate_store
from repro.obs import logging as obs_logging
from repro.obs import metrics, profiling, progress, tracing, workload
from repro.obs.server import TelemetryServer
from repro.obs.slo import SLOEngine
from repro.obs.slowlog import SlowQueryLog, read_slow_log
from repro.obs.timeseries import TimeSeriesLog
from repro.query.executor import QueryEngine
from repro.storage.sharded import ShardedStore
from repro.storage.store import IndexKind, RecordStore
from tests.unit.test_obs_promexport import parse_exposition


@pytest.fixture(autouse=True)
def clean_obs():
    metrics.reset()
    tracing.reset()
    obs_logging.reset()
    yield
    metrics.reset()
    tracing.reset()
    obs_logging.reset()


@pytest.fixture()
def server():
    srv = TelemetryServer(port=0)
    srv.start()
    yield srv
    srv.stop()


def _get(url: str) -> tuple[int, dict[str, str], bytes]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


class TestMetricsEndpoint:
    def test_metrics_is_valid_prometheus_exposition(self, server):
        metrics.counter("itest.requests", path="/metrics").inc(3)
        metrics.histogram("itest.seconds").observe(0.02)
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        parsed = parse_exposition(body.decode("utf-8"))
        samples = parsed["repro_itest_requests_total"]["samples"]
        assert samples == [
            ("repro_itest_requests_total", {"path": "/metrics"}, 3.0)
        ]
        hist = parsed["repro_itest_seconds"]
        assert hist["type"] == "histogram"
        assert any(name.endswith("_count") for name, _, _ in hist["samples"])

    def test_requests_counter_moves_per_path(self, server):
        _get(server.url + "/varz")
        _get(server.url + "/varz")
        snap = metrics.snapshot()["counters"]
        assert snap["obs.server.requests{path=/varz}"] == 2


class TestHealthz:
    def test_no_store_is_liveness_only(self, server):
        status, _, body = _get(server.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload == {"status": "ok", "store": None}

    def test_clean_store_reports_ok(self, tmp_path):
        with RecordStore(PUBLICATION_SCHEMA, tmp_path / "db") as store:
            store.checkpoint()
        with TelemetryServer(port=0, store_dir=str(tmp_path / "db")) as srv:
            status, _, body = _get(srv.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["store"]["exit_code"] == 0

    def test_missing_store_reports_fail_503(self, tmp_path):
        with TelemetryServer(port=0, store_dir=str(tmp_path / "absent")) as srv:
            status, _, body = _get(srv.url + "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "fail"


class TestJsonEndpoints:
    def test_varz_is_the_snapshot(self, server):
        metrics.counter("itest.varz").inc()
        _, _, body = _get(server.url + "/varz")
        assert json.loads(body)["counters"]["itest.varz"] == 1

    def test_tracez_serves_span_trees(self, server):
        with tracing.span("itest.root", kind="demo"):
            with tracing.span("itest.child"):
                pass
        _, _, body = _get(server.url + "/tracez")
        spans = json.loads(body)["spans"]
        root = next(s for s in spans if s["name"] == "itest.root")
        assert root["attributes"] == {"kind": "demo"}
        assert [c["name"] for c in root["children"]] == ["itest.child"]

    def test_logz_filters(self, server):
        obs_logging.info("itest.alpha", n=1)
        obs_logging.warn("itest.beta", n=2)
        _, _, body = _get(server.url + "/logz?event=itest.beta")
        records = json.loads(body)["records"]
        assert [r["event"] for r in records] == ["itest.beta"]
        _, _, body = _get(server.url + "/logz?level=warn&n=1")
        records = json.loads(body)["records"]
        assert records and records[-1]["event"] == "itest.beta"

    def test_unknown_path_404_lists_endpoints(self, server):
        status, _, body = _get(server.url + "/nope")
        assert status == 404
        payload = json.loads(body)
        assert payload["error"] == "no such endpoint: /nope"
        # The 404 page is a directory, not a dead end: every live route.
        assert {"/metrics", "/healthz", "/varz", "/tracez", "/logz",
                "/topz", "/profilez"} <= set(payload["endpoints"])
        # No query service attached -> /query must NOT be advertised.
        assert "/query" not in payload["endpoints"]

    def test_index_lists_endpoints(self, server):
        status, _, body = _get(server.url + "/")
        assert status == 200
        endpoints = json.loads(body)["endpoints"]
        assert "/metrics" in endpoints
        assert "/topz" in endpoints
        assert "/profilez" in endpoints


class TestTopz:
    def _burst(self, records):
        store = RecordStore(PUBLICATION_SCHEMA)
        populate_store(store, records)
        store.create_index("year", IndexKind.BTREE)
        engine = QueryEngine(store)
        for year in (1960, 1970, 1980):
            engine.execute(f"year >= {year} LIMIT 5")
            engine.execute(f"year = {year}", profile=True)
        return engine

    def test_topz_serves_fingerprint_table(self, server, reference_records):
        workload.reset()
        self._burst(reference_records)
        status, headers, body = _get(server.url + "/topz")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        templates = {row["template"]: row for row in payload["fingerprints"]}
        assert templates["year >= ? LIMIT ?"]["calls"] == 3
        assert templates["year = ?"]["calls"] == 3
        # Profiled runs contributed per-operator breakdowns.
        assert "index-lookup" in templates["year = ?"]["operators"]
        # The btree probes landed in the key-usage histograms.
        assert payload["key_usage"]["year"]["probes"] > 0
        workload.reset()

    def test_topz_sort_and_n_params(self, server, reference_records):
        workload.reset()
        self._burst(reference_records)
        status, _, body = _get(server.url + "/topz?n=1&sort=rows_returned")
        assert status == 200
        payload = json.loads(body)
        assert len(payload["fingerprints"]) == 1
        assert payload["sort"] == "rows_returned"
        workload.reset()

    def test_topz_rejects_bad_sort(self, server):
        status, _, body = _get(server.url + "/topz?sort=bogus")
        assert status == 400
        assert "sort_by" in json.loads(body)["error"]

    def test_workload_family_rides_metrics_exposition(
        self, server, reference_records
    ):
        workload.reset()
        self._burst(reference_records)
        status, _, body = _get(server.url + "/metrics")
        assert status == 200
        families = parse_exposition(body.decode("utf-8"))
        calls = families["repro_workload_calls_total"]
        assert calls["type"] == "counter"
        assert sum(value for _, _, value in calls["samples"]) == 6.0
        workload.reset()


class TestProfilez:
    def test_profilez_lifecycle_over_http(self, server):
        profiling.get_default_profiler().reset()
        status, _, body = _get(server.url + "/profilez")
        assert status == 200
        assert json.loads(body)["running"] is False

        status, _, body = _get(server.url + "/profilez?action=start&hz=200")
        assert status == 200
        assert json.loads(body)["running"] is True
        # A running profiler refuses a second start (409, status attached).
        status, _, body = _get(server.url + "/profilez?action=start")
        assert status == 409

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if json.loads(_get(server.url + "/profilez")[2])["samples"] > 0:
                break
            time.sleep(0.02)
        status, _, body = _get(server.url + "/profilez?action=stop")
        assert status == 200
        stopped = json.loads(body)
        assert stopped["running"] is False
        assert stopped["samples"] > 0

        status, headers, body = _get(server.url + "/profilez?format=collapsed")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        for line in body.decode("utf-8").splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack and count.isdigit()

        status, _, _ = _get(server.url + "/profilez?action=reset")
        assert status == 200
        assert json.loads(_get(server.url + "/profilez")[2])["samples"] == 0

    def test_profilez_rejects_unknown_action(self, server):
        status, _, body = _get(server.url + "/profilez?action=enhance")
        assert status == 400
        assert "unknown action" in json.loads(body)["error"]


class TestSlowQueryCorrelation:
    """Acceptance: one trace id across slow-log entry, spans, and logs."""

    def _seeded_engine(self, records, slow_log):
        store = RecordStore(PUBLICATION_SCHEMA)
        populate_store(store, records)
        store.create_index("year", IndexKind.BTREE)
        return QueryEngine(store, slow_log=slow_log)

    def test_slow_query_joins_entry_spans_and_logs(
        self, tmp_path, reference_records
    ):
        logger = obs_logging.get_default_logger()
        previous = logger.level
        logger.set_level("debug")
        try:
            path = tmp_path / "slow.jsonl"
            slow_log = SlowQueryLog(path, threshold_s=0.0)  # everything is slow
            engine = self._seeded_engine(reference_records, slow_log)
            engine.execute("year >= 1900 ORDER BY year")
        finally:
            logger.set_level(previous)

        (entry,) = read_slow_log(path)
        trace_id = entry["trace_id"]
        assert trace_id

        # The entry carries the re-executed EXPLAIN ANALYZE tree.
        assert entry["profile_reexecuted"] is True
        assert entry["profile"]["tree"]["op"] in ("sort", "limit", "filter")
        assert entry["rows"] > 0

        # The span tree from the profiled re-execution shares the id.
        root = tracing.last_root()
        assert root.name == "query.execute"
        assert root.attributes["trace_id"] == trace_id

        # The execution's log lines share it too.
        lines = obs_logging.tail(trace_id=trace_id)
        events = {r["event"] for r in lines}
        assert "query.execute" in events
        assert "query.slow" in events

    def test_profiled_slow_query_is_not_reexecuted(
        self, tmp_path, reference_records
    ):
        slow_log = SlowQueryLog(tmp_path / "slow.jsonl", threshold_s=0.0)
        engine = self._seeded_engine(reference_records, slow_log)
        profile = engine.execute("year >= 1900", profile=True)
        (entry,) = slow_log.entries()
        assert "profile_reexecuted" not in entry
        assert entry["profile"]["row_count"] == len(profile.rows)
        assert entry["trace_id"] == tracing.last_root().attributes["trace_id"]

    def test_fast_query_is_not_recorded(self, reference_records):
        slow_log = SlowQueryLog(threshold_s=30.0)
        engine = self._seeded_engine(reference_records, slow_log)
        engine.execute("year >= 1900 LIMIT 5")
        assert slow_log.entries() == []

    def test_profile_on_slow_false_skips_reexecution(self, reference_records):
        slow_log = SlowQueryLog(threshold_s=0.0, profile_on_slow=False)
        engine = self._seeded_engine(reference_records, slow_log)
        engine.execute("year >= 1900 LIMIT 5")
        (entry,) = slow_log.entries()
        assert "profile" not in entry
        # No re-execution: no profiled span was opened.
        assert tracing.last_root() is None


class TestProgressz:
    def test_active_operation_is_visible_mid_flight(self, server):
        progress.reset()
        with progress.start("itest.rebuild", total=8, shard=1) as tracker:
            tracker.tick(2)
            status, headers, body = _get(server.url + "/progressz")
            assert status == 200
            assert headers["Content-Type"].startswith("application/json")
            payload = json.loads(body)
            (op,) = payload["active"]
            assert op["name"] == "itest.rebuild"
            assert op["done"] == 2 and op["total"] == 8
            assert op["percent"] == 25.0
            assert op["attrs"] == {"shard": 1}
        progress.reset()

    def test_finished_operation_moves_to_recent(self, server):
        progress.reset()
        with progress.start("itest.ckpt", total=3) as tracker:
            tracker.tick(3)
        payload = json.loads(_get(server.url + "/progressz")[2])
        assert payload["active"] == []
        (op,) = payload["recent"]
        assert op["name"] == "itest.ckpt" and op["ok"] is True
        progress.reset()


class TestAlertz:
    PINNED_RULE = {
        "name": "pinned-pages", "kind": "threshold", "source": "gauge",
        "metric": "pool.pinned", "op": ">=", "bound": 5, "severity": "ticket",
    }

    def _server_with_engine(self, rules, ts):
        return TelemetryServer(port=0, slo_engine=SLOEngine(ts, rules))

    def test_no_engine_serves_disabled_stub(self, server):
        status, _, body = _get(server.url + "/alertz")
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is False
        assert payload["firing"] == []
        assert "no SLO engine" in payload["reason"]

    def test_firing_rule_served_over_http(self):
        ts = TimeSeriesLog()
        ts.sample({"counters": {}, "gauges": {"pool.pinned": 9}, "histograms": {}})
        with self._server_with_engine([self.PINNED_RULE], ts) as srv:
            status, _, body = _get(srv.url + "/alertz")
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        (state,) = payload["firing"]
        assert state["name"] == "pinned-pages"
        assert state["value"] == 9
        assert payload["rules"][0]["firing"] is True

    def test_quiet_rule_is_enabled_but_silent(self):
        ts = TimeSeriesLog()
        ts.sample({"counters": {}, "gauges": {"pool.pinned": 0}, "histograms": {}})
        with self._server_with_engine([self.PINNED_RULE], ts) as srv:
            payload = json.loads(_get(srv.url + "/alertz")[2])
        assert payload["enabled"] is True
        assert payload["firing"] == []


class TestStatusz:
    def test_statusz_is_selfcontained_html(self, server):
        status, headers, body = _get(server.url + "/statusz")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        page = body.decode("utf-8")
        # Self-contained: inline CSS, no external scripts or stylesheets.
        assert "<style>" in page
        assert "src=" not in page and "href=\"http" not in page
        for section in ("Alerts", "Durability", "Progress", "slow queries"):
            assert section in page

    def test_statusz_renders_per_shard_rows(self, server):
        for shard in (0, 1, 2):
            metrics.counter("storage.bufferpool.hits", shard=shard).inc(90)
            metrics.counter("storage.bufferpool.misses", shard=shard).inc(10)
        page = _get(server.url + "/statusz")[2].decode("utf-8")
        assert page.count("<tr><td>") >= 3  # one row per shard
        assert "90.0%" in page  # hit rate column

    def test_statusz_escapes_slow_query_text(self, server):
        obs_logging.get_default_logger().warn(
            "query.slow", query="year <= 2000 & <script>", seconds=1.0, rows=1
        )
        page = _get(server.url + "/statusz")[2].decode("utf-8")
        assert "<script>" not in page
        assert "&lt;script&gt;" in page

    def test_statusz_firing_alert_is_rendered(self):
        ts = TimeSeriesLog()
        ts.sample({"counters": {}, "gauges": {"pool.pinned": 9}, "histograms": {}})
        engine = SLOEngine(ts, [TestAlertz.PINNED_RULE])
        with TelemetryServer(port=0, slo_engine=engine) as srv:
            page = _get(srv.url + "/statusz")[2].decode("utf-8")
        assert "pinned-pages" in page
        assert "ticket" in page


class TestHealthzSharded:
    def test_sharded_store_health_walks_every_shard(
        self, tmp_path, reference_records
    ):
        with ShardedStore(
            PUBLICATION_SCHEMA, tmp_path / "fleet", shards=3
        ) as store:
            store.put_many(r.to_store_dict() for r in reference_records)
            store.checkpoint()
        with TelemetryServer(port=0, store_dir=str(tmp_path / "fleet")) as srv:
            status, _, body = _get(srv.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["store"]["exit_code"] == 0

"""E1 — artifact fidelity: rebuild the WVLR author index and check it
against ground truth transcribed from the printed artifact."""

import pytest

from repro.core.builder import AuthorIndexBuilder, build_index
from repro.core.pagination import PageLayout, paginate
from repro.corpus.wvlr import load_reference_metadata


@pytest.fixture(scope="module")
def index(reference_records):
    return build_index(reference_records)


class TestRowUniverse:
    def test_entry_count(self, index):
        # 271 records explode to 343 rows (co-authors listed once each);
        # counted from the curated transcription.
        assert len(index) == 343

    def test_heading_count(self, index):
        assert len(index.groups()) == 257

    def test_no_duplicate_rows(self, index):
        keys = [e.row_key() for e in index]
        assert len(keys) == len(set(keys))


class TestPrintedOrdering:
    """Spot checks transcribed from the artifact's printed sequence."""

    @pytest.fixture(scope="class")
    def headings(self, reference_records):
        return [g.heading for g in build_index(reference_records).groups()]

    def _pos(self, headings, prefix: str) -> int:
        matches = [i for i, h in enumerate(headings) if h.startswith(prefix)]
        assert matches, f"no heading starts with {prefix!r}"
        return matches[0]

    def test_first_and_last(self, headings):
        assert headings[0].startswith("Abdalla, Tarek F.")
        assert headings[-1].startswith("Zlotnick, David")

    def test_mc_files_literally(self, headings):
        # Printed artifact: ... Maxwell, McAteer, McBride, ... Meadows ...
        assert (
            self._pos(headings, "McAteer")
            < self._pos(headings, "McCauley")
            < self._pos(headings, "McCune")
            < self._pos(headings, "McGinley")
            < self._pos(headings, "McLaughlin")
            < self._pos(headings, "McMahon")
            < self._pos(headings, "Mehalic")
        )

    def test_apostrophes_fold(self, headings):
        assert self._pos(headings, "O'Hanlon") < self._pos(headings, "Olson")

    def test_hyphenated_surnames(self, headings):
        assert (
            self._pos(headings, "Barnes")
            < self._pos(headings, "Bates-Smith")
            < self._pos(headings, "Batey")
        )

    def test_van_tol_sequence(self, headings):
        assert self._pos(headings, "Udall") < self._pos(headings, "Van Tol") < self._pos(
            headings, "vanEgmond"
        )

    def test_student_heading_separate(self, headings):
        # Bryant appears as article author (95:663) and student author
        # (79:610): two headings, non-student first.
        bryant = [h for h in headings if h.startswith("Bryant, S. Benjamin")]
        assert len(bryant) == 2

    def test_multi_article_author_grouped(self, index):
        cardi_groups = [
            g for g in index.groups() if g.author.surname == "Cardi"
        ]
        assert len(cardi_groups) == 1
        assert len(cardi_groups[0].entries) == 4
        volumes = [e.citation.volume for e in cardi_groups[0].entries]
        assert volumes == sorted(volumes)

    def test_coauthored_piece_under_each_author(self, index):
        rows = [e for e in index if e.title == "A Miner's Bill of Rights"]
        assert {e.author.surname for e in rows} == {"Galloway", "McAteer", "Webb"}


class TestStatisticsAgainstArtifact:
    def test_statistics_anchors(self, index):
        stats = index.statistics()
        assert stats.year_min == 1966  # artifact cites back to 69:63 (1966)
        assert stats.year_max == 1993
        assert stats.entries_by_volume[95] >= 10  # current volume well represented
        assert len(stats.entries_by_volume) == 27  # volumes 69-95

    def test_student_share_plausible(self, index):
        # The full artifact is roughly half student notes; the curated
        # subset keeps a substantial share.
        assert 0.15 < index.statistics().student_share < 0.6


class TestPagination:
    def test_pages_start_at_artifact_first_page(self, index):
        meta = load_reference_metadata()
        pages = paginate(index, PageLayout(first_page=meta["first_page"]))
        assert pages[0].number == 1365
        # 343 entries at 13/page = 27 pages; the full artifact runs
        # 1365-1443 (79 pages) for ~470 denser-packed entries.
        assert 20 <= len(pages) <= 35

    def test_renders_with_artifact_furniture(self, index):
        meta = load_reference_metadata()
        layout = PageLayout(
            first_page=meta["first_page"], volume=meta["volume"], year=meta["year"]
        )
        text = index.render("text", layout=layout)
        assert "1993]" in text
        assert "[Vol. 95:1365" in text
        assert "AUTHOR INDEX" in text
        assert "WEST VIRGINIA LAW REVIEW" in text


class TestResolutionOnArtifact:
    def test_known_ocr_variants_merge(self, reference_records):
        resolved = (
            AuthorIndexBuilder(resolve_variants=True)
            .add_records(reference_records)
            .build()
        )
        headings = {g.heading for g in resolved.groups()}
        # Damaged spellings absorbed...
        assert "Hemdon, Judith" not in headings
        assert "Johson, Edward P." not in headings
        assert "Cumutte, Scott A." not in headings
        # ...into their canonical forms.
        assert any(h.startswith("Herdon") or h.startswith("Herndon") for h in headings)
        assert "Johnson, Edward P." in headings

    def test_distinct_real_people_not_merged(self, reference_records):
        resolved = (
            AuthorIndexBuilder(resolve_variants=True)
            .add_records(reference_records)
            .build()
        )
        headings = {g.heading for g in resolved.groups()}
        # Same surname, different people — must stay separate.
        assert "Whisker, James B." in headings
        assert "White, James B." in headings
        assert "Johnson, Earl, Jr." in headings
        assert "Johnson, Ben" in headings

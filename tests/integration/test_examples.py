"""Every example script must run clean — examples are executable docs."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "Fox, Fred L., II*" in out
        assert "multi-article author: McAteer" in out

    def test_rebuild_wvlr_index(self, capsys):
        out = run_example("rebuild_wvlr_index.py", [], capsys)
        assert "loaded 271 publication records" in out
        assert "entries:               343" in out
        assert "ordering spot-checks passed" in out

    def test_deduplicate_authors(self, capsys):
        out = run_example("deduplicate_authors.py", [], capsys)
        assert "Hemdon, Judith" in out
        assert "precision=1.000" in out

    def test_query_console_scripted(self, capsys):
        out = run_example("query_console.py", ['surnames:"Lewin" ORDER BY year'], capsys)
        assert "(4 rows)" in out

    def test_front_matter_bundle(self, capsys, tmp_path):
        out = run_example("front_matter_bundle.py", [str(tmp_path / "fm")], capsys)
        assert "author_index.*     343 rows" in out
        files = {p.name for p in (tmp_path / "fm").iterdir()}
        assert {
            "contents.txt", "author_index.txt", "author_index.html",
            "title_index.txt", "subject_index.txt", "corpus.bib",
        } <= files

    def test_annual_update(self, capsys):
        out = run_example("annual_update.py", [], capsys)
        assert "ingested 6 rows" in out
        assert "incremental snapshot == full rebuild" in out
        assert "Mine Subsidence and the Insurance Gap" in out

    def test_bibliometrics(self, capsys):
        out = run_example("bibliometrics.py", [], capsys)
        assert "McAteer, J. Davitt" in out
        assert "coal" in out

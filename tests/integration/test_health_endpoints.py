"""Shard fault tolerance over HTTP: /healthz caching + shard rows,
scrubber verdicts, and 206 partial /query responses."""

import json
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.obs import metrics
from repro.obs.server import TelemetryServer
from repro.query.executor import ShardedQueryEngine
from repro.resilience import QueryService
from repro.storage import ShardedStore, Scrubber
from repro.storage.faultfs import flip_bit_on_disk
from repro.storage.pages import PAGE_SIZE
from repro.storage.schema import Field, FieldType, Schema

SCHEMA = Schema(
    [
        Field("id", FieldType.INT),
        Field("year", FieldType.INT),
        Field("name", FieldType.STRING),
    ],
    primary_key="id",
)


@pytest.fixture(autouse=True)
def clean_metrics():
    metrics.reset()
    yield
    metrics.reset()


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _corpus(n=200):
    return [
        {"id": i, "year": 1900 + (i % 10), "name": f"n{i:04d}"}
        for i in range(n)
    ]


def _durable_store(tmp_path, shards=4):
    store = ShardedStore(
        SCHEMA, tmp_path / "db", shards=shards, data_format="paged", sync=True
    )
    store.put_many(_corpus())
    store.checkpoint()
    return store


class TestHealthzShards:
    def test_healthz_reports_per_shard_rows(self, tmp_path):
        store = _durable_store(tmp_path)
        store.quarantine(1, "test damage")
        store.close()
        with TelemetryServer(port=0, store_dir=str(tmp_path / "db")) as srv:
            status, _, body = _get(srv.url + "/healthz")
        payload = json.loads(body)
        # A quarantined shard downgrades liveness even though the files
        # fsck clean (the manifest remembers the quarantine).
        assert status == 200
        assert payload["status"] == "degraded"
        states = [row["state"] for row in payload["shards"]]
        assert states == ["healthy", "quarantined", "healthy", "healthy"]

    def test_fsck_verdict_is_cached_within_ttl(self, tmp_path):
        store = _durable_store(tmp_path)
        store.close()
        with TelemetryServer(
            port=0, store_dir=str(tmp_path / "db"), health_ttl_s=60.0
        ) as srv:
            _, _, first = _get(srv.url + "/healthz")
            _, _, second = _get(srv.url + "/healthz")
        assert json.loads(first)["cached"] is False
        assert json.loads(second)["cached"] is True

    def test_cache_expires(self, tmp_path):
        store = _durable_store(tmp_path)
        store.close()
        with TelemetryServer(
            port=0, store_dir=str(tmp_path / "db"), health_ttl_s=0.05
        ) as srv:
            _get(srv.url + "/healthz")
            time.sleep(0.1)
            _, _, body = _get(srv.url + "/healthz")
        assert json.loads(body)["cached"] is False


class TestHealthzScrubberVerdict:
    def test_scrubber_verdict_replaces_inline_fsck(self, tmp_path):
        store = _durable_store(tmp_path)
        scrubber = Scrubber(store, bytes_per_s=None)
        scrubber.run_once()
        with TelemetryServer(
            port=0, store_dir=str(tmp_path / "db"), scrubber=scrubber
        ) as srv:
            status, _, body = _get(srv.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["scrub"]["clean"] is True
        assert payload["store"] is None  # no inline fsck ran
        store.close()

    def test_dirty_scrub_verdict_is_503(self, tmp_path):
        store = _durable_store(tmp_path)
        snap = store.shard_path(2) / "snapshot.json"
        pages = store.shard_path(2) / json.loads(snap.read_text())["pages"]
        flip_bit_on_disk(pages, byte_index=1 * PAGE_SIZE + 40, bit=5)
        scrubber = Scrubber(store, bytes_per_s=None)
        scrubber.run_once()
        with TelemetryServer(
            port=0, store_dir=str(tmp_path / "db"), scrubber=scrubber
        ) as srv:
            status, _, body = _get(srv.url + "/healthz")
        payload = json.loads(body)
        assert status == 503
        assert payload["status"] == "fail"
        assert payload["scrub"]["clean"] is False
        store.close()


class TestPartialQueryHTTP:
    @pytest.fixture()
    def degraded_server(self, tmp_path):
        store = ShardedStore(SCHEMA, shards=4)
        store.put_many(_corpus())
        store.quarantine(2, "test damage")
        service = QueryService(ShardedQueryEngine(store))
        srv = TelemetryServer(port=0, query_service=service)
        srv.start()
        yield srv, store
        srv.stop()
        store.close()

    def _query(self, srv, q, **params):
        params["q"] = q
        return _get(srv.url + "/query?" + urllib.parse.urlencode(params))

    def test_partial_ok_serves_206_with_metadata(self, degraded_server):
        srv, store = degraded_server
        status, _, body = self._query(srv, "* ORDER BY id", partial_ok=1)
        payload = json.loads(body)
        assert status == 206
        assert payload["partial"] is True
        assert payload["shards_failed"] == [2]
        expected = sum(1 for r in _corpus() if store.shard_for(r["id"]) != 2)
        assert payload["row_count"] == expected

    def test_strict_query_fails_on_quarantined_shard(self, degraded_server):
        srv, _ = degraded_server
        status, _, _ = self._query(srv, "* ORDER BY id")
        assert status >= 500

    def test_partial_ok_on_healthy_store_is_200(self, degraded_server):
        srv, store = degraded_server
        store.readmit(2)
        status, _, body = self._query(srv, "* ORDER BY id", partial_ok=1)
        payload = json.loads(body)
        assert status == 200
        assert "partial" not in payload
        assert payload["row_count"] == 200


class TestStatuszHealthColumn:
    def test_statusz_shows_shard_health(self, tmp_path):
        store = ShardedStore(SCHEMA, shards=2)
        store.put_many(_corpus(50))
        store.quarantine(1, "test")
        with TelemetryServer(port=0) as srv:
            _, _, body = _get(srv.url + "/statusz")
        html = body.decode("utf-8")
        assert "<th>health</th>" in html
        assert "quarantined" in html
        store.close()

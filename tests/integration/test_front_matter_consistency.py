"""Cross-artifact consistency: the four front-matter products must agree.

Every index is a different projection of the same record set; these tests
pin the invariants that tie them together — on the reference corpus and on
a synthetic one, so the properties are not artifacts of either dataset.
"""

import pytest

from repro.core.builder import build_index
from repro.core.kwic import build_kwic_index, significant_words
from repro.core.titleindex import build_title_index
from repro.core.toc import build_toc
from repro.search.engine import TitleSearchEngine


@pytest.fixture(scope="module", params=["reference", "synthetic"])
def corpus(request, reference_records, synthetic_records):
    return list(reference_records if request.param == "reference" else synthetic_records)


class TestCrossArtifactInvariants:
    def test_author_index_rows_equal_author_slots(self, corpus):
        index = build_index(corpus)
        distinct_rows = {
            (a.identity_key(), r.title.casefold(), r.citation)
            for r in corpus
            for a in r.authors
        }
        assert len(index) == len(distinct_rows)

    def test_title_index_covers_every_record_once(self, corpus):
        title_index = build_title_index(corpus)
        expected = {(r.title.casefold(), r.citation) for r in corpus}
        got = {(e.title.casefold(), e.citation) for e in title_index}
        assert got == expected

    def test_toc_partitions_records(self, corpus):
        toc = build_toc(corpus)
        assert sum(v.article_count for v in toc) == len(corpus)
        ids = [r.record_id for v in toc for r in v.records]
        assert len(ids) == len(set(ids))

    def test_toc_volumes_match_citations(self, corpus):
        toc = build_toc(corpus)
        for volume_contents in toc:
            for record in volume_contents.records:
                assert record.citation.volume == volume_contents.volume

    def test_kwic_rotations_point_at_real_records(self, corpus):
        kwic = build_kwic_index(corpus)
        by_id = {r.record_id: r for r in corpus}
        for group in kwic.groups:
            for entry in group.entries:
                record = by_id[entry.record_id]
                assert entry.title == record.title
                assert group.keyword in significant_words(record.title)

    def test_search_agrees_with_kwic_vocabulary(self, corpus):
        kwic = build_kwic_index(corpus)
        engine = TitleSearchEngine(corpus)
        # every KWIC heading is findable by search, and search returns
        # exactly the records the heading groups
        for group in list(kwic.groups)[:25]:
            search_ids = {h.record_id for h in engine.search(group.keyword, k=None)}
            kwic_ids = {e.record_id for e in group.entries}
            assert kwic_ids <= search_ids

    def test_student_share_consistent_across_artifacts(self, corpus):
        author_index = build_index(corpus)
        title_index = build_title_index(corpus)
        record_students = {r.record_id for r in corpus if r.is_student_work}
        title_students = {
            e.record_id for e in title_index if e.is_student_work
        }
        assert title_students == record_students
        index_student_ids = {
            e.record_id for e in author_index if e.is_student_work
        }
        assert index_student_ids == record_students

    def test_statistics_agree_with_toc(self, corpus):
        stats = build_index(corpus).statistics()
        toc = build_toc(corpus)
        assert set(stats.entries_by_volume) == {v.volume for v in toc}

"""Observability integration: a full index build emits the documented
span tree and moves every metric family end-to-end."""

import pytest

from repro.core.builder import AuthorIndexBuilder
from repro.corpus.wvlr import PUBLICATION_SCHEMA, populate_store
from repro.obs import metrics, tracing
from repro.query.executor import QueryEngine, QueryProfile
from repro.query.parser import parse_query
from repro.search.engine import TitleSearchEngine
from repro.storage.store import IndexKind, RecordStore


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset the process-global registry and tracer around each test."""
    metrics.reset()
    tracing.reset()
    yield
    metrics.reset()
    tracing.reset()


class TestBuildSpanTree:
    def test_build_emits_expected_span_tree(self, reference_records):
        AuthorIndexBuilder().add_records(reference_records).build()
        root = tracing.last_root()
        assert root is not None
        assert root.name == "build.index"
        assert root.attributes["records"] == len(reference_records)
        assert root.attributes["entries"] > 0
        assert [c.name for c in root.children] == [
            "build.explode",
            "build.dedupe",
            "build.collate",
        ]
        assert all(c.duration_s >= 0 for c in root.iter_spans())
        assert root.duration_s >= sum(c.duration_s for c in root.children)

    def test_resolving_build_adds_resolve_span(self, reference_records):
        builder = AuthorIndexBuilder(resolve_variants=True)
        builder.add_records(reference_records).build()
        root = tracing.last_root()
        assert [c.name for c in root.children] == [
            "build.explode",
            "build.resolve",
            "build.dedupe",
            "build.collate",
        ]

    def test_build_metrics_move_with_the_span(self, reference_records):
        AuthorIndexBuilder().add_records(reference_records).build()
        snap = metrics.snapshot()
        assert snap["counters"]["build.count"] == 1
        assert snap["counters"]["build.records"] == len(reference_records)
        assert snap["counters"]["build.entries.collated"] > 0
        assert snap["histograms"]["build.seconds"]["count"] == 1


class TestEndToEndFamilies:
    def test_full_pipeline_populates_every_family(
        self, tmp_path, reference_records
    ):
        with RecordStore(PUBLICATION_SCHEMA, tmp_path / "db") as store:
            populate_store(store, reference_records)
            store.create_index("surnames", IndexKind.HASH)
            store.create_index("year", IndexKind.BTREE)
            engine = QueryEngine(store)
            rows = engine.execute(parse_query("year >= 1985 LIMIT 10"))
            assert len(rows) == 10
            profile = engine.execute(
                parse_query("year >= 1985 ORDER BY page LIMIT 10"), profile=True
            )
            assert isinstance(profile, QueryProfile)
            assert len(profile.rows) == 10
        TitleSearchEngine(reference_records).search("law")
        AuthorIndexBuilder().add_records(reference_records).build()

        counters = metrics.snapshot()["counters"]
        assert counters["storage.store.put.count"] == len(reference_records)
        assert counters["storage.wal.append.count"] >= 1
        assert counters["storage.wal.append.bytes"] > 0
        assert counters["query.executions"] == 2
        assert counters["query.rows.returned"] == 20
        assert counters["search.queries"] == 1
        assert counters["search.postings.scanned"] > 0
        assert counters["build.count"] == 1

    def test_profiled_query_emits_query_span(self, tmp_path, reference_records):
        with RecordStore(PUBLICATION_SCHEMA, tmp_path / "db") as store:
            populate_store(store, reference_records)
            store.create_index("year", IndexKind.BTREE)
            engine = QueryEngine(store)
            engine.execute(parse_query("year >= 1985 LIMIT 10"), profile=True)
        root = tracing.last_root()
        assert root.name == "query.execute"
        assert root.attributes["access"] == "index-range"
        assert root.attributes["rows"] == 10

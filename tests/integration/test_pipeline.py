"""End-to-end pipeline: ingest → store (durable) → query → build → render."""

import json

from repro.core.builder import AuthorIndexBuilder
from repro.core.entry import PublicationRecord
from repro.corpus.ingest import parse_index_text
from repro.corpus.wvlr import PUBLICATION_SCHEMA, populate_store
from repro.query.executor import QueryEngine
from repro.storage.store import IndexKind, RecordStore

RAW = """
AUTHOR ARTICLE W. VA. L. REV.
Abramovsky, Deborah Confidentiality: The Future Crime- 85:929 (1983)
Contraband Dilemmas
Bagge, Carl E. State Primacy Under the Office of 88:521 (1986)
Surface Mining
Cardi, Vincent P. The West Virginia Consumer Credit and 77:401 (1975)
Protection Act
Cardi, Vincent P. The Experience of Article 2 of the Uni- 93:735 (1991)
form Commercial Code in West Virginia
Deem, Patrick D.* The Fifth Amendment and Debarment 70:214 (1968)
Proceedings
1366 [Vol. 95:1365
Farmer, Guy Transfer of NLRB Jurisdiction Over 88:1 (1985)
Unfair Practices to Labor Courts
"""


def test_full_pipeline(tmp_path):
    # 1. Ingest raw OCR'd text.
    report = parse_index_text(RAW)
    assert report.record_count == 6

    # 2. Persist into a durable store.
    with RecordStore(PUBLICATION_SCHEMA, tmp_path / "db") as store:
        populate_store(store, report.records)
        store.create_index("surnames", IndexKind.HASH)
        store.create_index("year", IndexKind.BTREE)
        store.snapshot()
        store.insert(
            PublicationRecord.create(
                100, "Added After Snapshot", ["Zed, Amy Q."], "94:1 (1992)"
            ).to_store_dict()
        )

    # 3. Reopen (snapshot + WAL replay) and query.
    with RecordStore(PUBLICATION_SCHEMA, tmp_path / "db") as store:
        assert len(store) == 7
        engine = QueryEngine(store)

        cardi = engine.execute('surnames:"Cardi"')
        assert len(cardi) == 2
        assert engine.explain('surnames:"Cardi"').startswith("INDEX LOOKUP")

        eighties = engine.execute("year >= 1980 AND year < 1990 ORDER BY year")
        assert [r["year"] for r in eighties] == [1983, 1985, 1986]

        # 4. Build the index for a selected slice and render everywhere.
        records = [PublicationRecord.from_store_dict(r) for r in engine.execute("*")]
        index = AuthorIndexBuilder().add_records(records).build()
        assert [g.heading for g in index.groups()][0] == "Abramovsky, Deborah"

        text = index.render("text", paginated=False)
        assert "Uniform Commercial Code" in text  # hyphen wrap repaired
        assert "Deem, Patrick D.*" in text

        rows = json.loads(index.render("json"))
        assert len(rows) == 7

        html = index.render("html")
        assert "Zed, Amy Q." in html


def test_reference_corpus_through_durable_store(tmp_path, reference_records):
    with RecordStore(PUBLICATION_SCHEMA, tmp_path / "ref") as store:
        populate_store(store, reference_records)
        store.create_index("volume", IndexKind.BTREE)
        store.snapshot()

    with RecordStore(PUBLICATION_SCHEMA, tmp_path / "ref") as store:
        engine = QueryEngine(store)
        vol95 = engine.execute("volume = 95")
        assert all(r["volume"] == 95 for r in vol95)
        assert len(vol95) >= 10

        records = [PublicationRecord.from_store_dict(r) for r in store.scan()]
        index = AuthorIndexBuilder().add_records(records).build()
        assert len(index) == 343  # identical to building straight from JSON
